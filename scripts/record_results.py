"""Record the full benchmark run used by EXPERIMENTS.md.

Runs Table II and Table III at full preset scale and writes the result
tables to benchmarks/results/recorded_*.txt.  Heavier than the default
pytest benches; meant to be run once per release:

    python scripts/record_results.py [--seeds 0 1 2] [--epochs 120]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.data import load_preset, temporal_split
from repro.eval import evaluate
from repro.models import ALL_NAMES, create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

RESULTS = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
METRICS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")
ABLATION = ("CML", "CML+Agg", "Hyper+CML", "Hyper+CML+Agg", "TaxoRec")


def run_table(models, preset, seeds, epochs):
    split = temporal_split(load_preset(preset))
    rows = []
    for name in models:
        results = []
        for seed in seeds:
            config = tuned_config(name, preset, epochs=epochs, seed=seed)
            model = create_model(name, split.train, config)
            t0 = time.time()
            model.fit(split)
            results.append(evaluate(model, split, on="test"))
            print(f"  {preset}/{name} seed {seed}: mean={results[-1].mean():.4f} "
                  f"({time.time()-t0:.0f}s)", flush=True)
        cells = []
        for metric in METRICS:
            vals = 100 * np.array([getattr(r, metric) for r in results])
            cells.append(f"{vals.mean():.2f}±{vals.std():.2f}")
        rows.append([name] + cells)
    return rows


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--presets", nargs="+", default=["ciao", "amazon-cd", "amazon-book", "yelp"])
    parser.add_argument("--table", choices=["2", "3", "both"], default="both")
    args = parser.parse_args()
    RESULTS.mkdir(exist_ok=True)

    for preset in args.presets:
        if args.table in ("2", "both"):
            rows = run_table(ALL_NAMES, preset, tuple(args.seeds), args.epochs)
            text = render_table(
                ["Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
                rows,
                title=f"Recorded Table II ({preset}), %, seeds={args.seeds}",
            )
            (RESULTS / f"recorded_table2_{preset}.txt").write_text(text + "\n")
            print(text, flush=True)
        if args.table in ("3", "both"):
            rows = run_table(ABLATION, preset, tuple(args.seeds), args.epochs)
            text = render_table(
                ["Variant", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
                rows,
                title=f"Recorded Table III ({preset}), %, seeds={args.seeds}",
            )
            (RESULTS / f"recorded_table3_{preset}.txt").write_text(text + "\n")
            print(text, flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
