#!/usr/bin/env bash
# Local pre-push gate: tier-1 tests, the repo's own lint pass, and (when
# installed) ruff.  Mirrors .github/workflows/ci.yml.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (not slow) =="
python -m pytest -x -q -m "not slow"

echo "== backend parity (tier-1 under the fused backend) =="
REPRO_BACKEND=fused python -m pytest -x -q -m "not slow"

echo "== tier-2 tests (slow: hypothesis + e2e) =="
REPRO_HYPOTHESIS_PROFILE=ci python -m pytest -x -q -m slow

echo "== repro.analysis =="
python -m repro.analysis src tests scripts --baseline lint-baseline.json --cache .lint-cache.json

echo "== repro.analysis json smoke =="
python -m repro.analysis src --format json --out lint-report.json >/dev/null
python - <<'PY'
import json

payload = json.load(open("lint-report.json"))
assert {"violations", "counts", "errors", "warnings"} <= set(payload), sorted(payload)
print(f"lint-report.json ok ({payload['total']} finding(s))")
PY

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "ruff not installed; skipping (pip install -e .[lint])"
fi

echo "== bench smoke =="
python -m repro.bench --quick --out benchmarks/results/BENCH_smoke.json

echo "== backend bench smoke (fused vs numpy, paired) =="
python -m repro.bench --cases backends --quick --out benchmarks/results/BENCH_backends_smoke.json

echo "== retrieval bench smoke (candidate indexes vs exact, recall-gated) =="
python -m repro.bench --cases retrieval --quick --out benchmarks/results/BENCH_retrieval_smoke.json
python - <<'PY'
import json

payload = json.load(open("benchmarks/results/BENCH_retrieval_smoke.json"))
floors = []
for bench in payload["benchmarks"]:
    recall = bench["workload"]["recall"]
    floors.append((bench["name"], min(recall.values())))
    assert min(recall.values()) >= 0.5, (bench["name"], recall)
worst = min(floors, key=lambda pair: pair[1])
print(f"retrieval smoke ok ({len(floors)} case(s); worst recall {worst[1]:.3f} in {worst[0]})")
PY

echo "== stream bench smoke (fold-in vs retrain staleness race) =="
python -m repro.bench --cases stream --quick --out benchmarks/results/BENCH_stream_smoke.json
python - <<'PY'
import json

payload = json.load(open("benchmarks/results/BENCH_stream_smoke.json"))
for bench in payload["benchmarks"]:
    workload = bench["workload"]
    assert set(workload["ndcg_at_10"]) == {"fold_in", "retrain", "frozen"}, bench["name"]
    assert workload["ratio"] >= 0.0, (bench["name"], workload["ratio"])
    assert bench["speedup"] > 1.0, (bench["name"], bench["speedup"])
print(f"stream smoke ok ({len(payload['benchmarks'])} window(s); quick timings not gated)")
PY

echo "== train smoke =="
python scripts/train_smoke.py

echo "== serve smoke =="
python scripts/serve_smoke.py

echo "== serve load smoke (2 workers x 2 shards) =="
python scripts/serve_load_smoke.py

echo "== stream smoke (ingest -> fold-in -> serve parity -> attach) =="
python scripts/stream_smoke.py

echo "All checks passed."
