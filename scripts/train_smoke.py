#!/usr/bin/env python
"""CI smoke test for the repro.train engine: checkpoint → resume determinism.

Runs a tiny 2-epoch training twice — once straight through, once
interrupted after epoch 0 and resumed from the checkpoint — and asserts:

* both run dirs carry a valid ``repro.run/v1`` ``result.json``;
* final weights are bit-identical;
* ``history.jsonl`` is byte-identical.

Exit 0 on success, 1 with a message on any mismatch.

Usage: PYTHONPATH=src python scripts/train_smoke.py [workdir]
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.backend import ENV_VAR, activate_backend
from repro.train import execute_run, validate_run_result

RUN = dict(model="CML", dataset="ciao", scale=0.08, epochs=2, seed=0)


def main(argv: list[str]) -> int:
    # Pin the compute backend and re-export REPRO_BACKEND so both runs
    # (and any subprocesses they start) resolve the same kernels — the
    # bit-identical weight comparison below is only meaningful then.
    backend = activate_backend(os.environ.get(ENV_VAR, "numpy"))
    print(f"== backend {backend.name}")
    if len(argv) > 1:
        workdir = Path(argv[1])
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="repro-train-smoke-"))

    print(f"== straight run (2 epochs, checkpoint every epoch) → {workdir/'straight'}")
    straight = execute_run(out_dir=workdir / "straight", checkpoint_every=1, **RUN)

    ckpt = straight.run_dir.checkpoint_path(0)
    print(f"== resumed run (epoch 1 from {ckpt.name}) → {workdir/'resumed'}")
    resumed = execute_run(resume=ckpt, out_dir=workdir / "resumed")

    failures = []
    for name, outcome in (("straight", straight), ("resumed", resumed)):
        problems = validate_run_result(outcome.run_dir.read_result())
        if problems:
            failures.append(f"{name} result.json invalid: {problems}")

    a, b = straight.model.state_dict(), resumed.model.state_dict()
    if sorted(a) != sorted(b):
        failures.append(f"state_dict keys differ: {sorted(set(a) ^ set(b))}")
    else:
        diverged = [k for k in a if not np.array_equal(a[k], b[k])]
        if diverged:
            failures.append(f"weights diverged after resume: {diverged}")

    hist_a = (workdir / "straight" / "history.jsonl").read_text()
    hist_b = (workdir / "resumed" / "history.jsonl").read_text()
    if hist_a != hist_b:
        failures.append("history.jsonl differs between straight and resumed runs")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("train smoke OK: valid run dirs, bit-identical weights, identical history")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
