#!/usr/bin/env python
"""CI smoke test for the repro.serve spine: train → export → serve → query.

Trains CML for 2 epochs on the smallest ciao scale (checkpointed), freezes
the run directory into a ``repro.model/v1`` artifact via the real
``repro export`` CLI entry point, serves it over HTTP on an ephemeral port,
and asserts:

* ``/health`` reports the exported model identity;
* ``/recommend`` answers match an in-process :class:`RecommenderService`
  over the same artifact exactly (items and scores);
* served rankings equal the offline evaluator's ``topk_ranking`` over the
  frozen scorer — the serving ↔ offline parity guarantee;
* ``/score`` returns the frozen scores for explicit (user, items) pairs;
* ``/stats`` counters reconcile with the requests made.

Exit 0 on success, 1 with a message on any mismatch.

Usage: PYTHONPATH=src python scripts/serve_smoke.py [workdir]
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.data import load_preset, temporal_split
from repro.eval import topk_ranking
from repro.serve import RecommenderService, create_server, load_artifact
from repro.serve.cli import export_main
from repro.train import execute_run

RUN = dict(model="CML", dataset="ciao", scale=0.08, epochs=2, seed=0)


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        workdir = Path(argv[1])
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))

    print(f"== train ({RUN['model']} on {RUN['dataset']}×{RUN['scale']}, "
          f"{RUN['epochs']} epochs) → {workdir/'run'}")
    execute_run(out_dir=workdir / "run", checkpoint_every=1, **RUN)

    artifact_path = workdir / "model.npz"
    print(f"== export → {artifact_path}")
    if export_main([str(workdir / "run"), "--out", str(artifact_path)]) != 0:
        return fail("repro export exited non-zero")

    artifact = load_artifact(artifact_path)
    service = RecommenderService(artifact, index_k=20)
    server = create_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    print(f"== serve on {base}")

    try:
        health = _get(f"{base}/health")
        if health["model"] != "CML" or health["schema"] != "repro.model/v1":
            return fail(f"unexpected /health payload: {health}")

        print("== parity: served /recommend vs offline evaluator ranking")
        split = temporal_split(load_preset(RUN["dataset"], scale=RUN["scale"]))
        for k in (1, 10):
            users, topk = topk_ranking(artifact.scorer(), split, on="valid", k=k)
            for row, user in enumerate(users[:12]):
                body = _get(f"{base}/recommend?user={int(user)}&k={k}")
                if body["items"] != [int(i) for i in topk[row]]:
                    return fail(f"user {user} k={k}: served {body['items']} "
                                f"!= offline {topk[row].tolist()}")
                items, scores = service.recommend(int(user), k=k)
                if body["scores"] != [float(s) for s in scores]:
                    return fail(f"user {user} k={k}: HTTP scores differ from in-process")

        print("== /score parity with the frozen scorer")
        probe_items = [0, 1, artifact.n_items - 1]
        request = urllib.request.Request(
            f"{base}/score",
            data=json.dumps({"user": 0, "items": probe_items}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            scored = json.loads(response.read())
        expected = artifact.scorer().score_users(np.asarray([0]))[0][probe_items]
        if not np.allclose(scored["scores"], expected, atol=1e-12):
            return fail(f"/score returned {scored['scores']}, expected {expected.tolist()}")

        stats = _get(f"{base}/stats")
        if stats["requests"]["total"] < 1 or stats["requests"]["score"] != 1:
            return fail(f"stats counters off: {stats['requests']}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    print("serve smoke OK: export, parity, scoring and stats all check out")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
