#!/usr/bin/env python
"""CI smoke test for scale-out serving: pool → router → load harness.

Exports a tiny synthetic artifact as a shared mmap bundle, deploys it as
a 2-worker × 2-shard :class:`WorkerPool` behind the shard router, and
runs a quick closed-loop sweep against both that topology and the
single-process baseline.  Asserts:

* wire parity — every probed user's top-K (items *and* scores) served by
  the sharded pool matches a local :class:`RecommenderService` exactly
  (the sweep refuses to measure a deployment that fails this);
* zero transport or routing errors across every grid cell;
* the emitted document is valid ``repro.bench/v1`` (CI uploads it as a
  build artifact next to the numeric bench smoke).

Throughput numbers from this run are *not* meaningful — CI machines are
noisy and the workload is tiny; the committed ``BENCH_serve.json`` is
the trajectory document.  This gate is about correctness of the
multi-process path: fork, shared bundle, routing, parity, drain.

Exit 0 on success, 1 with a message on any failure.

Usage: PYTHONPATH=src python scripts/serve_load_smoke.py [out.json]
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.backend import ENV_VAR, activate_backend
from repro.bench.harness import validate_result, write_result
from repro.bench.load import sweep, synthetic_bundle

WORKERS = [0, 2]
SHARDS = 2
CONCURRENCY = [1, 4]
REQUESTS = 32


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main(argv: list[str]) -> int:
    # Pin the compute backend and re-export REPRO_BACKEND so the forked
    # pool workers resolve the same backend the parity baseline uses.
    backend = activate_backend(os.environ.get(ENV_VAR, "numpy"))
    print(f"== backend {backend.name}")
    out = Path(argv[1]) if len(argv) > 1 else Path("benchmarks/results/BENCH_serve_smoke.json")
    out.parent.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory(prefix="repro-load-smoke-") as tmp:
        bundle = synthetic_bundle(80, 150, 8, out_dir=tmp, seed=7)
        print(f"== bundle {bundle}")
        print(f"== sweep workers={WORKERS} shards={SHARDS} concurrency={CONCURRENCY}")
        # sweep() parity-probes every deployment over the wire before
        # measuring it and raises ServeError on any mismatch.
        result = sweep(
            bundle,
            workers_list=WORKERS,
            concurrency_list=CONCURRENCY,
            requests=REQUESTS,
            shards=SHARDS,
            micro_batch=4,
            quick=True,
        )

    problems = validate_result(result)
    if problems:
        return fail("invalid bench document: " + "; ".join(problems))
    expected = [f"serve.load.w{w}.c{c}" for w in WORKERS for c in CONCURRENCY]
    names = [record["name"] for record in result["benchmarks"]]
    if names != expected:
        return fail(f"grid cells {names} != expected {expected}")
    for record in result["benchmarks"]:
        workload = record["workload"]
        if workload["errors"]:
            return fail(f"{record['name']}: {workload['errors']} request error(s)")
        if workload["requests"] != REQUESTS:
            return fail(f"{record['name']}: completed {workload['requests']}/{REQUESTS}")
        print(f"   {record['name']:<20} qps={workload['qps']:8.1f} "
              f"p99={workload['p99_ms']:6.2f}ms errors=0")

    write_result(result, out)
    print(f"serve load smoke OK: parity held, {len(names)} cells clean → {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
