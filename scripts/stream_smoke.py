#!/usr/bin/env python
"""CI smoke test for the repro.stream spine: ingest → fold-in → serve → attach.

Trains CML for 2 epochs on the smallest ciao scale, freezes it in memory,
then drives the full streaming path:

* **Idempotence** — replaying every training interaction as events is all
  duplicates; the folded arrays must be bit-identical to the frozen ones.
* **Fold-in** — a brand-new user (plus a brand-new item) is ingested and
  folded; the served artifact must answer for them with finite scores,
  mask their evidence under ``exclude_seen``, and carry the stream
  provenance block.
* **Serve parity** — the folded artifact rides ``swap_artifact`` into a
  live :class:`RecommenderService`; untouched users' top-K must be
  identical before and after the swap (fold-in never moves frozen rows).
* **Attach** — a new tag is routed into a TaxoRec taxonomy with the
  ``s(t, G_k)`` score under ``REPRO_CHECK_MANIFOLD=1``; the expanded tree
  must keep subtree containment and survive ``to_dict``/``from_dict``.

Exit 0 on success, 1 with a message on any mismatch.

Usage: PYTHONPATH=src python scripts/stream_smoke.py
"""

from __future__ import annotations

import os
import sys

import numpy as np

os.environ.setdefault("REPRO_CHECK_MANIFOLD", "1")

from repro.data import load_preset, temporal_split
from repro.manifolds import PoincareBall
from repro.models import MODEL_REGISTRY, TrainConfig
from repro.serve import RecommenderService, artifact_from_model
from repro.stream import (
    StreamState,
    attach_tag,
    fold_into_artifact,
    fold_into_service,
    place_tag_embedding,
)
from repro.taxonomy import from_dict, to_dict

RUN = dict(model="CML", dataset="ciao", scale=0.08, epochs=2, seed=0)


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    print(f"== train ({RUN['model']} on {RUN['dataset']}×{RUN['scale']}, {RUN['epochs']} epochs)")
    dataset = load_preset(RUN["dataset"], scale=RUN["scale"], seed=RUN["seed"])
    split = temporal_split(dataset)
    model = MODEL_REGISTRY[RUN["model"]](split.train, TrainConfig(epochs=RUN["epochs"], seed=RUN["seed"]))
    model.fit(split)
    artifact = artifact_from_model(model, source="scripts/stream_smoke.py")
    print(f"   frozen: {artifact.n_users} users × {artifact.n_items} items, score_fn={artifact.score_fn}")

    print("== idempotence (replaying training interactions is a no-op)")
    state = StreamState.from_artifact(artifact)
    replay = [(u, int(i)) for u in range(artifact.n_users) for i in artifact.seen_items(u)]
    report = state.ingest(replay)
    if report.accepted != 0:
        return fail(f"replay accepted {report.accepted} events; expected all duplicates")
    folded = fold_into_artifact(artifact, state)
    for key, arr in artifact.arrays.items():
        if not np.array_equal(folded.arrays[key], arr):
            return fail(f"idempotent fold moved array {key!r}")
    print(f"   ok: {report.duplicates} duplicates, arrays untouched")

    print("== fold-in (new user + new item through the live service)")
    service = RecommenderService(artifact)
    before = {user: service.recommend(user, k=10) for user in range(0, artifact.n_users, 5)}
    new_user, new_item = artifact.n_users, artifact.n_items
    state = StreamState.from_artifact(artifact)
    report = state.ingest([(new_user, 0), (new_user, 3), (new_user, new_item), (1, new_item)])
    folded = fold_into_service(service, state)
    stream = service.stats()["stream"]
    if stream["folded_users"] != sorted({1, new_user}) or stream["folded_items"] != [new_item]:
        return fail(f"unexpected provenance {stream}")
    items, scores = service.recommend(new_user, k=10, exclude_seen=True)
    if not np.all(np.isfinite(scores)):
        return fail("non-finite scores for the folded user")
    if {0, 3, new_item} & set(int(i) for i in items):
        return fail("folded user's evidence leaked past exclude_seen")
    print(f"   ok: generation {stream['stream_generation']}, "
          f"{folded.n_users}×{folded.n_items} after fold")

    print("== serve parity (untouched users identical across the swap)")
    for user, (items_before, scores_before) in before.items():
        if user == 1:
            continue  # user 1 got new evidence by design
        items_after, scores_after = service.recommend(user, k=10)
        if not np.array_equal(items_after, items_before):
            return fail(f"user {user} ranking moved across the swap")
        if not np.allclose(scores_after, scores_before, rtol=0.0, atol=0.0):
            return fail(f"user {user} scores moved across the swap")
    print(f"   ok: {len(before) - 1} untouched users bit-identical")

    print("== attach (new tag routed into a live taxonomy, checks on)")
    taxo_model = MODEL_REGISTRY["TaxoRec"](split.train, TrainConfig(epochs=1, seed=RUN["seed"]))
    taxo_model.fit(split)
    if taxo_model.taxonomy is None:
        taxo_model.rebuild_taxonomy()
    taxonomy = taxo_model.taxonomy
    n_tags = taxonomy.n_tags
    psi = np.concatenate([split.train.item_tags, split.train.item_tags[:, :1]], axis=1)
    decision = attach_tag(taxonomy, psi, n_tags)
    for node in taxonomy.nodes():
        for child in node.children:
            if not set(child.members.tolist()) <= set(node.members.tolist()):
                return fail("attach broke subtree containment")
    clone = from_dict(to_dict(taxonomy))
    if clone.n_nodes != taxonomy.n_nodes or clone.n_tags != taxonomy.n_tags:
        return fail("expanded taxonomy did not survive to_dict/from_dict")
    ball = PoincareBall()
    tag_emb = ball.proj(np.asarray(taxo_model.tag_emb.data))
    members = np.array([t for t in taxonomy.root.members.tolist() if t != n_tags][:8])
    point = place_tag_embedding(tag_emb, members, ball=ball)
    if not np.linalg.norm(point) < 1.0:
        return fail("placed tag embedding escaped the ball")
    print(f"   ok: tag {decision.tag} attached at level {decision.level} "
          f"(path {decision.path}, general={decision.general})")

    print("stream smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
