"""Taxonomy construction deep-dive (the paper's RQ4 / Fig. 6 workflow).

Run:
    python examples/taxonomy_explorer.py

Trains TaxoRec on the Yelp-like preset (deepest planted hierarchy), then:
  * renders the automatically constructed taxonomy,
  * scores how well it recovers the planted ground truth,
  * contrasts against a taxonomy built from *untrained* tag embeddings to
    show how much the joint training sharpens the structure.
"""

import numpy as np

from repro import TaxoRec, TrainConfig, load_preset, temporal_split
from repro.manifolds import PoincareBall
from repro.taxonomy import build_taxonomy, evaluate_recovery
from repro.utils import render_table

def main() -> None:
    dataset = load_preset("yelp", scale=0.4)
    split = temporal_split(dataset)
    print(dataset)

    config = TrainConfig(
        epochs=50,
        batch_size=1024,
        lr=1.0,
        margin=2.0,
        n_layers=2,
        taxo_lambda=0.1,
        seed=0,
    )
    model = TaxoRec(split.train, config)

    # Baseline: taxonomy from untrained (random) tag embeddings.
    rng = np.random.default_rng(0)
    random_emb = PoincareBall().random((dataset.n_tags, config.tag_dim), rng, scale=0.1)
    random_taxo = build_taxonomy(
        random_emb, dataset.item_tags, k=config.taxo_k, delta=config.taxo_delta, rng=0
    )
    before = evaluate_recovery(random_taxo, dataset.tag_parent)

    print("\nTraining TaxoRec (joint taxonomy construction + recommendation)…")
    model.fit(split)
    after = evaluate_recovery(model.taxonomy, dataset.tag_parent)

    print(
        render_table(
            ["Embeddings", "AncestorP", "AncestorR", "AncestorF1", "Level1-NMI", "Depth", "Nodes"],
            [
                ["random (before training)"] + before.as_row(),
                ["trained (TaxoRec)"] + after.as_row(),
            ],
            title="\nTaxonomy recovery vs planted ground truth",
        )
    )

    print("\nConstructed taxonomy:")
    print(model.taxonomy.render(tag_names=dataset.tag_names, max_tags=4))

    # Show one subtree in detail, Fig.-6 style.
    level1 = [n for n in model.taxonomy.nodes() if n.level == 1]
    if level1:
        node = max(level1, key=lambda n: len(n.members))
        names = [dataset.tag_names[t] for t in node.members[:10]]
        print(f"\nLargest level-1 tag set ({len(node.members)} tags):")
        print("  " + ", ".join(f"<{n}>" for n in names))


if __name__ == "__main__":
    main()
