"""Head-to-head comparison: TaxoRec vs representative baselines.

Run:
    python examples/baseline_comparison.py [preset]

Trains one model per family (MF, Euclidean metric, hyperbolic metric,
graph, tag-based, and TaxoRec) on a preset and prints a Table-II-style
comparison with Wilcoxon significance of TaxoRec over the best baseline.
"""

import sys

import numpy as np

from repro import evaluate, load_preset, temporal_split
from repro.eval import wilcoxon_improvement
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

MODELS = ("BPRMF", "CML", "HyperML", "LightGCN", "HGCF", "CMLF", "TaxoRec")
SEEDS = (0, 1, 2)

def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "amazon-cd"
    split = temporal_split(load_preset(preset, scale=0.5))
    print(f"dataset: {preset} (scaled)  train={split.train.n_interactions} "
          f"test={split.test.n_interactions}")

    per_model: dict[str, list] = {}
    for name in MODELS:
        results = []
        for seed in SEEDS:
            config = tuned_config(name, preset, epochs=60, seed=seed)
            model = create_model(name, split.train, config)
            model.fit(split)
            results.append(evaluate(model, split, on="test"))
        per_model[name] = results
        mean = np.mean([r.recall_at_10 for r in results])
        print(f"  {name}: mean Recall@10 = {mean:.4f}")

    rows = []
    for name in MODELS:
        rs = per_model[name]
        rows.append(
            [name]
            + [
                f"{100 * np.mean([getattr(r, m) for r in rs]):.2f}"
                f"±{100 * np.std([getattr(r, m) for r in rs]):.2f}"
                for m in ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")
            ]
        )
    print()
    print(render_table(["Model", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"], rows))

    # Significance of TaxoRec over the strongest baseline (per-seed pairs).
    baseline_means = {
        n: np.mean([r.mean() for r in rs]) for n, rs in per_model.items() if n != "TaxoRec"
    }
    best = max(baseline_means, key=baseline_means.get)
    taxo = np.array([r.mean() for r in per_model["TaxoRec"]])
    base = np.array([r.mean() for r in per_model[best]])
    p, significant = wilcoxon_improvement(taxo, base)
    print(f"\nTaxoRec vs best baseline ({best}): p={p:.4f} "
          f"({'significant' if significant else 'not significant'} at 5%)")


if __name__ == "__main__":
    main()
