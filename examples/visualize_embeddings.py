"""Visualise learned tag embeddings on the Poincaré disc (Fig. 3/6 style).

Run:
    python examples/visualize_embeddings.py

Trains a small 2-D TaxoRec so the tag space is directly drawable, then
writes two SVGs next to this script:

* ``tags_trained.svg``  — tag embeddings after joint training, coloured by
  their *planted* top-level subtree, with true parent-child edges;
* ``tags_random.svg``   — the untrained initialisation for contrast.
"""

from pathlib import Path

import numpy as np

from repro import TaxoRec, TrainConfig, load_preset, temporal_split
from repro.taxonomy import poincare_disc_svg, save_svg

def top_level_labels(parent: np.ndarray) -> np.ndarray:
    labels = np.zeros(len(parent), dtype=np.int64)
    for t in range(len(parent)):
        cur = t
        while parent[cur] != -1:
            cur = parent[cur]
        labels[t] = cur
    return labels


def main() -> None:
    dataset = load_preset("amazon-cd", scale=0.5)
    split = temporal_split(dataset)
    labels = top_level_labels(dataset.tag_parent)
    edges = [(int(p), t) for t, p in enumerate(dataset.tag_parent) if p != -1]

    config = TrainConfig(
        dim=10, tag_dim=2,  # 2-D tag ball → directly drawable
        epochs=40, batch_size=1024, lr=1.0, margin=2.0, n_layers=2,
        taxo_lambda=0.1, seed=0,
    )
    model = TaxoRec(split.train, config)
    before = model.tag_emb.data.copy()

    print("training 2-D TaxoRec…")
    model.fit(split)
    after = model.tag_emb.data

    out_dir = Path(__file__).parent
    save_svg(
        poincare_disc_svg(before, labels=labels, edges=edges, names=dataset.tag_names),
        out_dir / "tags_random.svg",
    )
    save_svg(
        poincare_disc_svg(after, labels=labels, edges=edges, names=dataset.tag_names),
        out_dir / "tags_trained.svg",
    )
    print(f"wrote {out_dir / 'tags_random.svg'} and {out_dir / 'tags_trained.svg'}")

    # Quantify the visual: same-subtree tags should sit closer after training.
    from repro.manifolds import PoincareBall

    ball = PoincareBall()

    def cohesion(emb):
        same, diff = [], []
        for i in range(len(emb)):
            for j in range(i + 1, len(emb)):
                d = ball.dist_np(emb[i], emb[j])
                (same if labels[i] == labels[j] else diff).append(d)
        return np.mean(diff) / np.mean(same)

    print(f"inter/intra subtree distance ratio: before={cohesion(before):.2f}, "
          f"after={cohesion(after):.2f} (higher = cleaner hierarchy)")


if __name__ == "__main__":
    main()
