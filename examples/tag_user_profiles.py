"""Interpretable tag-based user profiles (the paper's RQ5 / Table V).

Run:
    python examples/tag_user_profiles.py

Trains TaxoRec, then for a few users prints their nearest tags in the
shared hyperbolic metric space alongside the items TaxoRec recommends —
the tags act as a human-readable explanation of each recommendation list.
"""

import numpy as np

from repro import TaxoRec, TrainConfig, load_preset, temporal_split

def main() -> None:
    dataset = load_preset("amazon-book", scale=0.4)
    split = temporal_split(dataset)

    config = TrainConfig(
        epochs=50, batch_size=1024, lr=1.0, margin=2.0, n_layers=2,
        taxo_lambda=0.1, seed=0,
    )
    model = TaxoRec(split.train, config)
    model.fit(split)

    rng = np.random.default_rng(7)
    per_user = split.train.items_of_user()
    candidates = [u for u in range(dataset.n_users) if len(per_user[u]) >= 5]
    users = rng.choice(candidates, size=4, replace=False)

    tag_dist = model.user_tag_distances(users)
    scores = model.score_users(users)

    print("Tag-based user profiles (nearest tags ⇒ recommended items)\n")
    for i, user in enumerate(users):
        top_tags = np.argsort(tag_dist[i])[:4]
        row_scores = scores[i].copy()
        row_scores[per_user[user]] = -np.inf
        top_items = np.argsort(-row_scores)[:4]

        tag_str = "; ".join(f"<{dataset.tag_names[t]}>" for t in top_tags)
        item_strs = []
        for v in top_items:
            tags = dataset.tags_of_item(v)
            label = dataset.tag_names[tags[0]] if len(tags) else "untagged"
            item_strs.append(f"item {v} ({label})")
        print(f"User {user}")
        print(f"  closest tags : {tag_str}")
        print(f"  recommended  : {'; '.join(item_strs)}")
        overlap = _profile_consistency(dataset, top_tags, top_items)
        print(f"  profile/recs tag overlap: {overlap:.0%}\n")


def _profile_consistency(dataset, profile_tags, items) -> float:
    """Fraction of recommended items sharing a tag (or ancestor) with the profile."""
    profile = set(int(t) for t in profile_tags)
    parent = dataset.tag_parent
    hits = 0
    for v in items:
        tags = set(int(t) for t in dataset.tags_of_item(v))
        expanded = set(tags)
        for t in tags:
            cur = parent[t] if parent is not None else -1
            while cur != -1:
                expanded.add(int(cur))
                cur = parent[cur]
        if expanded & profile:
            hits += 1
    return hits / max(len(items), 1)


if __name__ == "__main__":
    main()
