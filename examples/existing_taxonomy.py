"""Extension demo: incorporating an existing taxonomy (paper §VI future work).

Run:
    python examples/existing_taxonomy.py

When a curated taxonomy already exists, TaxoRec can consume it directly via
``fixed_taxonomy`` instead of constructing one — here we compare three
settings on the same dataset: no taxonomy, automatically constructed, and
the planted ground-truth taxonomy (an oracle upper bound only synthetic
data can provide).
"""

from repro import TaxoRec, TrainConfig, evaluate, load_preset, temporal_split
from repro.taxonomy import Taxonomy
from repro.utils import render_table

def main() -> None:
    dataset = load_preset("amazon-cd", scale=0.5)
    split = temporal_split(dataset)
    oracle = Taxonomy.from_parent_array(dataset.tag_parent)
    config_kwargs = dict(
        epochs=40, batch_size=1024, lr=1.0, margin=2.0, n_layers=2,
        taxo_lambda=0.1, seed=0,
    )

    rows = []
    for label, model_kwargs in (
        ("no taxonomy", dict(use_taxonomy=False)),
        ("constructed (Algorithm 1)", {}),
        ("existing/oracle taxonomy", dict(fixed_taxonomy=oracle)),
    ):
        model = TaxoRec(split.train, TrainConfig(**config_kwargs), **model_kwargs)
        model.fit(split)
        result = evaluate(model, split, on="test")
        rows.append([label] + result.as_row())
        print(f"done: {label}")

    print()
    print(
        render_table(
            ["Taxonomy", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
            rows,
            title="TaxoRec with different taxonomy sources (%):",
        )
    )


if __name__ == "__main__":
    main()
