"""Quickstart: train TaxoRec on a synthetic Ciao-like dataset and recommend.

Run:
    python examples/quickstart.py

Takes about a minute on a laptop CPU.  Demonstrates the three core calls of
the public API: loading a preset dataset, fitting TaxoRec, and evaluating /
producing recommendations.
"""

import numpy as np

from repro import TaxoRec, TrainConfig, evaluate, load_preset, temporal_split

def main() -> None:
    # 1. Data: a taxonomy-planted synthetic dataset mirroring the paper's
    #    Ciao benchmark (28 tags, 2-level hierarchy), split 60/20/20 by time.
    dataset = load_preset("ciao", scale=0.5)
    split = temporal_split(dataset)
    print(dataset)

    # 2. Model: TaxoRec with the paper's setup — 64 total dimensions of
    #    which 12 are tag-relevant, K=3 children per taxonomy node, δ=0.5.
    config = TrainConfig(
        epochs=40,
        batch_size=1024,
        lr=1.0,
        margin=2.0,
        n_layers=2,
        taxo_k=3,
        taxo_delta=0.5,
        taxo_lambda=0.1,
        seed=0,
        eval_every=10,
        patience=3,
    )
    model = TaxoRec(split.train, config)
    model.fit(split)

    # 3. Evaluate on the held-out test interactions (full ranking, unsampled).
    result = evaluate(model, split, on="test")
    print(
        f"\nTest metrics: Recall@10={result.recall_at_10:.4f} "
        f"Recall@20={result.recall_at_20:.4f} "
        f"NDCG@10={result.ndcg_at_10:.4f} NDCG@20={result.ndcg_at_20:.4f}"
    )

    # 4. Recommend: top-5 unseen items for a user, with their tags.
    user = 0
    scores = model.score_users(np.array([user]))[0]
    seen = split.train.items_of_user()[user]
    scores[seen] = -np.inf
    top = np.argsort(-scores)[:5]
    print(f"\nTop-5 recommendations for user {user}:")
    for rank, item in enumerate(top, 1):
        tags = ", ".join(dataset.tag_names[t] for t in dataset.tags_of_item(item))
        print(f"  {rank}. item {item} (tags: {tags or 'none'})")

    # 5. The jointly constructed tag taxonomy.
    print("\nConstructed tag taxonomy (top levels):")
    print(model.taxonomy.render(tag_names=dataset.tag_names))


if __name__ == "__main__":
    main()
