"""Command-line interface: train and evaluate any registered model.

Usage:
    python -m repro --model TaxoRec --dataset ciao
    python -m repro --model HGCF --dataset yelp --scale 0.5 --epochs 60
    python -m repro --list-models
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .data import PRESET_NAMES, compute_stats, load_preset, temporal_split
from .eval import evaluate
from .models import MODEL_REGISTRY, create_model
from .models.defaults import tuned_config
from .utils import Timer, render_table

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaxoRec reproduction: train and evaluate recommenders on synthetic presets",
    )
    parser.add_argument("--model", default="TaxoRec", help="registered model name")
    parser.add_argument("--dataset", default="ciao", choices=PRESET_NAMES)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale multiplier")
    parser.add_argument("--epochs", type=int, default=None, help="override training epochs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", metavar="PATH", default=None, help="save trained weights (.npz)")
    parser.add_argument("--show-taxonomy", action="store_true", help="render the constructed taxonomy (TaxoRec)")
    parser.add_argument("--list-models", action="store_true", help="list registered models and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: train one model on one preset and report test metrics."""
    args = build_parser().parse_args(argv)
    if args.list_models:
        for name in sorted(MODEL_REGISTRY):
            print(name)
        return 0
    if args.model not in MODEL_REGISTRY:
        print(f"unknown model {args.model!r}; use --list-models", file=sys.stderr)
        return 2

    dataset = load_preset(args.dataset, scale=args.scale)
    split = temporal_split(dataset)
    stats = compute_stats(dataset)
    print(
        render_table(
            ["Dataset", "#User", "#Item", "#Interaction", "Density(%)", "#Tag", "Tags/Item", "Depth"],
            [stats.as_row()],
        )
    )

    config = tuned_config(args.model, args.dataset, epochs=args.epochs, seed=args.seed)
    model = create_model(args.model, split.train, config)
    print(f"\ntraining {args.model} ({model.num_parameters()} parameters, "
          f"{config.epochs} epochs)…")
    with Timer() as timer:
        model.fit(split)
    result = evaluate(model, split, on="test")
    print(f"trained in {timer.elapsed:.1f}s")
    print(
        render_table(
            ["Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
            [result.as_row()],
            title="\nTest metrics (%):",
        )
    )

    if args.show_taxonomy and getattr(model, "taxonomy", None) is not None:
        print("\nConstructed taxonomy:")
        print(model.taxonomy.render(tag_names=dataset.tag_names))

    if args.save:
        np.savez(args.save, **model.state_dict())
        print(f"\nweights saved to {args.save}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
