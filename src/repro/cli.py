"""Command-line interface: train and evaluate any registered model.

Usage:
    python -m repro --model TaxoRec --dataset ciao
    python -m repro --model HGCF --dataset yelp --scale 0.5 --epochs 60
    python -m repro --model CML --dataset ciao --out-dir runs/cml --checkpoint-every 10
    python -m repro --resume runs/cml/checkpoint_0009.npz --out-dir runs/cml_resumed
    python -m repro experiment --models TaxoRec,CML --datasets ciao --seeds 0,1 --out-dir runs/sweep
    python -m repro export runs/cml --out models/cml.npz
    python -m repro serve models/cml.npz --port 8731
    python -m repro stream fold models/cml.npz --events events.json --out models/cml_folded.npz
    python -m repro --list-models
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .backend import UnknownBackendError, activate_backend, available_backends
from .data import PRESET_NAMES, compute_stats
from .models import MODEL_REGISTRY
from .train import execute_run, run_experiment
from .utils import render_table

__all__ = ["main"]

_METRIC_HEADERS = ["Recall@10", "Recall@20", "NDCG@10", "NDCG@20"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaxoRec reproduction: train and evaluate recommenders on synthetic presets",
        epilog="Subcommands: python -m repro {experiment,export,serve,stream} --help",
    )
    parser.add_argument("--model", default="TaxoRec", help="registered model name")
    parser.add_argument("--dataset", default="ciao", choices=PRESET_NAMES)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale multiplier")
    parser.add_argument("--epochs", type=int, default=None, help="override training epochs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--verbose", action="store_true", help="per-epoch log lines (repro.utils.logging)")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="write run artifacts: config.json, history.jsonl, checkpoints, result.json")
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="write a resumable checkpoint every N epochs (requires --out-dir)")
    parser.add_argument("--resume", metavar="CKPT", default=None,
                        help="resume from a checkpoint .npz (model/dataset/config come from the checkpoint)")
    parser.add_argument("--save", metavar="PATH", default=None, help="save trained weights (.npz)")
    parser.add_argument("--show-taxonomy", action="store_true", help="render the constructed taxonomy (TaxoRec)")
    parser.add_argument("--list-models", action="store_true", help="list registered models and exit")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()} "
                        "(default: $REPRO_BACKEND or 'numpy')")
    return parser


def build_experiment_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro experiment``."""
    parser = argparse.ArgumentParser(
        prog="repro experiment",
        description="Sweep a model × dataset × seed grid; one repro.run/v1 run dir per cell",
    )
    parser.add_argument("--models", default="TaxoRec,CML", help="comma-separated registry names")
    parser.add_argument("--datasets", default="ciao", help="comma-separated preset names")
    parser.add_argument("--seeds", default="0", help="comma-separated integer seeds")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale multiplier")
    parser.add_argument("--epochs", type=int, default=None, help="override training epochs")
    parser.add_argument("--out-dir", metavar="DIR", default="runs/experiment")
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    parser.add_argument("--jobs", type=int, default=1, help="parallel worker processes (1 = sequential)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()} "
                        "(default: $REPRO_BACKEND or 'numpy')")
    return parser


_STATS_HEADERS = ["Dataset", "#User", "#Item", "#Interaction", "Density(%)", "#Tag", "Tags/Item", "Depth"]


def _print_run_start(dataset, split, model, config) -> None:
    print(render_table(_STATS_HEADERS, [compute_stats(dataset).as_row()]))
    print(f"\ntraining {model.name} ({model.num_parameters()} parameters, "
          f"{config.epochs} epochs)…")


def _activate_backend_arg(name: str | None) -> str | None:
    """Apply a ``--backend`` flag; returns an error message on failure."""
    if name is None:
        return None
    try:
        activate_backend(name)
    except UnknownBackendError as exc:
        return str(exc)
    return None


def experiment_main(argv: list[str]) -> int:
    """Entry point for the ``experiment`` subcommand."""
    args = build_experiment_parser().parse_args(argv)
    error = _activate_backend_arg(args.backend)
    if error:
        print(error, file=sys.stderr)
        return 2
    models = [m.strip() for m in args.models.split(",") if m.strip()]
    datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        print(f"--seeds must be comma-separated integers, got {args.seeds!r}", file=sys.stderr)
        return 2
    try:
        experiment = run_experiment(
            models,
            datasets,
            seeds,
            args.out_dir,
            scale=args.scale,
            epochs=args.epochs,
            checkpoint_every=args.checkpoint_every,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(experiment.table)
    print(f"\nexperiment artifacts in {experiment.out_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: train one model on one preset and report test metrics."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["experiment"]:
        return experiment_main(argv[1:])
    if argv[:1] == ["export"]:
        from .serve.cli import export_main

        return export_main(argv[1:])
    if argv[:1] == ["serve"]:
        from .serve.cli import serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["stream"]:
        from .stream.cli import main as stream_main

        return stream_main(argv[1:])
    args = build_parser().parse_args(argv)
    error = _activate_backend_arg(args.backend)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.list_models:
        for name in sorted(MODEL_REGISTRY):
            print(name)
        return 0
    if args.resume is None and args.model not in MODEL_REGISTRY:
        print(f"unknown model {args.model!r}; use --list-models", file=sys.stderr)
        return 2
    if args.checkpoint_every and not args.out_dir:
        print("--checkpoint-every requires --out-dir", file=sys.stderr)
        return 2

    outcome = execute_run(
        model=args.model,
        dataset=args.dataset,
        seed=args.seed,
        scale=args.scale,
        epochs=args.epochs,
        out_dir=args.out_dir,
        checkpoint_every=args.checkpoint_every,
        verbose=args.verbose,
        resume=args.resume,
        on_start=_print_run_start,
    )
    print(f"trained in {outcome.result['timing']['train_seconds']:.1f}s")
    print(
        render_table(
            _METRIC_HEADERS,
            [outcome.test_result.as_row()],
            title="\nTest metrics (%):",
        )
    )

    if args.show_taxonomy and getattr(outcome.model, "taxonomy", None) is not None:
        print("\nConstructed taxonomy:")
        print(outcome.model.taxonomy.render(tag_names=outcome.dataset.tag_names))

    if args.save:
        np.savez(args.save, **outcome.model.state_dict())
        print(f"\nweights saved to {args.save}")
    if args.out_dir:
        print(f"\nrun artifacts in {args.out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
