"""User-hash sharding: the pure arithmetic underneath the scale-out stack.

A shard is a deterministic function of the user id alone — no lookup
table, no coordination — so every router, worker and client library
computes the same assignment independently.  The hash is a fixed-width
integer mix (splitmix64 finalizer), not Python's salted ``hash``, so
assignments are stable across processes, machines and interpreter runs:
the property the re-sharding tests in ``tests/test_serve_router.py``
lean on.

``ShardMap`` adds the second level: which worker process owns which
shard.  Shards are striped round-robin over workers so ``n_shards`` can
exceed ``n_workers`` (the CI smoke runs 2 workers × 2 shards; a
re-shard from N to M workers keeps the user → shard function unchanged
and only remaps shard → worker).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["shard_for_user", "ShardMap"]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit integer mix."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def shard_for_user(user: int, n_shards: int) -> int:
    """The unique shard in ``[0, n_shards)`` owning ``user``.

    Deterministic, process-independent, and uniform even for the
    contiguous integer ids the synthetic presets use (a bare modulo
    would correlate with id-assignment order).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return _splitmix64(int(user)) % n_shards


@dataclass(frozen=True)
class ShardMap:
    """Static shard → worker assignment for one pool deployment.

    Shard ``s`` lives on worker ``s % n_workers``; users map to shards
    via :func:`shard_for_user`.  Frozen so a map can be shared freely
    across router threads.
    """

    n_shards: int
    n_workers: int

    def __post_init__(self) -> None:
        if self.n_shards < 1 or self.n_workers < 1:
            raise ValueError(
                f"need at least one shard and one worker, got "
                f"{self.n_shards} shard(s) on {self.n_workers} worker(s)"
            )

    def worker_for_shard(self, shard: int) -> int:
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range for {self.n_shards} shards")
        return shard % self.n_workers

    def worker_for_user(self, user: int) -> int:
        return self.worker_for_shard(shard_for_user(user, self.n_shards))

    def shards_for_worker(self, worker: int) -> tuple[int, ...]:
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"worker {worker} out of range for {self.n_workers} workers")
        return tuple(range(worker, self.n_shards, self.n_workers))
