"""``RecommenderService``: low-latency top-K serving over a frozen artifact.

The service is the paper's scoring rule (Eq. 17 for TaxoRec, the
baselines' own scorers otherwise) decoupled from training: pure-numpy
batched scoring over the frozen arrays, the *same* deterministic
``(-score, item_id)`` ranking as the offline evaluator
(:func:`repro.eval.metrics.rank_topk`), and the same exclude-seen
masking, so a served top-K list is bit-identical to the offline
evaluator's ranking of the same model — the property
``tests/test_serve_parity.py`` enforces for every registered model.

Concurrency model: everything a request reads — artifact, scorer,
precomputed index — lives in one immutable ``_Engine`` snapshot.  A
request grabs ``self._engine`` exactly once and never touches the
service's mutable state again, so :meth:`swap_artifact` (hot deploy of a
retrained model) is a single atomic reference flip: an in-flight request
finishes entirely on the old snapshot, the next request starts entirely
on the new one, and no request can ever observe a torn mix of the two
(``tests/test_serve_pool.py`` hammers this under load).  The LRU cache
is keyed by engine version so stale entries become unreachable the
instant a swap lands.

Around that core sit the serving conveniences:

* an optional precomputed top-K index (one batched pass over all users),
  rebuilt on the *new* snapshot before a swap is installed;
* a bounded LRU response cache with explicit invalidation;
* per-request latency / hit-rate counters surfaced by :meth:`stats`;
* optional shard ownership (``shard=(shard_id, n_shards)``): a service
  deployed as one shard of a pool rejects users it does not own with
  :class:`~repro.serve.errors.ShardRoutingError`;
* :meth:`recommend_batch` — the micro-batching entry point: many users,
  one batched matmul, responses bit-identical to per-user calls (the
  frozen scorers are batch-size invariant; see ``scoring.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..eval.metrics import rank_topk
from ..retrieval import build_index as build_retrieval_index
from ..retrieval import get_retrieval
from .artifact import ModelArtifact, load_artifact
from .errors import BadRequestError, ShardRoutingError
from .sharding import shard_for_user

__all__ = ["RecommenderService"]


class _Engine:
    """Immutable per-artifact snapshot: everything one request reads.

    ``index`` and ``retrieval`` are the only slots assigned after
    construction (both attach a build result to the snapshot it was
    computed on); each assignment is atomic and readers take it once, so
    a build racing a swap can at worst attach to an already-retired
    snapshot.
    """

    __slots__ = ("artifact", "scorer", "n_users", "n_items", "version", "index", "retrieval")

    def __init__(self, artifact: ModelArtifact, version: int):
        self.artifact = artifact
        self.scorer = artifact.scorer()
        self.n_users = self.scorer.n_users
        self.n_items = self.scorer.n_items
        self.version = version
        self.index: dict | None = None
        self.retrieval = None  # CandidateIndex, attached by _build_retrieval


class RecommenderService:
    """Serve ``recommend``/``score`` requests from one model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`~repro.serve.artifact.ModelArtifact` or a path to
        one (``.npz`` file or shared bundle directory; loaded and
        validated on construction).
    cache_size:
        Capacity of the per-request LRU cache (0 disables caching).
    index_k:
        When positive, precompute a top-``index_k`` index for every user
        at construction; ``recommend`` serves any ``k <= index_k`` with
        ``exclude_seen=True`` straight from the index.
    shard:
        Optional ``(shard_id, n_shards)``: this instance serves only the
        users whose :func:`~repro.serve.sharding.shard_for_user` equals
        ``shard_id`` and rejects the rest with :class:`ShardRoutingError`.
    retrieval:
        Candidate-index kind from :func:`repro.retrieval.available_retrieval`
        (``None`` resolves the process-wide :func:`repro.retrieval.get_retrieval`
        selection, default ``"exact"``).  Non-exact kinds route ``recommend``
        top-K through a :class:`~repro.retrieval.CandidateIndex` built per
        artifact snapshot; ``"exact"`` keeps the batched full-scoring path
        byte-for-byte as before.  The built index's provenance (kind, build
        params, build-time recall) is surfaced by :meth:`stats`, and a hot
        swap rebuilds the index on the incoming snapshot before the flip.
    retrieval_params:
        Build parameters forwarded to :func:`repro.retrieval.build_index`
        (e.g. ``block_items``/``dtype`` for blockwise, ``n_buckets``/
        ``max_scan`` for bucketed, ``recall_sample_users`` for all kinds).
    """

    def __init__(
        self,
        artifact,
        cache_size: int = 1024,
        index_k: int = 0,
        shard: tuple[int, int] | None = None,
        retrieval: str | None = None,
        retrieval_params: dict | None = None,
    ):
        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(Path(artifact))
        if shard is not None:
            shard_id, n_shards = int(shard[0]), int(shard[1])
            if not 0 <= shard_id < n_shards:
                raise BadRequestError(
                    f"shard id {shard_id} out of range for {n_shards} shard(s)"
                )
            shard = (shard_id, n_shards)
        self.shard = shard
        self._retrieval_spec = (
            retrieval if retrieval is not None else get_retrieval(),
            dict(retrieval_params or {}),
        )
        self._engine = _Engine(artifact, version=1)
        self._build_retrieval(self._engine)
        self._lock = threading.Lock()
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_capacity = max(int(cache_size), 0)
        self._counts = {"recommend": 0, "score": 0}
        self._cache_stats = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        self._latency = {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        self._swaps = 0
        self._started = time.time()
        if index_k:
            self.build_index(index_k)

    # ------------------------------------------------------------------
    # Engine-backed views (stable public attributes)
    # ------------------------------------------------------------------
    @property
    def artifact(self) -> ModelArtifact:
        return self._engine.artifact

    @property
    def scorer(self):
        return self._engine.scorer

    @property
    def n_users(self) -> int:
        return self._engine.n_users

    @property
    def n_items(self) -> int:
        return self._engine.n_items

    @property
    def artifact_version(self) -> int:
        """Monotonic version of the served artifact (bumped by hot swaps)."""
        return self._engine.version

    @property
    def retrieval_kind(self) -> str:
        """The candidate-index kind this service was configured with."""
        return self._retrieval_spec[0]

    @property
    def retrieval_index(self):
        """The live :class:`~repro.retrieval.CandidateIndex` snapshot."""
        return self._engine.retrieval

    def _build_retrieval(self, engine: _Engine) -> None:
        """Build the configured candidate index on one engine snapshot.

        Called before the snapshot is published (construction, hot swap,
        invalidation), so requests never observe a half-built index.
        """
        kind, params = self._retrieval_spec
        engine.retrieval = build_retrieval_index(engine.artifact, kind, **params)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_user(self, user: int, engine: _Engine) -> int:
        try:
            user = int(user)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"user id must be an integer, got {user!r}") from exc
        if not 0 <= user < engine.n_users:
            raise BadRequestError(
                f"user id {user} out of range for a model with {engine.n_users} users"
            )
        if self.shard is not None:
            shard_id, n_shards = self.shard
            owner = shard_for_user(user, n_shards)
            if owner != shard_id:
                raise ShardRoutingError(
                    f"user {user} belongs to shard {owner}/{n_shards}, "
                    f"but this worker serves shard {shard_id}"
                )
        return user

    def _check_items(self, items, engine: _Engine) -> np.ndarray:
        try:
            items = np.asarray(items, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"item ids must be integers, got {items!r}") from exc
        if items.ndim != 1:
            raise BadRequestError("items must be a flat list of item ids")
        if len(items) and (items.min() < 0 or items.max() >= engine.n_items):
            bad = items[(items < 0) | (items >= engine.n_items)][0]
            raise BadRequestError(
                f"item id {int(bad)} out of range for a model with {engine.n_items} items"
            )
        return items

    def _check_k(self, k: int, engine: _Engine) -> int:
        try:
            k = int(k)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"k must be an integer, got {k!r}") from exc
        if k < 1:
            raise BadRequestError(f"k must be positive, got {k}")
        return min(k, engine.n_items)

    def check_request(self, user: int, k: int, exclude_seen: bool) -> tuple[int, int, bool]:
        """Validate and normalise one recommend request (typed errors).

        Used by the micro-batcher to reject bad requests synchronously in
        the caller's thread, so one malformed request can never poison a
        coalesced batch.
        """
        engine = self._engine
        return self._check_user(user, engine), self._check_k(k, engine), bool(exclude_seen)

    def seen_items(self, user: int) -> np.ndarray:
        """Item ids the user interacted with in the exported training data."""
        engine = self._engine
        return engine.artifact.seen_items(self._check_user(user, engine))

    # ------------------------------------------------------------------
    # Scoring core
    # ------------------------------------------------------------------
    def _masked_scores(
        self, engine: _Engine, users: np.ndarray, exclude_seen: bool
    ) -> np.ndarray:
        """Batched float64 scores with seen items masked to ``-inf``.

        Mirrors :func:`repro.eval.evaluator.evaluate`: same dtype, same
        CSR row slicing, same ``-inf`` masking, so rankings agree exactly.
        """
        scores = np.asarray(engine.scorer.score_users(users), dtype=np.float64)
        if exclude_seen:
            indptr = engine.artifact.seen_indptr
            indices = engine.artifact.seen_indices
            starts, stops = indptr[users], indptr[users + 1]
            rows = np.repeat(np.arange(len(users)), stops - starts)
            cols = (
                np.concatenate([indices[a:b] for a, b in zip(starts, stops)])
                if len(rows)
                else np.zeros(0, dtype=np.int64)
            )
            scores[rows, cols] = -np.inf
        return scores

    def recommend(
        self, user: int, k: int = 10, exclude_seen: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic top-``k`` ``(item_ids, scores)`` for one user.

        Ranking key is ``(-score, item_id)`` — identical to the offline
        evaluator.  ``k`` larger than the catalogue is clamped; seen items
        (scored ``-inf``) can only appear once unseen items run out.
        """
        t0 = time.perf_counter()
        engine = self._engine
        user = self._check_user(user, engine)
        k = self._check_k(k, engine)
        exclude_seen = bool(exclude_seen)
        key = (engine.version, user, k, exclude_seen)
        with self._lock:
            self._counts["recommend"] += 1
            cached = self._cache_get(key)
        if cached is None:
            items, values = self._compute_topk(engine, user, k, exclude_seen)
            with self._lock:
                self._cache_put(key, (items, values))
        else:
            items, values = cached
        self._record_latency(time.perf_counter() - t0)
        return items.copy(), values.copy()

    def recommend_batch(
        self, users, k: int = 10, exclude_seen: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` for many users in **one** batched scoring pass.

        Returns ``(items, scores)`` of shape ``(len(users), k)`` in the
        request order (duplicates allowed — each unique user is scored
        once).  Every row is bit-identical to what :meth:`recommend`
        returns for that user: the frozen scorers are batch-size
        invariant and the ranking is computed per row, so coalescing
        requests (the micro-batcher's job) can never change a response.
        """
        t0 = time.perf_counter()
        engine = self._engine
        users = [self._check_user(u, engine) for u in np.atleast_1d(np.asarray(users))]
        k = self._check_k(k, engine)
        exclude_seen = bool(exclude_seen)
        with self._lock:
            self._counts["recommend"] += len(users)
            cached: dict[int, tuple] = {}
            missing: list[int] = []
            for user in dict.fromkeys(users):  # unique, order-preserving
                hit = self._cache_get((engine.version, user, k, exclude_seen))
                if hit is None:
                    missing.append(user)
                else:
                    cached[user] = hit
        if missing:
            batch = np.asarray(missing, dtype=np.int64)
            retr = engine.retrieval
            if retr is not None and retr.kind != "exact":
                # Bit-identical to the per-user path by construction
                # (topk_batch is a per-user loop over index.topk).
                top, values = retr.topk_batch(batch, k, exclude_seen)
            else:
                scores = self._masked_scores(engine, batch, exclude_seen)
                top = rank_topk(scores, k)
                values = np.take_along_axis(scores, top, axis=1)
            with self._lock:
                for row, user in enumerate(missing):
                    result = (top[row], values[row])
                    self._cache_put((engine.version, user, k, exclude_seen), result)
                    cached[user] = result
        items_out = np.stack([cached[user][0] for user in users])
        values_out = np.stack([cached[user][1] for user in users])
        self._record_latency(time.perf_counter() - t0, weight=len(users))
        return items_out, values_out

    def _compute_topk(
        self, engine: _Engine, user: int, k: int, exclude_seen: bool
    ) -> tuple:
        index = engine.index
        if (
            index is not None
            and exclude_seen == index["exclude_seen"]
            and k <= index["k"]
        ):
            # A prefix of the index *is* the top-k: the ranking key is a
            # total order, so smaller k lists are prefixes of larger ones.
            return index["items"][user, :k], index["scores"][user, :k]
        retr = engine.retrieval
        if retr is not None and retr.kind != "exact":
            return retr.topk(user, k, exclude_seen)
        users = np.asarray([user], dtype=np.int64)
        scores = self._masked_scores(engine, users, exclude_seen)
        top = rank_topk(scores, k)[0]
        return top, scores[0, top]

    def score(self, user: int, items) -> np.ndarray:
        """Raw (unmasked) scores for explicit ``(user, items)`` pairs."""
        t0 = time.perf_counter()
        engine = self._engine
        user = self._check_user(user, engine)
        items = self._check_items(items, engine)
        with self._lock:
            self._counts["score"] += 1
        full = self._masked_scores(
            engine, np.asarray([user], dtype=np.int64), exclude_seen=False
        )[0]
        out = full[items]
        self._record_latency(time.perf_counter() - t0)
        return out

    # ------------------------------------------------------------------
    # Precomputed top-K index
    # ------------------------------------------------------------------
    def _build_index(
        self, engine: _Engine, k: int, exclude_seen: bool, batch_users: int
    ) -> dict:
        if k < 1:
            raise BadRequestError(f"index k must be positive, got {k}")
        k = min(int(k), engine.n_items)
        items = np.zeros((engine.n_users, k), dtype=np.int64)
        scores = np.zeros((engine.n_users, k), dtype=np.float64)
        for start in range(0, engine.n_users, batch_users):
            users = np.arange(start, min(start + batch_users, engine.n_users), dtype=np.int64)
            batch_scores = self._masked_scores(engine, users, exclude_seen)
            top = rank_topk(batch_scores, k)
            items[start : start + len(users)] = top
            scores[start : start + len(users)] = np.take_along_axis(batch_scores, top, axis=1)
        return {"k": k, "exclude_seen": bool(exclude_seen), "items": items, "scores": scores}

    def build_index(self, k: int, exclude_seen: bool = True, batch_users: int = 512) -> None:
        """One batched scoring pass over all users → a ``(n_users, k)`` index."""
        engine = self._engine
        engine.index = self._build_index(engine, k, exclude_seen, batch_users)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap_artifact(self, artifact) -> int:
        """Atomically replace the served artifact; returns the new version.

        The replacement snapshot is fully constructed — including a fresh
        top-K index when the outgoing snapshot had one — *before* the
        reference flip, so there is no window where requests see a
        missing index, and no request can mix arrays from two artifacts.
        The response cache is version-keyed, so old entries become
        unreachable immediately; they are also dropped to free memory.
        """
        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(Path(artifact))
        old = self._engine
        new = _Engine(artifact, version=old.version + 1)
        self._build_retrieval(new)
        old_index = old.index
        if old_index is not None:
            new.index = self._build_index(
                new, old_index["k"], old_index["exclude_seen"], batch_users=512
            )
        with self._lock:
            self._engine = new
            self._cache.clear()
            self._swaps += 1
        return new.version

    # ------------------------------------------------------------------
    # LRU cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple):
        if not self._cache_capacity:
            self._cache_stats["misses"] += 1
            return None
        hit = self._cache.get(key)
        if hit is None:
            self._cache_stats["misses"] += 1
            return None
        self._cache.move_to_end(key)
        self._cache_stats["hits"] += 1
        return hit

    def _cache_put(self, key: tuple, value: tuple) -> None:
        if not self._cache_capacity:
            return
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = value
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)
            self._cache_stats["evictions"] += 1

    def invalidate(self) -> None:
        """Drop every cached response and the precomputed index.

        Call after mutating the artifact's arrays in place (a hot swap via
        :meth:`swap_artifact` does not need it); subsequent requests
        recompute from the frozen arrays.  The candidate index holds
        *copies* of the item arrays (the reduced form), so it is rebuilt
        here rather than merely dropped.
        """
        with self._lock:
            self._cache.clear()
            self._engine.index = None
            self._build_retrieval(self._engine)
            self._cache_stats["invalidations"] += 1

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record_latency(self, seconds: float, weight: int = 1) -> None:
        with self._lock:
            lat = self._latency
            lat["count"] += weight
            lat["total_seconds"] += seconds
            if seconds > lat["max_seconds"]:
                lat["max_seconds"] = seconds

    def stats(self) -> dict:
        """Snapshot of request, cache, index and latency counters."""
        engine = self._engine
        with self._lock:
            uptime = time.time() - self._started
            count = self._latency["count"]
            total = self._latency["total_seconds"]
            index = engine.index
            return {
                "model": engine.artifact.model_name,
                "score_fn": engine.artifact.score_fn,
                "n_users": engine.n_users,
                "n_items": engine.n_items,
                "artifact": {"version": engine.version, "swaps": self._swaps},
                "shard": None
                if self.shard is None
                else {"shard": self.shard[0], "n_shards": self.shard[1]},
                "requests": {
                    "recommend": self._counts["recommend"],
                    "score": self._counts["score"],
                    "total": self._counts["recommend"] + self._counts["score"],
                },
                "cache": {
                    "capacity": self._cache_capacity,
                    "size": len(self._cache),
                    **dict(self._cache_stats),
                },
                "index": None
                if index is None
                else {"k": index["k"], "exclude_seen": index["exclude_seen"]},
                "retrieval": None
                if engine.retrieval is None
                else engine.retrieval.provenance(),
                # Fold-in provenance (repro.stream): which users/items were
                # solved online and the artifact's stream generation.
                "stream": None
                if engine.artifact.meta.get("stream") is None
                else {
                    "stream_generation": engine.artifact.meta["stream"]["generation"],
                    "folded_users": list(engine.artifact.meta["stream"]["folded_users"]),
                    "folded_items": list(engine.artifact.meta["stream"]["folded_items"]),
                },
                "latency": {
                    "count": count,
                    "total_seconds": total,
                    "mean_seconds": total / count if count else 0.0,
                    "max_seconds": self._latency["max_seconds"],
                },
                "uptime_seconds": uptime,
                "throughput_rps": count / uptime if uptime > 0 else 0.0,
            }
