"""``RecommenderService``: low-latency top-K serving over a frozen artifact.

The service is the paper's scoring rule (Eq. 17 for TaxoRec, the
baselines' own scorers otherwise) decoupled from training: pure-numpy
batched scoring over the frozen arrays, the *same* deterministic
``(-score, item_id)`` ranking as the offline evaluator
(:func:`repro.eval.metrics.rank_topk`), and the same exclude-seen
masking, so a served top-K list is bit-identical to the offline
evaluator's ranking of the same model — the property
``tests/test_serve_parity.py`` enforces for every registered model.

Around that core sit the serving conveniences:

* an optional precomputed top-K index (one batched pass over all users);
* a bounded LRU response cache with explicit invalidation;
* per-request latency / hit-rate counters surfaced by :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..eval.metrics import rank_topk
from .artifact import ModelArtifact, load_artifact
from .errors import BadRequestError

__all__ = ["RecommenderService"]


class RecommenderService:
    """Serve ``recommend``/``score`` requests from one model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`~repro.serve.artifact.ModelArtifact` or a path to
        one (``.npz``; loaded and validated on construction).
    cache_size:
        Capacity of the per-request LRU cache (0 disables caching).
    index_k:
        When positive, precompute a top-``index_k`` index for every user
        at construction; ``recommend`` serves any ``k <= index_k`` with
        ``exclude_seen=True`` straight from the index.
    """

    def __init__(self, artifact, cache_size: int = 1024, index_k: int = 0):
        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(Path(artifact))
        self.artifact = artifact
        self.scorer = artifact.scorer()
        self.n_users = self.scorer.n_users
        self.n_items = self.scorer.n_items
        self._lock = threading.Lock()
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_capacity = max(int(cache_size), 0)
        self._index: dict | None = None
        self._counts = {"recommend": 0, "score": 0}
        self._cache_stats = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        self._latency = {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        self._started = time.time()
        if index_k:
            self.build_index(index_k)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_user(self, user: int) -> int:
        try:
            user = int(user)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"user id must be an integer, got {user!r}") from exc
        if not 0 <= user < self.n_users:
            raise BadRequestError(
                f"user id {user} out of range for a model with {self.n_users} users"
            )
        return user

    def _check_items(self, items) -> np.ndarray:
        try:
            items = np.asarray(items, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"item ids must be integers, got {items!r}") from exc
        if items.ndim != 1:
            raise BadRequestError("items must be a flat list of item ids")
        if len(items) and (items.min() < 0 or items.max() >= self.n_items):
            bad = items[(items < 0) | (items >= self.n_items)][0]
            raise BadRequestError(
                f"item id {int(bad)} out of range for a model with {self.n_items} items"
            )
        return items

    def seen_items(self, user: int) -> np.ndarray:
        """Item ids the user interacted with in the exported training data."""
        return self.artifact.seen_items(self._check_user(user))

    # ------------------------------------------------------------------
    # Scoring core
    # ------------------------------------------------------------------
    def _masked_scores(self, users: np.ndarray, exclude_seen: bool) -> np.ndarray:
        """Batched float64 scores with seen items masked to ``-inf``.

        Mirrors :func:`repro.eval.evaluator.evaluate`: same dtype, same
        CSR row slicing, same ``-inf`` masking, so rankings agree exactly.
        """
        scores = np.asarray(self.scorer.score_users(users), dtype=np.float64)
        if exclude_seen:
            indptr, indices = self.artifact.seen_indptr, self.artifact.seen_indices
            starts, stops = indptr[users], indptr[users + 1]
            rows = np.repeat(np.arange(len(users)), stops - starts)
            cols = (
                np.concatenate([indices[a:b] for a, b in zip(starts, stops)])
                if len(rows)
                else np.zeros(0, dtype=np.int64)
            )
            scores[rows, cols] = -np.inf
        return scores

    def recommend(
        self, user: int, k: int = 10, exclude_seen: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic top-``k`` ``(item_ids, scores)`` for one user.

        Ranking key is ``(-score, item_id)`` — identical to the offline
        evaluator.  ``k`` larger than the catalogue is clamped; seen items
        (scored ``-inf``) can only appear once unseen items run out.
        """
        t0 = time.perf_counter()
        user = self._check_user(user)
        try:
            k = int(k)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"k must be an integer, got {k!r}") from exc
        if k < 1:
            raise BadRequestError(f"k must be positive, got {k}")
        k = min(k, self.n_items)
        exclude_seen = bool(exclude_seen)
        key = (user, k, exclude_seen)
        with self._lock:
            self._counts["recommend"] += 1
            cached = self._cache_get(key)
        if cached is None:
            items, values = self._compute_topk(user, k, exclude_seen)
            with self._lock:
                self._cache_put(key, (items, values))
        else:
            items, values = cached
        self._record_latency(time.perf_counter() - t0)
        return items.copy(), values.copy()

    def _compute_topk(self, user: int, k: int, exclude_seen: bool) -> tuple:
        index = self._index
        if (
            index is not None
            and exclude_seen == index["exclude_seen"]
            and k <= index["k"]
        ):
            # A prefix of the index *is* the top-k: the ranking key is a
            # total order, so smaller k lists are prefixes of larger ones.
            return index["items"][user, :k], index["scores"][user, :k]
        users = np.asarray([user], dtype=np.int64)
        scores = self._masked_scores(users, exclude_seen)
        top = rank_topk(scores, k)[0]
        return top, scores[0, top]

    def score(self, user: int, items) -> np.ndarray:
        """Raw (unmasked) scores for explicit ``(user, items)`` pairs."""
        t0 = time.perf_counter()
        user = self._check_user(user)
        items = self._check_items(items)
        with self._lock:
            self._counts["score"] += 1
        full = self._masked_scores(np.asarray([user], dtype=np.int64), exclude_seen=False)[0]
        out = full[items]
        self._record_latency(time.perf_counter() - t0)
        return out

    # ------------------------------------------------------------------
    # Precomputed top-K index
    # ------------------------------------------------------------------
    def build_index(self, k: int, exclude_seen: bool = True, batch_users: int = 512) -> None:
        """One batched scoring pass over all users → a ``(n_users, k)`` index."""
        if k < 1:
            raise BadRequestError(f"index k must be positive, got {k}")
        k = min(int(k), self.n_items)
        items = np.zeros((self.n_users, k), dtype=np.int64)
        scores = np.zeros((self.n_users, k), dtype=np.float64)
        for start in range(0, self.n_users, batch_users):
            users = np.arange(start, min(start + batch_users, self.n_users), dtype=np.int64)
            batch_scores = self._masked_scores(users, exclude_seen)
            top = rank_topk(batch_scores, k)
            items[start : start + len(users)] = top
            scores[start : start + len(users)] = np.take_along_axis(batch_scores, top, axis=1)
        with self._lock:
            self._index = {"k": k, "exclude_seen": bool(exclude_seen), "items": items, "scores": scores}

    # ------------------------------------------------------------------
    # LRU cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple):
        if not self._cache_capacity:
            self._cache_stats["misses"] += 1
            return None
        hit = self._cache.get(key)
        if hit is None:
            self._cache_stats["misses"] += 1
            return None
        self._cache.move_to_end(key)
        self._cache_stats["hits"] += 1
        return hit

    def _cache_put(self, key: tuple, value: tuple) -> None:
        if not self._cache_capacity:
            return
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = value
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)
            self._cache_stats["evictions"] += 1

    def invalidate(self) -> None:
        """Drop every cached response and the precomputed index.

        Call after swapping the artifact's arrays (e.g. a hot reload);
        subsequent requests recompute from the frozen arrays.
        """
        with self._lock:
            self._cache.clear()
            self._index = None
            self._cache_stats["invalidations"] += 1

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record_latency(self, seconds: float) -> None:
        with self._lock:
            lat = self._latency
            lat["count"] += 1
            lat["total_seconds"] += seconds
            if seconds > lat["max_seconds"]:
                lat["max_seconds"] = seconds

    def stats(self) -> dict:
        """Snapshot of request, cache, index and latency counters."""
        with self._lock:
            uptime = time.time() - self._started
            count = self._latency["count"]
            total = self._latency["total_seconds"]
            index = self._index
            return {
                "model": self.artifact.model_name,
                "score_fn": self.artifact.score_fn,
                "n_users": self.n_users,
                "n_items": self.n_items,
                "requests": {
                    "recommend": self._counts["recommend"],
                    "score": self._counts["score"],
                    "total": self._counts["recommend"] + self._counts["score"],
                },
                "cache": {
                    "capacity": self._cache_capacity,
                    "size": len(self._cache),
                    **dict(self._cache_stats),
                },
                "index": None
                if index is None
                else {"k": index["k"], "exclude_seen": index["exclude_seen"]},
                "latency": {
                    "count": count,
                    "total_seconds": total,
                    "mean_seconds": total / count if count else 0.0,
                    "max_seconds": self._latency["max_seconds"],
                },
                "uptime_seconds": uptime,
                "throughput_rps": count / uptime if uptime > 0 else 0.0,
            }
