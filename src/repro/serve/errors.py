"""Typed error hierarchy for the serving subsystem.

Every failure mode the serving path can hit maps to one exception class,
so callers (CLI, HTTP endpoint, tests) can branch on type instead of
string-matching messages:

* :class:`ServeError` — common base; never raised directly.
* :class:`ArtifactError` — the artifact is unreadable or structurally
  broken (corrupted zip, missing metadata, bad JSON).
* :class:`SchemaMismatchError` — the artifact parses but declares a
  schema other than ``repro.model/v1`` or fails structural validation.
* :class:`UnknownScoreFnError` — the artifact names a score function id
  this build does not register (artifact from a newer code version).
* :class:`BadRequestError` — a well-formed service received a bad
  request: user/item id out of range, non-positive ``k``, malformed
  parameters.
* :class:`ShardRoutingError` — a request reached a worker that does not
  own the user's shard (misconfigured router or stale shard map).

Each class carries the HTTP status the JSON endpoint maps it to
(``http_status``), so the wire contract lives next to the type instead
of in a lookup table inside the handler:

=========================  ====
``BadRequestError``        400
``ShardRoutingError``      421
``UnknownScoreFnError``    501
``ArtifactError``          503
``SchemaMismatchError``    503
``ServeError`` (other)     500
=========================  ====
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ArtifactError",
    "SchemaMismatchError",
    "UnknownScoreFnError",
    "BadRequestError",
    "ShardRoutingError",
]


class ServeError(Exception):
    """Base class for every serving-layer failure."""

    http_status = 500


class ArtifactError(ServeError):
    """The model artifact could not be read (corrupted or incomplete file)."""

    http_status = 503


class SchemaMismatchError(ArtifactError):
    """The artifact's schema tag or structure does not match ``repro.model/v1``."""

    http_status = 503


class UnknownScoreFnError(ArtifactError):
    """The artifact requires a score function this build does not provide."""

    http_status = 501


class BadRequestError(ServeError):
    """A serving request referenced ids or parameters outside the model's range."""

    http_status = 400


class ShardRoutingError(ServeError):
    """A request was routed to a worker that does not own the user's shard."""

    http_status = 421
