"""Typed error hierarchy for the serving subsystem.

Every failure mode the serving path can hit maps to one exception class,
so callers (CLI, HTTP endpoint, tests) can branch on type instead of
string-matching messages:

* :class:`ServeError` — common base; never raised directly.
* :class:`ArtifactError` — the ``.npz`` artifact is unreadable or
  structurally broken (corrupted zip, missing metadata, bad JSON).
* :class:`SchemaMismatchError` — the artifact parses but declares a
  schema other than ``repro.model/v1`` or fails structural validation.
* :class:`UnknownScoreFnError` — the artifact names a score function id
  this build does not register (artifact from a newer code version).
* :class:`BadRequestError` — a well-formed service received a bad
  request: user/item id out of range, non-positive ``k``, malformed
  parameters.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ArtifactError",
    "SchemaMismatchError",
    "UnknownScoreFnError",
    "BadRequestError",
]


class ServeError(Exception):
    """Base class for every serving-layer failure."""


class ArtifactError(ServeError):
    """The model artifact could not be read (corrupted or incomplete file)."""


class SchemaMismatchError(ArtifactError):
    """The artifact's schema tag or structure does not match ``repro.model/v1``."""


class UnknownScoreFnError(ArtifactError):
    """The artifact requires a score function this build does not provide."""


class BadRequestError(ServeError):
    """A serving request referenced ids or parameters outside the model's range."""
