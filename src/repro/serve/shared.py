"""Shared (mmap-backed) artifact bundles and atomic hot-swap publishing.

A ``repro.model/v1`` ``.npz`` is one compressed-container file: loading
it copies every array into private process memory, so N worker processes
hold N copies.  A *shared bundle* is the same document exploded into a
directory of raw ``.npy`` files::

    bundle/
      meta.json           # the artifact's __meta__ document, verbatim
      tag_names.json      # the tag vocabulary
      arrays/<name>.npy   # one mmap-able file per frozen score array
      seen_indptr.npy     # the exclude-seen CSR
      seen_indices.npy

Workers open the arrays with ``np.load(..., mmap_mode="r")``: the OS
maps the same page-cache pages into every process, so a pool of N
workers shares **one** physical copy of the score arrays, copy-on-read
and read-only (the maps are ``r``-mode; writes raise).  BLAS reads the
maps directly — no materialisation.

Deployment is an atomic symlink flip: ``publish_artifact`` points a
well-known link at a new bundle (or ``.npz``) with ``os.replace``, which
POSIX guarantees is atomic — a reader either resolves the old target or
the new one, never a half-written path.  Workers watch the link's
resolved fingerprint and :meth:`~RecommenderService.swap_artifact` on
change; in-flight requests keep the old mmap alive until they finish
(the unlinked files stay readable through the open maps), so a deploy
never tears a response.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from .errors import ArtifactError, SchemaMismatchError
from .scoring import SCORE_FNS

__all__ = [
    "export_shared",
    "load_shared",
    "publish_artifact",
    "artifact_fingerprint",
]

_META_FILE = "meta.json"
_TAGS_FILE = "tag_names.json"
_ARRAYS_DIR = "arrays"


def export_shared(source, out_dir) -> Path:
    """Explode one artifact (``.npz`` path or ``ModelArtifact``) into a bundle.

    The bundle carries the identical metadata document and arrays; it is
    re-validated on load exactly like the ``.npz`` form.  Returns the
    bundle directory.
    """
    from .artifact import ModelArtifact, load_artifact

    if not isinstance(source, ModelArtifact):
        source = load_artifact(Path(source))
    out_dir = Path(out_dir)
    arrays_dir = out_dir / _ARRAYS_DIR
    arrays_dir.mkdir(parents=True, exist_ok=True)
    for name, arr in source.arrays.items():
        if Path(name).name != name:
            raise SchemaMismatchError(f"array name {name!r} is not a plain filename")
        np.save(arrays_dir / f"{name}.npy", np.ascontiguousarray(arr))
    np.save(out_dir / "seen_indptr.npy", np.asarray(source.seen_indptr, dtype=np.int64))
    np.save(out_dir / "seen_indices.npy", np.asarray(source.seen_indices, dtype=np.int64))
    (out_dir / _TAGS_FILE).write_text(json.dumps(source.tag_names), encoding="utf-8")
    (out_dir / _META_FILE).write_text(
        json.dumps(source.meta, indent=2, sort_keys=False), encoding="utf-8"
    )
    return out_dir


def load_shared(bundle_dir, mmap: bool = True):
    """Load a shared bundle, arrays mmap-backed (read-only) by default.

    Raises the same typed hierarchy as :func:`~repro.serve.artifact
    .load_artifact`; validation is identical — a bundle is just another
    container for the ``repro.model/v1`` document.
    """
    from .artifact import MODEL_SCHEMA, ModelArtifact, validate_model_artifact

    bundle_dir = Path(bundle_dir)
    meta_path = bundle_dir / _META_FILE
    if not meta_path.is_file():
        raise ArtifactError(f"{bundle_dir} has no {_META_FILE}; not a shared artifact bundle")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{bundle_dir} carries unparseable metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise ArtifactError(f"{bundle_dir} metadata is not an object")
    if meta.get("schema") != MODEL_SCHEMA:
        raise SchemaMismatchError(
            f"{bundle_dir} declares schema {meta.get('schema')!r}; "
            f"this build serves {MODEL_SCHEMA!r}"
        )
    mode = "r" if mmap else None
    try:
        arrays = {
            path.stem: np.load(path, mmap_mode=mode, allow_pickle=False)
            for path in sorted((bundle_dir / _ARRAYS_DIR).glob("*.npy"))
        }
        seen_indptr = np.load(bundle_dir / "seen_indptr.npy", allow_pickle=False)
        seen_indices = np.load(bundle_dir / "seen_indices.npy", allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read bundle {bundle_dir}: {exc}") from exc
    tags_path = bundle_dir / _TAGS_FILE
    tag_names = (
        [str(t) for t in json.loads(tags_path.read_text(encoding="utf-8"))]
        if tags_path.is_file()
        else []
    )
    score_fn = meta.get("score_fn")
    if score_fn not in SCORE_FNS:
        from .errors import UnknownScoreFnError

        raise UnknownScoreFnError(
            f"{bundle_dir} requires score_fn {score_fn!r}; this build knows {sorted(SCORE_FNS)}"
        )
    problems = validate_model_artifact(meta, arrays, seen_indptr, seen_indices)
    if problems:
        raise SchemaMismatchError(f"{bundle_dir} failed validation: " + "; ".join(problems))
    return ModelArtifact(
        meta=meta,
        arrays=arrays,
        seen_indptr=np.asarray(seen_indptr, dtype=np.int64),
        seen_indices=np.asarray(seen_indices, dtype=np.int64),
        tag_names=tag_names,
    )


def publish_artifact(target, link_path) -> Path:
    """Atomically point ``link_path`` at ``target`` (bundle dir or ``.npz``).

    Implemented as symlink-then-rename: ``os.replace`` of a symlink is
    atomic on POSIX, so a concurrent reader resolves either the previous
    target or the new one — never a missing or half-updated link.
    Returns ``link_path``.
    """
    target = Path(target).resolve()
    if not target.exists():
        raise ArtifactError(f"cannot publish {target}: it does not exist")
    link_path = Path(link_path)
    link_path.parent.mkdir(parents=True, exist_ok=True)
    if link_path.exists() and not link_path.is_symlink():
        raise ArtifactError(
            f"refusing to publish over {link_path}: it exists and is not a symlink"
        )
    tmp = link_path.parent / f".{link_path.name}.publish-{os.getpid()}"
    if tmp.is_symlink() or tmp.exists():
        tmp.unlink()
    os.symlink(target, tmp)
    os.replace(tmp, link_path)
    return link_path


def artifact_fingerprint(path) -> tuple[str, int, int]:
    """A change-detection fingerprint for a served artifact path.

    ``(resolved path, inode, mtime_ns)`` of the link *target*: a symlink
    flip changes the resolved path (and inode), an in-place rewrite
    changes inode or mtime.  Hot-swap watchers poll this and reload when
    it moves.
    """
    resolved = Path(path).resolve()
    stat = resolved.stat()
    return (str(resolved), stat.st_ino, stat.st_mtime_ns)
