"""Request micro-batching: coalesce concurrent ``recommend`` calls.

Under concurrent load, many handler threads ask for top-K at once; each
would otherwise run its own one-row scoring pass.  The
:class:`MicroBatcher` funnels them through a single drain loop that
scores every request queued at that moment in **one** batched matmul
(:meth:`RecommenderService.recommend_batch`), then hands each caller its
row.

Batches form *naturally*: the drain loop takes whatever accumulated
while the previous batch was computing, so an idle service adds zero
latency (a lone request is scored immediately) and a loaded service
amortises one scoring pass over every queued request.  An optional
``max_wait_s`` adds a bounded gathering window for workloads that prefer
bigger batches over first-request latency.

Correctness is absolute, not statistical: the frozen scorers are
batch-size invariant (``scoring.py``) and ranking is per-row, so a
coalesced response is **bit-identical** to the response the same request
would get alone — ``tests/test_serve_batching.py`` hammers this with
racing threads.  Validation runs synchronously in the caller's thread
(:meth:`RecommenderService.check_request`), so one malformed request
fails fast and can never poison a batch.
"""

from __future__ import annotations

import threading
import time

from .errors import ServeError

__all__ = ["MicroBatcher"]


class _Slot:
    """One waiting request: inputs, a wakeup event, and the outcome."""

    __slots__ = ("user", "k", "exclude_seen", "event", "items", "scores", "error")

    def __init__(self, user: int, k: int, exclude_seen: bool):
        self.user = user
        self.k = k
        self.exclude_seen = exclude_seen
        self.event = threading.Event()
        self.items = None
        self.scores = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesce concurrent ``recommend`` calls into batched scoring passes.

    Parameters
    ----------
    service:
        The :class:`RecommenderService` (possibly shard-restricted) that
        executes the batches.
    max_batch:
        Upper bound on requests per scoring pass (back-pressure for the
        ranking step's memory).
    max_wait_s:
        Optional gathering window after the first request of a batch
        arrives.  ``0.0`` (default) batches only what is already queued —
        no added latency at low concurrency.
    """

    def __init__(self, service, max_batch: int = 64, max_wait_s: float = 0.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._cond = threading.Condition()
        self._pending: list[_Slot] = []
        self._closed = False
        self._counts = {"requests": 0, "batches": 0, "coalesced": 0, "max_batch": 0}
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-serve-microbatch", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10, exclude_seen: bool = True):
        """Blocking top-K request; response identical to ``service.recommend``."""
        user, k, exclude_seen = self.service.check_request(user, k, exclude_seen)
        slot = _Slot(user, k, exclude_seen)
        with self._cond:
            if self._closed:
                raise ServeError("micro-batcher is closed")
            self._pending.append(slot)
            self._cond.notify_all()
        slot.event.wait()
        if slot.error is not None:
            raise slot.error
        return slot.items.copy(), slot.scores.copy()

    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Slot]:
        """Block until work exists (or close), then take up to ``max_batch``."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending:
                return []
            if self.max_wait_s > 0.0:
                deadline = time.monotonic() + self.max_wait_s
                while len(self._pending) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._cond.wait(remaining)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            return batch

    def _drain_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                return
            with self._cond:
                self._counts["requests"] += len(batch)
                self._counts["batches"] += 1
                self._counts["coalesced"] += len(batch) - 1
                self._counts["max_batch"] = max(self._counts["max_batch"], len(batch))
            # One scoring pass per distinct (k, exclude_seen) in the batch;
            # concurrent /recommend traffic overwhelmingly shares both.
            groups: dict[tuple[int, bool], list[_Slot]] = {}
            for slot in batch:
                groups.setdefault((slot.k, slot.exclude_seen), []).append(slot)
            for (k, exclude_seen), slots in groups.items():
                try:
                    items, scores = self.service.recommend_batch(
                        [slot.user for slot in slots], k, exclude_seen
                    )
                    for row, slot in enumerate(slots):
                        slot.items, slot.scores = items[row], scores[row]
                except BaseException as exc:  # delivered to the waiting caller
                    for slot in slots:
                        slot.error = exc
                finally:
                    for slot in slots:
                        slot.event.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Batch-formation counters (requests, batches, coalesced, max size)."""
        with self._cond:
            counts = dict(self._counts)
        batches = counts["batches"]
        counts["mean_batch"] = counts["requests"] / batches if batches else 0.0
        return counts

    def close(self) -> None:
        """Stop the drain loop after flushing queued requests."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=10)
