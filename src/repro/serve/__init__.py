"""Inference/serving subsystem: freeze a trained model, serve top-K.

The serving spine is ``train → export → serve``:

* :func:`export_model` / :func:`export_from_checkpoint` freeze a trained
  model (live, or rebuilt from a ``repro.ckpt/v1`` checkpoint / run dir)
  into a versioned ``repro.model/v1`` ``.npz`` artifact;
* :class:`RecommenderService` loads an artifact and answers
  ``recommend(user, k, exclude_seen=True)`` / ``score(user, items)``
  with pure-numpy batched scoring, an optional precomputed top-K index,
  a bounded LRU cache, and latency/throughput counters;
* :func:`create_server` wraps a service in a stdlib JSON HTTP endpoint
  (``python -m repro serve``).

Served rankings are guaranteed identical to the offline evaluator's
(same deterministic ``(-score, id)`` tiebreak, same exclude-seen
masking) — see ``tests/test_serve_parity.py`` and ``docs/SERVE.md``.

Scale-out layer (``docs/SERVE.md`` → *Scaling & load testing*):

* :func:`export_shared` / :func:`load_shared` — mmap-able shared
  bundles so a worker pool shares one physical copy of the arrays;
  :func:`publish_artifact` flips a deployment symlink atomically;
* :func:`shard_for_user` / :class:`ShardMap` — deterministic user-hash
  sharding shared by router, workers and clients;
* :class:`ShardedService` — in-process sharded facade (optionally
  micro-batched via :class:`MicroBatcher`), bit-identical to a flat
  :class:`RecommenderService`;
* :class:`WorkerPool` + :func:`create_router` — forked shard workers
  behind an HTTP router, with hot-swap watching;
* ``python -m repro.bench.load`` — the closed-loop load harness that
  sweeps workers × concurrency into a ``repro.bench/v1`` report.
"""

from .artifact import (
    MODEL_SCHEMA,
    ModelArtifact,
    artifact_from_model,
    export_from_checkpoint,
    export_model,
    export_payload,
    load_artifact,
    save_artifact,
    validate_model_artifact,
)
from .batching import MicroBatcher
from .errors import (
    ArtifactError,
    BadRequestError,
    SchemaMismatchError,
    ServeError,
    ShardRoutingError,
    UnknownScoreFnError,
)
from .http import ServiceHTTPServer, create_server, serve_until_drained
from .pool import ArtifactWatcher, WorkerPool
from .router import RouterHTTPServer, ShardedService, create_router
from .scoring import SCORE_FNS, FrozenScorer
from .service import RecommenderService
from .shared import (
    artifact_fingerprint,
    export_shared,
    load_shared,
    publish_artifact,
)
from .sharding import ShardMap, shard_for_user

__all__ = [
    "MODEL_SCHEMA",
    "ModelArtifact",
    "artifact_from_model",
    "export_model",
    "export_payload",
    "export_from_checkpoint",
    "load_artifact",
    "save_artifact",
    "validate_model_artifact",
    "ServeError",
    "ArtifactError",
    "SchemaMismatchError",
    "UnknownScoreFnError",
    "BadRequestError",
    "ShardRoutingError",
    "SCORE_FNS",
    "FrozenScorer",
    "RecommenderService",
    "ServiceHTTPServer",
    "create_server",
    "serve_until_drained",
    "MicroBatcher",
    "ShardedService",
    "RouterHTTPServer",
    "create_router",
    "WorkerPool",
    "ArtifactWatcher",
    "ShardMap",
    "shard_for_user",
    "export_shared",
    "load_shared",
    "publish_artifact",
    "artifact_fingerprint",
]
