"""Inference/serving subsystem: freeze a trained model, serve top-K.

The serving spine is ``train → export → serve``:

* :func:`export_model` / :func:`export_from_checkpoint` freeze a trained
  model (live, or rebuilt from a ``repro.ckpt/v1`` checkpoint / run dir)
  into a versioned ``repro.model/v1`` ``.npz`` artifact;
* :class:`RecommenderService` loads an artifact and answers
  ``recommend(user, k, exclude_seen=True)`` / ``score(user, items)``
  with pure-numpy batched scoring, an optional precomputed top-K index,
  a bounded LRU cache, and latency/throughput counters;
* :func:`create_server` wraps a service in a stdlib JSON HTTP endpoint
  (``python -m repro serve``).

Served rankings are guaranteed identical to the offline evaluator's
(same deterministic ``(-score, id)`` tiebreak, same exclude-seen
masking) — see ``tests/test_serve_parity.py`` and ``docs/SERVE.md``.
"""

from .artifact import (
    MODEL_SCHEMA,
    ModelArtifact,
    export_from_checkpoint,
    export_model,
    export_payload,
    load_artifact,
    validate_model_artifact,
)
from .errors import (
    ArtifactError,
    BadRequestError,
    SchemaMismatchError,
    ServeError,
    UnknownScoreFnError,
)
from .http import ServiceHTTPServer, create_server
from .scoring import SCORE_FNS, FrozenScorer
from .service import RecommenderService

__all__ = [
    "MODEL_SCHEMA",
    "ModelArtifact",
    "export_model",
    "export_payload",
    "export_from_checkpoint",
    "load_artifact",
    "validate_model_artifact",
    "ServeError",
    "ArtifactError",
    "SchemaMismatchError",
    "UnknownScoreFnError",
    "BadRequestError",
    "SCORE_FNS",
    "FrozenScorer",
    "RecommenderService",
    "ServiceHTTPServer",
    "create_server",
]
