"""Shard routing: one logical service over many shard-scoped backends.

Two deployment shapes share the same user → shard arithmetic
(:mod:`repro.serve.sharding`):

* :class:`ShardedService` — in-process composition: ``n_shards``
  shard-scoped :class:`RecommenderService` instances over **one** loaded
  artifact (arrays shared by reference), each optionally fronted by a
  :class:`~repro.serve.batching.MicroBatcher`.  This is the shape the
  parity suite exercises for every registered model: a sharded deployment
  must be response-for-response bit-identical to a single service.
* :class:`RouterHTTPServer` — process boundary: a thin HTTP proxy that
  routes ``/recommend`` and ``/score`` to the worker process owning the
  user's shard (``ShardMap.worker_for_user``) over keep-alive upstream
  connections, and aggregates ``/health`` / ``/stats`` across workers.
  The worker processes behind it come from :mod:`repro.serve.pool`.

The router holds no model state: it never loads arrays, so it stays
cheap, and a worker crash surfaces as a 502 on that worker's shards
rather than taking the whole endpoint down.
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np

from ..utils import get_logger
from .batching import MicroBatcher
from .errors import BadRequestError, ServeError
from .http import JSONHTTPServer, JSONRequestHandler, _parse_int
from .service import RecommenderService
from .sharding import ShardMap, shard_for_user

__all__ = ["ShardedService", "RouterHTTPServer", "create_router"]

logger = get_logger("repro.serve.router")


class ShardedService:
    """``n_shards`` shard-scoped services behind one routing facade.

    Loads the artifact once and hands the same object to every shard
    service, so memory stays flat in the shard count; each shard service
    owns its slice of users (``shard=(s, n_shards)``) and its own cache.
    With ``micro_batch > 0`` every shard gets a micro-batcher, so
    concurrent callers coalesce per shard.

    The facade re-exports the :class:`RecommenderService` request API
    (``recommend`` / ``recommend_batch`` / ``score`` / ``seen_items`` /
    ``swap_artifact`` / ``stats``) and routes each call by
    :func:`shard_for_user` — callers cannot tell they are talking to a
    sharded deployment except through :meth:`stats`.

    ``shards`` restricts the instance to a subset of the shard space:
    a pool worker owning ``ShardMap.shards_for_worker(w)`` instantiates
    only those shards' services and rejects every other user with
    :class:`~repro.serve.errors.ShardRoutingError` — the property the
    router relies on to catch mis-routing.
    """

    def __init__(
        self,
        artifact,
        n_shards: int,
        cache_size: int = 1024,
        index_k: int = 0,
        micro_batch: int = 0,
        shards: tuple[int, ...] | None = None,
        retrieval: str | None = None,
        retrieval_params: dict | None = None,
    ):
        if n_shards < 1:
            raise BadRequestError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        owned = tuple(range(self.n_shards)) if shards is None else tuple(sorted(set(shards)))
        if not owned:
            raise BadRequestError("a sharded service must own at least one shard")
        for s in owned:
            if not 0 <= s < self.n_shards:
                raise BadRequestError(f"shard {s} out of range for {self.n_shards} shard(s)")
        self.owned_shards = owned
        # Load once; every shard service shares the same frozen arrays.
        probe = RecommenderService(artifact, cache_size=0)
        shared_artifact = probe.artifact
        self.services = {
            s: RecommenderService(
                shared_artifact,
                cache_size=cache_size,
                index_k=index_k,
                shard=(s, self.n_shards),
                retrieval=retrieval,
                retrieval_params=retrieval_params,
            )
            for s in owned
        }
        self.batchers = (
            {s: MicroBatcher(svc, max_batch=micro_batch) for s, svc in self.services.items()}
            if micro_batch > 0
            else None
        )

    # ------------------------------------------------------------------
    @property
    def _first(self) -> RecommenderService:
        return self.services[self.owned_shards[0]]

    @property
    def artifact(self):
        return self._first.artifact

    @property
    def n_users(self) -> int:
        return self._first.n_users

    @property
    def n_items(self) -> int:
        return self._first.n_items

    @property
    def artifact_version(self) -> int:
        return self._first.artifact_version

    def _shard_of(self, user) -> int:
        try:
            user = int(user)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"user id must be an integer, got {user!r}") from exc
        shard = shard_for_user(user, self.n_shards)
        if shard not in self.services:
            from .errors import ShardRoutingError

            raise ShardRoutingError(
                f"user {user} belongs to shard {shard}/{self.n_shards}, "
                f"but this deployment owns shards {list(self.owned_shards)}"
            )
        return shard

    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10, exclude_seen: bool = True):
        shard = self._shard_of(user)
        if self.batchers is not None:
            return self.batchers[shard].recommend(user, k, exclude_seen)
        return self.services[shard].recommend(user, k, exclude_seen=exclude_seen)

    def recommend_batch(self, users, k: int = 10, exclude_seen: bool = True):
        """Batched top-K across shards: one scoring pass per touched shard."""
        users = list(np.atleast_1d(np.asarray(users)))
        by_shard: dict[int, list[int]] = {}
        for pos, user in enumerate(users):
            by_shard.setdefault(self._shard_of(user), []).append(pos)
        items_rows: list = [None] * len(users)
        scores_rows: list = [None] * len(users)
        for shard, positions in by_shard.items():
            items, scores = self.services[shard].recommend_batch(
                [users[p] for p in positions], k, exclude_seen
            )
            for row, pos in enumerate(positions):
                items_rows[pos] = items[row]
                scores_rows[pos] = scores[row]
        return np.stack(items_rows), np.stack(scores_rows)

    def score(self, user: int, items):
        return self.services[self._shard_of(user)].score(user, items)

    def seen_items(self, user: int):
        return self.services[self._shard_of(user)].seen_items(user)

    def check_request(self, user: int, k: int, exclude_seen: bool):
        return self.services[self._shard_of(user)].check_request(user, k, exclude_seen)

    # ------------------------------------------------------------------
    def swap_artifact(self, artifact) -> int:
        """Hot-swap every shard; returns the (common) new version.

        Shards flip one at a time — each flip is individually atomic, so
        no *response* is ever torn; during the sweep different shards can
        briefly serve different versions, which is the same contract a
        multi-process rolling deploy gives.
        """
        from .artifact import ModelArtifact, load_artifact
        from pathlib import Path

        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(Path(artifact))
        version = self.artifact_version
        for svc in self.services.values():
            version = svc.swap_artifact(artifact)
        return version

    def invalidate(self) -> None:
        for svc in self.services.values():
            svc.invalidate()

    def stats(self) -> dict:
        """Aggregate + per-shard counters (shape differs from a flat service)."""
        shards = {s: svc.stats() for s, svc in self.services.items()}
        first = shards[self.owned_shards[0]]
        totals = {
            "recommend": sum(s["requests"]["recommend"] for s in shards.values()),
            "score": sum(s["requests"]["score"] for s in shards.values()),
        }
        totals["total"] = totals["recommend"] + totals["score"]
        out = {
            "model": first["model"],
            "score_fn": first["score_fn"],
            "n_users": first["n_users"],
            "n_items": first["n_items"],
            "n_shards": self.n_shards,
            "owned_shards": list(self.owned_shards),
            "artifact": first["artifact"],
            "retrieval": first["retrieval"],
            "requests": totals,
            "shards": {str(s): stats for s, stats in shards.items()},
        }
        if self.batchers is not None:
            out["batching"] = {str(s): b.stats() for s, b in self.batchers.items()}
        return out

    def close(self) -> None:
        if self.batchers is not None:
            for batcher in self.batchers.values():
                batcher.close()


# ----------------------------------------------------------------------
# HTTP shard router (the front of a multi-process worker pool)
# ----------------------------------------------------------------------
class RouterHTTPServer(JSONHTTPServer):
    """Route requests to shard-owning worker endpoints, keep-alive upstream.

    ``workers`` is the ordered list of ``(host, port)`` worker addresses;
    worker ``w`` serves ``shard_map.shards_for_worker(w)``.  Each router
    handler thread keeps one persistent upstream connection per worker
    (stale connections are retried once with a fresh socket), so proxying
    adds no per-request TCP handshake.
    """

    def __init__(
        self,
        address: tuple[str, int],
        workers: list[tuple[str, int]],
        shard_map: ShardMap,
        max_requests: int = 0,
    ):
        if len(workers) != shard_map.n_workers:
            raise ValueError(
                f"shard map expects {shard_map.n_workers} worker(s), "
                f"got {len(workers)} address(es)"
            )
        super().__init__(address, _RouterHandler, max_requests)
        self.workers = list(workers)
        self.shard_map = shard_map
        self._local = threading.local()

    # -- upstream connection pool (per handler thread) ------------------
    def _connection(self, worker: int) -> http.client.HTTPConnection:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        conn = pool.get(worker)
        if conn is None:
            host, port = self.workers[worker]
            conn = pool[worker] = http.client.HTTPConnection(host, port, timeout=30)
        return conn

    def _drop_connection(self, worker: int) -> None:
        pool = getattr(self._local, "pool", None)
        if pool:
            conn = pool.pop(worker, None)
            if conn is not None:
                conn.close()

    def forward(
        self, worker: int, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """Proxy one request to ``worker``; one retry on a stale keep-alive."""
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection(worker)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop_connection(worker)
                if attempt:
                    raise ServeError(
                        f"worker {worker} at {self.workers[worker]} unreachable: {exc}"
                    ) from exc

    def server_close(self) -> None:  # pragma: no cover - plumbing
        super().server_close()


class _RouterHandler(JSONRequestHandler):
    server: RouterHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        from urllib.parse import parse_qs, urlparse

        url = urlparse(self.path)
        if url.path == "/health":
            self._guarded(self._health)
        elif url.path == "/stats":
            self._guarded(self._stats)
        elif url.path == "/recommend":
            self._proxy_by_user(parse_qs(url.query), "GET", self.path, None)
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        from urllib.parse import urlparse

        url = urlparse(self.path)
        if url.path == "/score":
            self._guarded_proxy_score()
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    # ------------------------------------------------------------------
    def _route(self, user: int) -> int:
        return self.server.shard_map.worker_for_user(user)

    def _proxy_by_user(self, query: dict[str, list[str]], method, path, body) -> None:
        try:
            if "user" not in query:
                raise BadRequestError("missing required query parameter 'user'")
            user = _parse_int(query["user"][0], "user")
            status, payload = self.server.forward(self._route(user), method, path, body)
        except ServeError as exc:
            code = 502 if not isinstance(exc, BadRequestError) else exc.http_status
            self._reply(code, {"error": str(exc), "type": type(exc).__name__})
            return
        self._reply_raw(status, payload)

    def _guarded_proxy_score(self) -> None:
        try:
            body = self._read_json_body()
            if not isinstance(body, dict) or "user" not in body:
                raise BadRequestError("body must be a JSON object with 'user' and 'items'")
            user = _parse_int(str(body["user"]), "user")
            raw = json.dumps(body).encode("utf-8")
            status, payload = self.server.forward(self._route(user), "POST", "/score", raw)
        except ServeError as exc:
            code = 502 if not isinstance(exc, BadRequestError) else exc.http_status
            self._reply(code, {"error": str(exc), "type": type(exc).__name__})
            return
        self._reply_raw(status, payload)

    # ------------------------------------------------------------------
    def _health(self) -> tuple[int, dict]:
        workers = []
        status = "ok"
        for w in range(len(self.server.workers)):
            try:
                code, payload = self.server.forward(w, "GET", "/health")
                workers.append(json.loads(payload.decode("utf-8")))
                if code != 200:
                    status = "degraded"
            except ServeError as exc:
                workers.append({"status": "unreachable", "error": str(exc)})
                status = "degraded"
        return (200 if status == "ok" else 503), {
            "status": status,
            "role": "router",
            "n_workers": len(self.server.workers),
            "n_shards": self.server.shard_map.n_shards,
            "workers": workers,
        }

    def _stats(self) -> tuple[int, dict]:
        workers = []
        for w in range(len(self.server.workers)):
            try:
                _, payload = self.server.forward(w, "GET", "/stats")
                workers.append(json.loads(payload.decode("utf-8")))
            except ServeError as exc:
                workers.append({"error": str(exc)})
        totals = {"recommend": 0, "score": 0, "total": 0}
        for stats in workers:
            requests = stats.get("requests")
            if isinstance(requests, dict):
                for key in totals:
                    totals[key] += int(requests.get(key, 0))
        return 200, {
            "role": "router",
            "n_workers": len(self.server.workers),
            "n_shards": self.server.shard_map.n_shards,
            "requests": totals,
            "requests_proxied": self.server.requests_served,
            "workers": workers,
        }


def create_router(
    workers: list[tuple[str, int]],
    n_shards: int,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int = 0,
) -> RouterHTTPServer:
    """Bind a shard router in front of ``workers`` (ordered worker addresses)."""
    shard_map = ShardMap(n_shards=n_shards, n_workers=len(workers))
    return RouterHTTPServer((host, port), workers, shard_map, max_requests=max_requests)
