"""Frozen score functions: the serving-side half of the export contract.

Training-side, every :class:`repro.models.Recommender` exposes
``frozen_scores() -> {"score_fn": <id>, "arrays": {...}}`` (see
``models/base.py``).  This module holds the other half: for each score-fn
id, a pure-numpy function that reproduces the model's ``score_users``
from the frozen arrays alone — same expressions in the same order, so the
served scores match the live model's to the last bit, without the
autodiff graph, the dataset, or the training stack.

The registry is deliberately small and closed: an artifact naming an id
that is not registered here came from a newer build and must be rejected
(:class:`~repro.serve.errors.UnknownScoreFnError`), never guessed at.

| id                    | arrays                                             | models                     |
|-----------------------|----------------------------------------------------|----------------------------|
| ``dot``               | user, item                                         | NMF, LightGCN, NGCF, AGCN  |
| ``dot_bias``          | user, item, item_bias                              | BPRMF                      |
| ``dot_aspect``        | user, item, user_aspect, item_aspect, aspect_weight| AMF                        |
| ``neg_sq_euclid``     | user, item                                         | CML, CMLF, SML             |
| ``neg_sq_lorentz``    | user, item                                         | HGCF, HyperML              |
| ``two_channel_lorentz``| user_ir, item_ir, user_tg, item_tg, alpha         | TaxoRec (hyperbolic)       |
| ``two_channel_euclid``| user_ir, item_ir, user_tg, item_tg, alpha          | TaxoRec ablation (CML+Agg) |
| ``dense``             | scores                                             | fallback (NeuMF, LRML, …)  |
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..backend import get_backend
from .errors import SchemaMismatchError, UnknownScoreFnError

__all__ = [
    "SCORE_FNS",
    "REQUIRED_ARRAYS",
    "FrozenScorer",
    "frozen_counts",
    "check_payload",
]

ScoreFn = Callable[[dict, np.ndarray], np.ndarray]

SCORE_FNS: dict[str, ScoreFn] = {}
REQUIRED_ARRAYS: dict[str, tuple[str, ...]] = {}


def _register(name: str, required: tuple[str, ...]):
    def deco(fn: ScoreFn) -> ScoreFn:
        SCORE_FNS[name] = fn
        REQUIRED_ARRAYS[name] = required
        return fn

    return deco


# ----------------------------------------------------------------------
# Inner-product family
# ----------------------------------------------------------------------
@_register("dot", ("user", "item"))
def _dot(arrays: dict, users: np.ndarray) -> np.ndarray:
    return get_backend().matmul(arrays["user"][users], arrays["item"].T)


@_register("dot_bias", ("user", "item", "item_bias"))
def _dot_bias(arrays: dict, users: np.ndarray) -> np.ndarray:
    u = arrays["user"][users]
    return get_backend().matmul(u, arrays["item"].T) + arrays["item_bias"][None, :]


@_register("dot_aspect", ("user", "item", "user_aspect", "item_aspect", "aspect_weight"))
def _dot_aspect(arrays: dict, users: np.ndarray) -> np.ndarray:
    xp = get_backend()
    base = xp.matmul(arrays["user"][users], arrays["item"].T)
    aspect = xp.matmul(arrays["user_aspect"][users], arrays["item_aspect"].T)
    return base + float(arrays["aspect_weight"]) * aspect


# ----------------------------------------------------------------------
# Metric-learning family (negated squared distances)
# ----------------------------------------------------------------------
def _sq_dist_euclid_gram(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Pairwise ||u - v||² expanded to matmuls (mirrors CML.score_users)."""
    return get_backend().sq_dist_euclid_gram(u, v)


def _sq_dist_lorentz(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Pairwise squared geodesic distances between Lorentz row sets."""
    return get_backend().sq_dist_lorentz(u, v)


@_register("neg_sq_euclid", ("user", "item"))
def _neg_sq_euclid(arrays: dict, users: np.ndarray) -> np.ndarray:
    return -_sq_dist_euclid_gram(arrays["user"][users], arrays["item"])


@_register("neg_sq_lorentz", ("user", "item"))
def _neg_sq_lorentz(arrays: dict, users: np.ndarray) -> np.ndarray:
    return -_sq_dist_lorentz(arrays["user"][users], arrays["item"])


# ----------------------------------------------------------------------
# TaxoRec's personalised two-channel score (paper Eq. 17)
# ----------------------------------------------------------------------
_TWO_CHANNEL = ("user_ir", "item_ir", "user_tg", "item_tg", "alpha")


def _sq_dist_euclid_broadcast(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Broadcast twin used by TaxoRec's Euclidean ablation (same op order)."""
    return get_backend().sq_dist_euclid_broadcast(u, v)


@_register("two_channel_lorentz", _TWO_CHANNEL)
def _two_channel_lorentz(arrays: dict, users: np.ndarray) -> np.ndarray:
    alpha = arrays["alpha"][users][:, None]
    d_ir = _sq_dist_lorentz(arrays["user_ir"][users], arrays["item_ir"])
    d_tg = _sq_dist_lorentz(arrays["user_tg"][users], arrays["item_tg"])
    return -(d_ir + alpha * d_tg)


@_register("two_channel_euclid", _TWO_CHANNEL)
def _two_channel_euclid(arrays: dict, users: np.ndarray) -> np.ndarray:
    alpha = arrays["alpha"][users][:, None]
    d_ir = _sq_dist_euclid_broadcast(arrays["user_ir"][users], arrays["item_ir"])
    d_tg = _sq_dist_euclid_broadcast(arrays["user_tg"][users], arrays["item_tg"])
    return -(d_ir + alpha * d_tg)


# ----------------------------------------------------------------------
# Dense fallback: the exported artifact *is* the score matrix
# ----------------------------------------------------------------------
@_register("dense", ("scores",))
def _dense(arrays: dict, users: np.ndarray) -> np.ndarray:
    return arrays["scores"][users]


# ----------------------------------------------------------------------
def frozen_counts(score_fn: str, arrays: dict) -> tuple[int, int]:
    """(n_users, n_items) implied by a frozen payload's array shapes."""
    if score_fn == "dense":
        return int(arrays["scores"].shape[0]), int(arrays["scores"].shape[1])
    if score_fn in ("two_channel_lorentz", "two_channel_euclid"):
        return int(arrays["user_ir"].shape[0]), int(arrays["item_ir"].shape[0])
    return int(arrays["user"].shape[0]), int(arrays["item"].shape[0])


def check_payload(score_fn: str, arrays: dict) -> list[str]:
    """Structural problems with a ``{"score_fn", "arrays"}`` payload.

    Returns human-readable problem strings (empty when valid); shared by
    export-time validation and the artifact loader.
    """
    if score_fn not in SCORE_FNS:
        return [f"unknown score_fn {score_fn!r}; known: {sorted(SCORE_FNS)}"]
    problems = []
    for name in REQUIRED_ARRAYS[score_fn]:
        if name not in arrays:
            problems.append(f"score_fn {score_fn!r} requires array {name!r}")
        elif not isinstance(arrays[name], np.ndarray):
            problems.append(f"array {name!r} is not an ndarray")
    if problems:
        return problems
    if score_fn == "dense" and arrays["scores"].ndim != 2:
        problems.append("dense scores must be a 2-d (n_users, n_items) matrix")
    if score_fn in ("dot", "dot_bias", "dot_aspect", "neg_sq_euclid", "neg_sq_lorentz"):
        u, v = arrays["user"], arrays["item"]
        if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[1]:
            problems.append(
                f"user {u.shape} and item {v.shape} embeddings must be 2-d with equal width"
            )
    if score_fn == "dot_bias" and "item_bias" in arrays:
        if arrays["item_bias"].shape != (arrays["item"].shape[0],):
            problems.append("item_bias must be 1-d with one entry per item")
    if score_fn in ("two_channel_lorentz", "two_channel_euclid"):
        n_users = arrays["user_ir"].shape[0]
        n_items = arrays["item_ir"].shape[0]
        if arrays["user_tg"].shape[0] != n_users:
            problems.append("user_tg must have one row per user")
        if arrays["item_tg"].shape[0] != n_items:
            problems.append("item_tg must have one row per item")
        if arrays["alpha"].shape != (n_users,):
            problems.append("alpha must be 1-d with one entry per user")
    return problems


class FrozenScorer:
    """``score_users``-compatible view over a frozen payload.

    Quacks like a model for everything downstream of training: the
    offline evaluator (:func:`repro.eval.evaluate`), the service, and the
    parity tests all accept it interchangeably with a live model.
    """

    def __init__(self, score_fn: str, arrays: dict):
        if score_fn not in SCORE_FNS:
            raise UnknownScoreFnError(
                f"unknown score_fn {score_fn!r}; this build knows {sorted(SCORE_FNS)}"
            )
        problems = check_payload(score_fn, arrays)
        if problems:
            raise SchemaMismatchError("invalid frozen payload: " + "; ".join(problems))
        self.score_fn = score_fn
        self.arrays = arrays
        self.n_users, self.n_items = frozen_counts(score_fn, arrays)

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores, larger = better recommendation.

        A user's score row is **batch-size invariant**: scoring one user
        alone returns the same bits as scoring them inside any batch.
        BLAS dispatches a GEMV kernel for one-row batches whose reduction
        order differs from GEMM in the last bits, so single-user calls
        are padded to a two-row batch (duplicate row, first row kept) and
        every scoring path — per-request, micro-batched, index build,
        offline evaluator — runs the same GEMM kernel.  The micro-batch
        hammer tests (``tests/test_serve_batching.py``) lock this.
        """
        users = np.asarray(users, dtype=np.int64)
        if len(users) == 1:
            return SCORE_FNS[self.score_fn](self.arrays, np.repeat(users, 2))[:1]
        return SCORE_FNS[self.score_fn](self.arrays, users)
