"""A stdlib JSON endpoint over :class:`RecommenderService`.

No web framework — ``http.server`` from the standard library, threaded so
concurrent clients do not serialise behind one socket.  Routes:

* ``GET  /health``      → ``{"status": "ok", "model": ..., "schema": ...}``
* ``GET  /stats``       → the service's :meth:`stats` snapshot
* ``GET  /recommend?user=U&k=K&exclude_seen=1`` → top-K items + scores
* ``POST /score``       → body ``{"user": U, "items": [...]}`` → scores

Handlers speak HTTP/1.1 with explicit ``Content-Length``, so load
clients and the shard router hold keep-alive connections instead of
paying a TCP handshake per request.

Error contract: every :class:`ServeError` subclass carries its own HTTP
status (``errors.py``) and is rendered as ``{"error": ..., "type":
<class name>}`` — ``BadRequestError`` → 400, ``ShardRoutingError`` → 421,
``UnknownScoreFnError`` → 501, ``ArtifactError``/``SchemaMismatchError``
→ 503, anything else typed → 500.  Unknown paths return 404.  The server
never dies on a request error.

Bounded serving (``max_requests=N``) exists for smoke tests and CI: the
server counts *completed responses* — the counter moves only after the
reply bytes are handed to the socket — and sets :attr:`drained` when the
budget is spent.  The owner then calls ``shutdown()`` +
``server_close()``; handler threads are non-daemon in bounded mode, so
``server_close`` joins them and the final in-flight response is always
fully written before the process exits (the regression suite in
``tests/test_serve_http.py`` pins this; counting *accepted connections*
instead — the old behaviour — raced exactly that last reply).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..utils import get_logger
from .artifact import MODEL_SCHEMA
from .errors import BadRequestError, ServeError

__all__ = [
    "JSONHTTPServer",
    "JSONRequestHandler",
    "ServiceHTTPServer",
    "create_server",
    "serve_until_drained",
]

logger = get_logger("repro.serve.http")

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def _parse_bool(raw: str, name: str) -> bool:
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise BadRequestError(f"{name} must be a boolean flag, got {raw!r}")


def _parse_int(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise BadRequestError(f"{name} must be an integer, got {raw!r}") from exc


class JSONHTTPServer(ThreadingHTTPServer):
    """Threaded JSON server with completed-response accounting.

    Base for the single-service endpoint and the shard router.  With
    ``max_requests > 0`` the server runs *bounded*: handler threads are
    joined on close, keep-alive is disabled (each connection carries one
    response, so no idle thread can stall the drain), and
    :attr:`drained` fires once the Nth response has been written.
    """

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients overflows it and the dropped SYNs retry after ~1s, which
    # reads as a huge latency tail.  128 absorbs any realistic burst.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], handler, max_requests: int = 0):
        super().__init__(address, handler)
        self.max_requests = max(int(max_requests), 0)
        self.drained = threading.Event()
        self._served_lock = threading.Lock()
        self._served = 0
        if self.bounded:
            # Non-daemon handler threads: server_close() joins the final
            # in-flight reply instead of racing it at interpreter exit.
            self.daemon_threads = False

    @property
    def bounded(self) -> bool:
        return self.max_requests > 0

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._served

    def note_response_written(self) -> None:
        """Called by handlers after a response body is handed to the socket."""
        with self._served_lock:
            self._served += 1
            if self.bounded and self._served >= self.max_requests:
                self.drained.set()


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing: JSON replies, typed error mapping, drain accounting."""

    server: JSONHTTPServer
    protocol_version = "HTTP/1.1"
    timeout = 30  # a stalled peer cannot wedge a handler thread forever
    # Headers and body go out as separate writes on a keep-alive socket;
    # without TCP_NODELAY, Nagle holds the body until the header segment
    # is ACKed and every response eats a ~40ms delayed-ACK stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib signature)
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_body(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.server.bounded:
            # One response per connection in bounded mode: the handler
            # thread exits right after this reply, so the drain join in
            # server_close() never waits on an idle keep-alive socket.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self.server.note_response_written()

    def _reply(self, code: int, payload: dict) -> None:
        self._send_body(code, json.dumps(payload).encode("utf-8"), "application/json")

    def _reply_raw(self, code: int, body: bytes, content_type: str = "application/json") -> None:
        """Pass an upstream response through unchanged (router proxying)."""
        self._send_body(code, body, content_type)

    def _guarded(self, handler) -> None:
        try:
            code, payload = handler()
        except ServeError as exc:
            code = exc.http_status
            payload = {"error": str(exc), "type": type(exc).__name__}
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.exception("unhandled serving error")
            code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._reply(code, payload)

    def _read_json_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError as exc:
            raise BadRequestError("invalid Content-Length header") from exc
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
        return body


class ServiceHTTPServer(JSONHTTPServer):
    """Threaded HTTP server bound to one recommend/score service."""

    def __init__(self, address: tuple[str, int], service, max_requests: int = 0):
        super().__init__(address, _Handler, max_requests)
        self.service = service


class _Handler(JSONRequestHandler):
    server: ServiceHTTPServer

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlparse(self.path)
        if url.path == "/health":
            self._guarded(self._health)
        elif url.path == "/stats":
            self._guarded(lambda: (200, self.server.service.stats()))
        elif url.path == "/recommend":
            self._guarded(lambda: self._recommend(parse_qs(url.query)))
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlparse(self.path)
        if url.path == "/score":
            self._guarded(self._score)
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    # ------------------------------------------------------------------
    def _health(self) -> tuple[int, dict]:
        service = self.server.service
        return 200, {
            "status": "ok",
            "schema": MODEL_SCHEMA,
            "model": service.artifact.model_name,
            "score_fn": service.artifact.score_fn,
            "n_users": service.n_users,
            "n_items": service.n_items,
        }

    def _recommend(self, query: dict[str, list[str]]) -> tuple[int, dict]:
        if "user" not in query:
            raise BadRequestError("missing required query parameter 'user'")
        user = _parse_int(query["user"][0], "user")
        k = _parse_int(query["k"][0], "k") if "k" in query else 10
        exclude_seen = (
            _parse_bool(query["exclude_seen"][0], "exclude_seen")
            if "exclude_seen" in query
            else True
        )
        items, scores = self.server.service.recommend(user, k, exclude_seen=exclude_seen)
        return 200, {
            "user": user,
            "k": int(len(items)),
            "exclude_seen": exclude_seen,
            "items": [int(i) for i in items],
            "scores": [float(s) for s in scores],
        }

    def _score(self) -> tuple[int, dict]:
        body = self._read_json_body()
        if not isinstance(body, dict) or "user" not in body or "items" not in body:
            raise BadRequestError("body must be a JSON object with 'user' and 'items'")
        scores = self.server.service.score(body["user"], body["items"])
        return 200, {
            "user": int(body["user"]),
            "items": [int(i) for i in body["items"]],
            "scores": [float(s) for s in scores],
        }


def create_server(
    service, host: str = "127.0.0.1", port: int = 0, max_requests: int = 0
) -> ServiceHTTPServer:
    """Bind a threaded JSON server to ``(host, port)`` (0 = ephemeral port).

    The caller owns the lifecycle: ``serve_forever()`` to serve,
    ``shutdown()`` + ``server_close()`` to stop — or
    :func:`serve_until_drained` for bounded runs.
    ``server.server_address`` carries the bound port.
    """
    return ServiceHTTPServer((host, port), service, max_requests=max_requests)


def serve_until_drained(server: JSONHTTPServer) -> None:
    """Serve a bounded server until its request budget is spent, then drain.

    Runs ``serve_forever`` on a helper thread, waits for :attr:`drained`,
    stops accepting, and joins every handler thread via ``server_close``
    — so the caller returns only after the final response hit the wire.
    The caller must have built the server with ``max_requests > 0``.
    """
    if not server.bounded:
        raise ValueError("serve_until_drained requires a server with max_requests > 0")
    thread = threading.Thread(target=server.serve_forever, kwargs={"poll_interval": 0.05})
    thread.start()
    try:
        server.drained.wait()
    finally:
        server.shutdown()
        thread.join(timeout=30)
