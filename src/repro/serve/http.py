"""A stdlib JSON endpoint over :class:`RecommenderService`.

No web framework — ``http.server`` from the standard library, threaded so
concurrent clients do not serialise behind one socket.  Routes:

* ``GET  /health``      → ``{"status": "ok", "model": ..., "schema": ...}``
* ``GET  /stats``       → the service's :meth:`stats` snapshot
* ``GET  /recommend?user=U&k=K&exclude_seen=1`` → top-K items + scores
* ``POST /score``       → body ``{"user": U, "items": [...]}`` → scores

Bad requests (out-of-range ids, malformed parameters or bodies) return
``400`` with ``{"error": ...}``; unknown paths return ``404``.  The
server never dies on a request error — typed :class:`ServeError`\\ s are
translated to status codes, everything else is a ``500`` with the
exception name.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..utils import get_logger
from .artifact import MODEL_SCHEMA
from .errors import BadRequestError, ServeError
from .service import RecommenderService

__all__ = ["ServiceHTTPServer", "create_server"]

logger = get_logger("repro.serve.http")

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def _parse_bool(raw: str, name: str) -> bool:
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise BadRequestError(f"{name} must be a boolean flag, got {raw!r}")


def _parse_int(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise BadRequestError(f"{name} must be an integer, got {raw!r}") from exc


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RecommenderService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: RecommenderService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib signature)
        logger.debug("%s - %s", self.address_string(), format % args)

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _guarded(self, handler) -> None:
        try:
            code, payload = handler()
        except BadRequestError as exc:
            code, payload = 400, {"error": str(exc)}
        except ServeError as exc:
            code, payload = 500, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.exception("unhandled serving error")
            code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._reply(code, payload)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlparse(self.path)
        if url.path == "/health":
            self._guarded(self._health)
        elif url.path == "/stats":
            self._guarded(lambda: (200, self.server.service.stats()))
        elif url.path == "/recommend":
            self._guarded(lambda: self._recommend(parse_qs(url.query)))
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlparse(self.path)
        if url.path == "/score":
            self._guarded(self._score)
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    # ------------------------------------------------------------------
    def _health(self) -> tuple[int, dict]:
        service = self.server.service
        return 200, {
            "status": "ok",
            "schema": MODEL_SCHEMA,
            "model": service.artifact.model_name,
            "score_fn": service.artifact.score_fn,
            "n_users": service.n_users,
            "n_items": service.n_items,
        }

    def _recommend(self, query: dict[str, list[str]]) -> tuple[int, dict]:
        if "user" not in query:
            raise BadRequestError("missing required query parameter 'user'")
        user = _parse_int(query["user"][0], "user")
        k = _parse_int(query["k"][0], "k") if "k" in query else 10
        exclude_seen = (
            _parse_bool(query["exclude_seen"][0], "exclude_seen")
            if "exclude_seen" in query
            else True
        )
        items, scores = self.server.service.recommend(user, k, exclude_seen=exclude_seen)
        return 200, {
            "user": user,
            "k": int(len(items)),
            "exclude_seen": exclude_seen,
            "items": [int(i) for i in items],
            "scores": [float(s) for s in scores],
        }

    def _score(self) -> tuple[int, dict]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError as exc:
            raise BadRequestError("invalid Content-Length header") from exc
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict) or "user" not in body or "items" not in body:
            raise BadRequestError("body must be a JSON object with 'user' and 'items'")
        scores = self.server.service.score(body["user"], body["items"])
        return 200, {
            "user": int(body["user"]),
            "items": [int(i) for i in body["items"]],
            "scores": [float(s) for s in scores],
        }


def create_server(
    service: RecommenderService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind a threaded JSON server to ``(host, port)`` (0 = ephemeral port).

    The caller owns the lifecycle: ``serve_forever()`` (or repeated
    ``handle_request()``) to serve, ``shutdown()`` + ``server_close()`` to
    stop.  ``server.server_address`` carries the bound port.
    """
    return ServiceHTTPServer((host, port), service)
