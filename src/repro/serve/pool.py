"""Multi-process worker pool: N shard-scoped HTTP workers + hot-swap watcher.

:class:`WorkerPool` forks ``n_workers`` processes.  Worker ``w`` builds a
:class:`~repro.serve.router.ShardedService` owning
``ShardMap.shards_for_worker(w)`` and serves it on an ephemeral port
(reported back to the parent over a pipe), so the pool needs no port
configuration and never races another bind.  Point the pool at a
*shared bundle* directory (``repro.serve.shared``) and every worker
mmaps the same score arrays — one physical copy across the pool,
courtesy of the page cache.

Workers are forked, not spawned: numpy and the service code are already
imported in the parent, so a worker is serving in milliseconds, and on
platforms without ``fork`` the pool degrades to the default context.

Hot deploys: with ``hot_swap_poll_s > 0`` every worker runs an
:class:`ArtifactWatcher` thread that polls the artifact path's resolved
fingerprint (``(path, inode, mtime_ns)``).  When a publisher flips the
symlink (:func:`~repro.serve.shared.publish_artifact`), each worker
reloads and :meth:`swap_artifact`'s atomically — in-flight requests
finish on the old snapshot (its mmaps stay alive until released), new
requests see the new one, and no response is ever torn
(``tests/test_serve_pool.py`` hammers a pool through a swap under load).

Shutdown is SIGTERM → ``server_close`` in the worker; :meth:`stop` joins
every process and escalates to SIGKILL only if a worker ignores the
grace period.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
from pathlib import Path

from ..utils import get_logger
from .errors import ArtifactError, ServeError
from .shared import artifact_fingerprint
from .sharding import ShardMap

__all__ = ["WorkerPool", "ArtifactWatcher"]

logger = get_logger("repro.serve.pool")

_START_TIMEOUT_S = 120.0
_STOP_GRACE_S = 10.0


class ArtifactWatcher(threading.Thread):
    """Poll an artifact path; hot-swap the service when the target changes.

    The watched path is usually a symlink maintained by
    :func:`~repro.serve.shared.publish_artifact`; the fingerprint tracks
    the *resolved* target, so a symlink flip (or an in-place rewrite) is
    detected on the next poll.  A failed reload keeps serving the old
    snapshot and retries on the next change.
    """

    def __init__(self, path, service, poll_s: float = 1.0):
        super().__init__(name="repro-serve-artifact-watcher", daemon=True)
        self.path = Path(path)
        self.service = service
        self.poll_s = float(poll_s)
        self.swaps = 0
        self._stop_event = threading.Event()
        self._fingerprint = artifact_fingerprint(self.path)

    def run(self) -> None:
        while not self._stop_event.wait(self.poll_s):
            self.check_once()

    def check_once(self) -> bool:
        """One poll: swap if the artifact moved.  Returns True on a swap."""
        try:
            fingerprint = artifact_fingerprint(self.path)
        except OSError:
            return False  # mid-flip or missing; next poll sees the new target
        if fingerprint == self._fingerprint:
            return False
        try:
            version = self.service.swap_artifact(self.path)
        except ServeError as exc:
            logger.error("hot-swap of %s failed, still serving old snapshot: %s",
                         self.path, exc)
            self._fingerprint = fingerprint  # don't retry a bad artifact every poll
            return False
        self._fingerprint = fingerprint
        self.swaps += 1
        logger.info("hot-swapped %s → artifact version %d", self.path, version)
        return True

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=self.poll_s + 5)


def _worker_main(
    conn,
    artifact_path: str,
    n_shards: int,
    owned_shards: tuple[int, ...],
    host: str,
    micro_batch: int,
    cache_size: int,
    index_k: int,
    hot_swap_poll_s: float,
    retrieval: str | None,
    retrieval_params: dict | None,
) -> None:
    """Worker process body: build the shard-scoped service, serve, report."""
    from ..backend import ENV_VAR, set_backend
    from ..retrieval import ENV_VAR as RETRIEVAL_ENV_VAR
    from ..retrieval import set_retrieval
    from .http import create_server
    from .router import ShardedService

    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    # Resolve the compute backend from the environment explicitly rather
    # than trusting fork-inherited module state: under a spawn start method
    # (non-POSIX fallback) the parent's set_backend() call never happened
    # in this process, and the explicit call keeps both start methods on
    # the same code path.
    set_backend(os.environ.get(ENV_VAR, "numpy"))
    # The retrieval selection follows the same rule: an explicit argument
    # wins, otherwise REPRO_RETRIEVAL (exported by activate_retrieval in
    # the parent) decides, on both fork and spawn start methods.
    set_retrieval(retrieval or os.environ.get(RETRIEVAL_ENV_VAR, "exact"))
    watcher = None
    server = None
    service = None
    try:
        service = ShardedService(
            artifact_path,
            n_shards=n_shards,
            shards=owned_shards,
            cache_size=cache_size,
            index_k=index_k,
            micro_batch=micro_batch,
            retrieval_params=retrieval_params,
        )
        server = create_server(service, host=host, port=0)
        if hot_swap_poll_s > 0:
            watcher = ArtifactWatcher(artifact_path, service, poll_s=hot_swap_poll_s)
            watcher.start()
        conn.send(("ok", server.server_address[0], int(server.server_address[1])))
        conn.close()
        server.serve_forever(poll_interval=0.1)
    except SystemExit:
        pass
    except BaseException as exc:  # startup failure → report, don't hang the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except OSError:
            pass
        raise
    finally:
        if watcher is not None:
            watcher.stop()
        if server is not None:
            server.server_close()
        if service is not None:
            service.close()


class WorkerPool:
    """``n_workers`` forked shard workers, ready to sit behind a router.

    Parameters mirror :class:`~repro.serve.router.ShardedService`;
    ``n_shards`` defaults to ``n_workers`` (one shard per worker).  The
    constructor blocks until every worker reports its bound address, so
    a returned pool is immediately routable::

        with WorkerPool(bundle, n_workers=2, n_shards=4) as pool:
            router = pool.create_router()
            ...

    Use as a context manager or call :meth:`stop` — forked children do
    not die with the parent's Python exit otherwise.
    """

    def __init__(
        self,
        artifact_path,
        n_workers: int,
        n_shards: int | None = None,
        host: str = "127.0.0.1",
        micro_batch: int = 0,
        cache_size: int = 1024,
        index_k: int = 0,
        hot_swap_poll_s: float = 0.0,
        retrieval: str | None = None,
        retrieval_params: dict | None = None,
    ):
        self.artifact_path = str(artifact_path)
        n_shards = int(n_shards if n_shards is not None else n_workers)
        self.shard_map = ShardMap(n_shards=n_shards, n_workers=int(n_workers))
        self.host = host
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self.processes: list = []
        self.addresses: list[tuple[str, int]] = []
        try:
            pipes = []
            for worker in range(self.shard_map.n_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self.artifact_path,
                        self.shard_map.n_shards,
                        self.shard_map.shards_for_worker(worker),
                        host,
                        int(micro_batch),
                        int(cache_size),
                        int(index_k),
                        float(hot_swap_poll_s),
                        retrieval,
                        dict(retrieval_params) if retrieval_params else None,
                    ),
                    name=f"repro-serve-worker-{worker}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.processes.append(process)
                pipes.append(parent_conn)
            for worker, parent_conn in enumerate(pipes):
                self.addresses.append(self._await_ready(worker, parent_conn))
                parent_conn.close()
        except BaseException:
            self.stop()
            raise

    def _await_ready(self, worker: int, conn) -> tuple[str, int]:
        if not conn.poll(_START_TIMEOUT_S):
            raise ServeError(f"worker {worker} did not report ready in {_START_TIMEOUT_S}s")
        try:
            message = conn.recv()
        except EOFError as exc:
            raise ServeError(f"worker {worker} died during startup") from exc
        if message[0] != "ok":
            raise ArtifactError(f"worker {worker} failed to start: {message[1]}")
        return (message[1], message[2])

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.shard_map.n_workers

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    def base_urls(self) -> list[str]:
        return [f"http://{host}:{port}" for host, port in self.addresses]

    def create_router(self, host: str = "127.0.0.1", port: int = 0, max_requests: int = 0):
        """A :class:`RouterHTTPServer` fronting this pool's workers."""
        from .router import RouterHTTPServer

        return RouterHTTPServer(
            (host, port), self.addresses, self.shard_map, max_requests=max_requests
        )

    def alive(self) -> list[bool]:
        return [process.is_alive() for process in self.processes]

    def stop(self) -> None:
        """SIGTERM every worker, join with a grace period, then SIGKILL."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=_STOP_GRACE_S)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
