"""``repro export`` / ``repro serve`` subcommands.

Usage:
    python -m repro export runs/taxorec --out models/taxorec.npz
    python -m repro export runs/taxorec/checkpoint_0009.npz --out m.npz --best
    python -m repro serve models/taxorec.npz --port 8731 --index-k 100
"""

from __future__ import annotations

import argparse
import sys

from .artifact import export_from_checkpoint, load_artifact
from .errors import ServeError
from .http import create_server
from .service import RecommenderService

__all__ = ["export_main", "serve_main", "build_export_parser", "build_serve_parser"]


def build_export_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro export``."""
    parser = argparse.ArgumentParser(
        prog="repro export",
        description="Freeze a repro.ckpt/v1 checkpoint (or run dir) into a "
        "servable repro.model/v1 artifact",
    )
    parser.add_argument(
        "source",
        help="checkpoint .npz with embedded run info, or a run directory "
        "(its latest checkpoint is used)",
    )
    parser.add_argument("--out", metavar="PATH", default="model.npz",
                        help="artifact output path (default: model.npz)")
    parser.add_argument("--best", action="store_true",
                        help="export the best-validation snapshot instead of the final weights")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve top-K recommendations from a repro.model/v1 artifact "
        "over a JSON HTTP endpoint",
    )
    parser.add_argument("artifact", help="path to a repro.model/v1 .npz artifact")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731, help="0 picks an ephemeral port")
    parser.add_argument("--cache-size", type=int, default=1024, metavar="N",
                        help="LRU response-cache capacity (0 disables)")
    parser.add_argument("--index-k", type=int, default=0, metavar="K",
                        help="precompute a top-K index for all users at startup")
    parser.add_argument("--max-requests", type=int, default=0, metavar="N",
                        help="exit after serving N requests (0 = serve forever); "
                        "used by smoke tests")
    return parser


def export_main(argv: list[str]) -> int:
    """Entry point for the ``export`` subcommand."""
    args = build_export_parser().parse_args(argv)
    try:
        out = export_from_checkpoint(args.source, args.out, best=args.best)
    except (ServeError, KeyError, TypeError) as exc:
        print(f"export failed: {exc}", file=sys.stderr)
        return 2
    artifact = load_artifact(out)  # self-check: refuse to leave an invalid file behind
    dataset = artifact.meta["dataset"]
    print(
        f"exported {artifact.model_name} (score_fn={artifact.score_fn}) "
        f"trained on {dataset['name']} "
        f"({dataset['n_users']} users × {dataset['n_items']} items) → {out}"
    )
    return 0


def serve_main(argv: list[str]) -> int:
    """Entry point for the ``serve`` subcommand."""
    args = build_serve_parser().parse_args(argv)
    try:
        service = RecommenderService(
            args.artifact, cache_size=args.cache_size, index_k=args.index_k
        )
    except ServeError as exc:
        print(f"cannot serve {args.artifact}: {exc}", file=sys.stderr)
        return 2
    server = create_server(service, host=args.host, port=args.port)
    if args.max_requests > 0:
        # Bounded mode exits right after the last accept; handler threads
        # must be non-daemon so server_close() joins the in-flight reply
        # (socketserver never tracks daemon threads for joining).
        server.daemon_threads = False
    host, port = server.server_address[:2]
    print(
        f"serving {service.artifact.model_name} (score_fn={service.artifact.score_fn}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    try:
        if args.max_requests > 0:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0
