"""``repro export`` / ``repro serve`` subcommands.

Usage:
    python -m repro export runs/taxorec --out models/taxorec.npz
    python -m repro export runs/taxorec/checkpoint_0009.npz --out m.npz --best
    python -m repro export runs/taxorec --out models/taxorec --shared
    python -m repro serve models/taxorec.npz --port 8731 --index-k 100
    python -m repro serve models/taxorec --workers 2 --shards 4 --micro-batch 32

Single-process mode (``--workers 0``, the default) serves one
:class:`RecommenderService` directly.  Pool mode forks ``--workers``
shard-scoped worker processes (``repro.serve.pool``) behind a user-hash
shard router (``repro.serve.router``); point it at a shared bundle
directory (``--shared`` export) and the workers mmap one physical copy
of the score arrays.

``--max-requests N`` bounds either mode for smoke tests: the server
counts *completed responses* and drains cleanly — the Nth reply is fully
written before the process exits (see ``repro.serve.http``).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..backend import UnknownBackendError, activate_backend, available_backends
from ..retrieval import UnknownRetrievalError, activate_retrieval, available_retrieval
from .artifact import export_from_checkpoint, load_artifact
from .errors import ServeError
from .http import create_server, serve_until_drained
from .service import RecommenderService

__all__ = ["export_main", "serve_main", "build_export_parser", "build_serve_parser"]


def build_export_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro export``."""
    parser = argparse.ArgumentParser(
        prog="repro export",
        description="Freeze a repro.ckpt/v1 checkpoint (or run dir) into a "
        "servable repro.model/v1 artifact",
    )
    parser.add_argument(
        "source",
        help="checkpoint .npz with embedded run info, or a run directory "
        "(its latest checkpoint is used)",
    )
    parser.add_argument("--out", metavar="PATH", default="model.npz",
                        help="artifact output path (default: model.npz)")
    parser.add_argument("--best", action="store_true",
                        help="export the best-validation snapshot instead of the final weights")
    parser.add_argument("--shared", action="store_true",
                        help="also explode the artifact into an mmap-able shared "
                        "bundle directory (<out minus .npz>) for worker pools")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()} "
                        "(default: $REPRO_BACKEND or 'numpy')")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve top-K recommendations from a repro.model/v1 artifact "
        "over a JSON HTTP endpoint",
    )
    parser.add_argument("artifact",
                        help="path to a repro.model/v1 .npz artifact or shared bundle directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731, help="0 picks an ephemeral port")
    parser.add_argument("--cache-size", type=int, default=1024, metavar="N",
                        help="LRU response-cache capacity (0 disables)")
    parser.add_argument("--index-k", type=int, default=0, metavar="K",
                        help="precompute a top-K index for all users at startup")
    parser.add_argument("--max-requests", type=int, default=0, metavar="N",
                        help="exit after N completed responses (0 = serve forever); "
                        "used by smoke tests")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="fork N shard-scoped worker processes behind a router "
                        "(0 = single-process serving, the default)")
    parser.add_argument("--shards", type=int, default=0, metavar="M",
                        help="shard the user space M ways (default: one per worker)")
    parser.add_argument("--micro-batch", type=int, default=0, metavar="B",
                        help="coalesce concurrent /recommend calls into batches of "
                        "up to B per shard (0 disables)")
    parser.add_argument("--hot-swap-poll", type=float, default=0.0, metavar="SECS",
                        help="poll the artifact path every SECS seconds and hot-swap "
                        "when its target changes (0 disables; workers only)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()} "
                        "(default: $REPRO_BACKEND or 'numpy'; exported to "
                        "forked shard workers)")
    parser.add_argument("--retrieval", default=None, metavar="KIND",
                        help=f"candidate index {available_retrieval()} "
                        "(default: $REPRO_RETRIEVAL or 'exact'; exported to "
                        "forked shard workers)")
    parser.add_argument("--fold-in", default=None, metavar="EVENTS",
                        help="repro.events/v1 JSON file folded into the loaded "
                        "artifact before serving (repro.stream; single-process only)")
    return parser


def _apply_backend(name: str | None) -> int:
    """Activate a ``--backend`` flag; returns the exit code (0 = ok)."""
    if name is None:
        return 0
    try:
        activate_backend(name)
    except UnknownBackendError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _apply_retrieval(name: str | None) -> int:
    """Activate a ``--retrieval`` flag; returns the exit code (0 = ok)."""
    if name is None:
        return 0
    try:
        activate_retrieval(name)
    except UnknownRetrievalError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def export_main(argv: list[str]) -> int:
    """Entry point for the ``export`` subcommand."""
    args = build_export_parser().parse_args(argv)
    if _apply_backend(args.backend):
        return 2
    try:
        out = export_from_checkpoint(args.source, args.out, best=args.best)
    except (ServeError, KeyError, TypeError) as exc:
        print(f"export failed: {exc}", file=sys.stderr)
        return 2
    artifact = load_artifact(out)  # self-check: refuse to leave an invalid file behind
    dataset = artifact.meta["dataset"]
    print(
        f"exported {artifact.model_name} (score_fn={artifact.score_fn}) "
        f"trained on {dataset['name']} "
        f"({dataset['n_users']} users × {dataset['n_items']} items) → {out}"
    )
    if args.shared:
        from pathlib import Path

        from .shared import export_shared

        bundle = Path(str(out)[: -len(".npz")] if str(out).endswith(".npz") else f"{out}.bundle")
        export_shared(artifact, bundle)
        load_shared_check = load_artifact(bundle)  # same self-check as the .npz
        print(f"shared bundle ({load_shared_check.model_name}, mmap-able) → {bundle}")
    return 0


def _serve_single(args) -> int:
    """Single-process serving (the original ``repro serve`` shape)."""
    try:
        service = RecommenderService(
            args.artifact, cache_size=args.cache_size, index_k=args.index_k
        )
    except ServeError as exc:
        print(f"cannot serve {args.artifact}: {exc}", file=sys.stderr)
        return 2
    if args.fold_in:
        from ..stream import StreamState, fold_into_service, read_events

        state = StreamState.from_artifact(service.artifact)
        report = state.ingest(read_events(args.fold_in))
        folded = fold_into_service(service, state)
        print(
            f"folded {args.fold_in}: {report.accepted} event(s), "
            f"{len(folded.meta['stream']['folded_users'])} user(s), "
            f"{len(folded.meta['stream']['folded_items'])} item(s) "
            f"(generation {folded.meta['stream']['generation']})",
            flush=True,
        )
    server = create_server(
        service, host=args.host, port=args.port, max_requests=args.max_requests
    )
    host, port = server.server_address[:2]
    print(
        f"serving {service.artifact.model_name} (score_fn={service.artifact.score_fn}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    try:
        if server.bounded:
            serve_until_drained(server)
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def _serve_pool(args) -> int:
    """Pool serving: forked shard workers behind a user-hash router."""
    from .pool import WorkerPool

    n_shards = args.shards if args.shards > 0 else args.workers
    try:
        pool = WorkerPool(
            args.artifact,
            n_workers=args.workers,
            n_shards=n_shards,
            micro_batch=args.micro_batch,
            cache_size=args.cache_size,
            index_k=args.index_k,
            hot_swap_poll_s=args.hot_swap_poll,
        )
    except ServeError as exc:
        print(f"cannot serve {args.artifact}: {exc}", file=sys.stderr)
        return 2
    with pool:
        router = pool.create_router(
            host=args.host, port=args.port, max_requests=args.max_requests
        )
        try:
            _, health = router.forward(0, "GET", "/health")
            health = json.loads(health.decode("utf-8"))
            model = health.get("model", "?")
            score_fn = health.get("score_fn", "?")
        except ServeError:
            model, score_fn = "?", "?"
        host, port = router.server_address[:2]
        print(
            f"serving {model} (score_fn={score_fn}) on http://{host}:{port} "
            f"[{pool.n_workers} workers × {pool.n_shards} shards]",
            flush=True,
        )
        try:
            if router.bounded:
                serve_until_drained(router)
            else:
                router.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            router.server_close()
    return 0


def serve_main(argv: list[str]) -> int:
    """Entry point for the ``serve`` subcommand."""
    args = build_serve_parser().parse_args(argv)
    if _apply_backend(args.backend):
        return 2
    if _apply_retrieval(args.retrieval):
        return 2
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    if args.workers > 0:
        if args.fold_in:
            print("--fold-in requires single-process serving (--workers 0)", file=sys.stderr)
            return 2
        return _serve_pool(args)
    return _serve_single(args)
