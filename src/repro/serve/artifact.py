"""The versioned ``repro.model/v1`` serving artifact.

One export freezes one trained model into one ``.npz`` file holding
everything the serving path needs and nothing the training path does:

* ``arrays/<name>`` — the frozen score arrays (final embeddings with GCN
  layers and tag aggregation already applied, or a dense score matrix for
  models whose scorer does not factorise);
* ``seen/indptr``, ``seen/indices`` — the training interaction CSR, so
  ``recommend(..., exclude_seen=True)`` needs no dataset at serve time;
* ``ids/tag_names`` — the dataset's tag vocabulary (user/item ids in the
  synthetic presets are already contiguous integers; the stored id maps
  are therefore identity ranges described in the metadata);
* ``__meta__`` — a JSON document with the schema tag, score-fn id,
  manifold metadata, dataset identity/counts, the training config and
  the build environment.

The document is validated by :func:`validate_model_artifact`, mirroring
``repro.bench/v1``/``repro.run/v1``: validators return a human-readable
problem list and writers refuse to emit invalid documents.
"""

from __future__ import annotations

import json
import platform
import sys
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..backend import get_backend
from ..retrieval import get_retrieval
from .errors import ArtifactError, SchemaMismatchError, UnknownScoreFnError
from .scoring import SCORE_FNS, FrozenScorer, check_payload, frozen_counts

__all__ = [
    "MODEL_SCHEMA",
    "ModelArtifact",
    "artifact_from_model",
    "export_model",
    "export_payload",
    "export_from_checkpoint",
    "load_artifact",
    "save_artifact",
    "validate_model_artifact",
]

MODEL_SCHEMA = "repro.model/v1"

# Manifold metadata recorded per score-fn: which space the frozen arrays
# live in, and the (fixed) curvature where one applies.
_MANIFOLDS = {
    "dot": {"space": "euclidean"},
    "dot_bias": {"space": "euclidean"},
    "dot_aspect": {"space": "euclidean"},
    "neg_sq_euclid": {"space": "euclidean"},
    "neg_sq_lorentz": {"space": "lorentz", "curvature": -1.0},
    "two_channel_lorentz": {"space": "lorentz", "curvature": -1.0},
    "two_channel_euclid": {"space": "euclidean"},
    "dense": {"space": "none"},
}

_META_KEYS = (
    "schema",
    "model",
    "score_fn",
    "manifold",
    "dataset",
    "arrays",
    "config",
    "source",
    "environment",
    "created_unix",
)


def _environment() -> dict:
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "backend": get_backend().name,
        "retrieval": get_retrieval(),
    }


@dataclass
class ModelArtifact:
    """In-memory view of one ``repro.model/v1`` file."""

    meta: dict
    arrays: dict[str, np.ndarray]
    seen_indptr: np.ndarray
    seen_indices: np.ndarray
    tag_names: list[str] = field(default_factory=list)

    @property
    def score_fn(self) -> str:
        return self.meta["score_fn"]

    @property
    def model_name(self) -> str:
        return self.meta["model"]

    @property
    def n_users(self) -> int:
        return int(self.meta["dataset"]["n_users"])

    @property
    def n_items(self) -> int:
        return int(self.meta["dataset"]["n_items"])

    def scorer(self) -> FrozenScorer:
        """A ``score_users``-compatible view over the frozen arrays."""
        return FrozenScorer(self.score_fn, self.arrays)

    def seen_items(self, user: int) -> np.ndarray:
        """Item ids the user interacted with in the exported training data."""
        return self.seen_indices[self.seen_indptr[user] : self.seen_indptr[user + 1]]


def validate_model_artifact(
    meta: dict,
    arrays: dict[str, np.ndarray] | None = None,
    seen_indptr: np.ndarray | None = None,
    seen_indices: np.ndarray | None = None,
) -> list[str]:
    """Structural validation of a ``repro.model/v1`` document.

    Returns human-readable problems (empty when valid) — mirrors
    ``repro.train.run.validate_run_result``.  ``meta`` alone checks the
    JSON document; passing the arrays and seen-CSR additionally checks
    shape consistency against the metadata.
    """
    problems: list[str] = []
    if not isinstance(meta, dict):
        return ["metadata is not an object"]
    if meta.get("schema") != MODEL_SCHEMA:
        problems.append(f"schema is {meta.get('schema')!r}, expected {MODEL_SCHEMA!r}")
    for key in _META_KEYS:
        if key not in meta:
            problems.append(f"missing metadata key {key!r}")
    score_fn = meta.get("score_fn")
    if score_fn is not None and score_fn not in SCORE_FNS:
        problems.append(f"unknown score_fn {score_fn!r}; known: {sorted(SCORE_FNS)}")
    dataset = meta.get("dataset")
    if not isinstance(dataset, dict):
        problems.append("dataset must be an object")
        dataset = {}
    for key in ("name", "n_users", "n_items", "n_tags"):
        if key in ("n_users", "n_items", "n_tags"):
            value = dataset.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"dataset.{key} must be a non-negative integer")
        elif not isinstance(dataset.get(key), str):
            problems.append("dataset.name must be a string")
    shapes = meta.get("arrays")
    if not isinstance(shapes, dict):
        problems.append("arrays must be an object of name -> shape")
        shapes = {}
    if arrays is not None and score_fn in SCORE_FNS:
        problems.extend(check_payload(score_fn, arrays))
        if sorted(arrays) != sorted(shapes):
            problems.append(
                f"stored arrays {sorted(arrays)} do not match metadata {sorted(shapes)}"
            )
        else:
            for name, arr in arrays.items():
                if list(arr.shape) != list(shapes[name]):
                    problems.append(
                        f"array {name!r} has shape {list(arr.shape)}, metadata says {shapes[name]}"
                    )
        if not problems:
            n_users, n_items = frozen_counts(score_fn, arrays)
            if dataset.get("n_users") != n_users:
                problems.append(
                    f"dataset.n_users={dataset.get('n_users')} but arrays imply {n_users}"
                )
            if dataset.get("n_items") != n_items:
                problems.append(
                    f"dataset.n_items={dataset.get('n_items')} but arrays imply {n_items}"
                )
    if seen_indptr is not None and isinstance(dataset.get("n_users"), int):
        if seen_indptr.shape != (dataset["n_users"] + 1,):
            problems.append("seen/indptr must have n_users + 1 entries")
        elif np.any(np.diff(seen_indptr) < 0):
            problems.append("seen/indptr must be non-decreasing")
        elif seen_indices is not None:
            if len(seen_indices) != int(seen_indptr[-1]):
                problems.append("seen/indices length must equal seen/indptr[-1]")
            elif len(seen_indices) and isinstance(dataset.get("n_items"), int):
                if seen_indices.min() < 0 or seen_indices.max() >= dataset["n_items"]:
                    problems.append("seen/indices contains item ids out of range")
    return problems


def export_payload(
    out_path,
    *,
    score_fn: str,
    arrays: dict[str, np.ndarray],
    train,
    model_name: str,
    config: dict | None = None,
    source: str = "live",
) -> Path:
    """Write a frozen payload plus dataset context as one artifact file.

    ``train`` is the :class:`~repro.data.InteractionDataset` the model was
    trained on; its interaction CSR becomes the exclude-seen mask and its
    tag vocabulary travels along for interpretability endpoints.
    """
    problems = check_payload(score_fn, arrays)
    if problems:
        raise SchemaMismatchError("refusing to export invalid payload: " + "; ".join(problems))
    # ascontiguousarray promotes 0-d scalars to 1-d; keep those as-is.
    arrays = {
        name: np.ascontiguousarray(arr) if np.ndim(arr) else np.asarray(arr)
        for name, arr in arrays.items()
    }
    n_users, n_items = frozen_counts(score_fn, arrays)
    seen = train.interaction_matrix()
    meta = {
        "schema": MODEL_SCHEMA,
        "model": model_name,
        "score_fn": score_fn,
        "manifold": dict(_MANIFOLDS[score_fn]),
        "dataset": {
            "name": train.name,
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
            "n_tags": int(train.n_tags),
            # Synthetic presets use contiguous integer ids, so the stored
            # external ↔ internal maps are identity ranges.
            "user_id_map": "identity",
            "item_id_map": "identity",
        },
        "arrays": {name: list(arr.shape) for name, arr in arrays.items()},
        "config": dict(config or {}),
        "source": source,
        "environment": _environment(),
        "created_unix": time.time(),
    }
    problems = validate_model_artifact(
        meta, arrays, np.asarray(seen.indptr), np.asarray(seen.indices)
    )
    if problems:
        raise SchemaMismatchError("refusing to export invalid artifact: " + "; ".join(problems))
    if train.n_users != n_users or train.n_items != n_items:
        raise SchemaMismatchError(
            f"frozen arrays imply ({n_users}, {n_items}) users/items but the "
            f"dataset has ({train.n_users}, {train.n_items})"
        )
    payload: dict[str, np.ndarray] = {f"arrays/{k}": v for k, v in arrays.items()}
    payload["seen/indptr"] = np.asarray(seen.indptr, dtype=np.int64)
    payload["seen/indices"] = np.asarray(seen.indices, dtype=np.int64)
    payload["ids/tag_names"] = np.asarray(train.tag_names, dtype=np.str_)
    payload["__meta__"] = np.asarray(json.dumps(meta))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(out_path, **payload)
    return out_path


def export_model(model, out_path, *, source: str = "live") -> Path:
    """Freeze one live model into a ``repro.model/v1`` artifact.

    Calls the model's :meth:`~repro.models.Recommender.frozen_scores`
    contract — final user/item/tag arrays with all aggregation applied —
    and packages the payload with the training dataset's seen-CSR and id
    context.
    """
    payload = model.frozen_scores()
    from dataclasses import asdict, is_dataclass

    config = model.config
    return export_payload(
        out_path,
        score_fn=payload["score_fn"],
        arrays=payload["arrays"],
        train=model.train_data,
        model_name=model.name,
        config=asdict(config) if is_dataclass(config) else dict(config or {}),
        source=source,
    )


def save_artifact(artifact: ModelArtifact, out_path) -> Path:
    """Write an in-memory :class:`ModelArtifact` as a ``.npz`` file.

    Inverse of :func:`load_artifact` for artifacts that did not come from
    a live model — e.g. fold-in results (:mod:`repro.stream`), whose
    ``meta["stream"]`` provenance survives the round-trip.  Validates
    before writing, like every other export path.
    """
    problems = validate_model_artifact(
        artifact.meta, artifact.arrays, artifact.seen_indptr, artifact.seen_indices
    )
    if problems:
        raise SchemaMismatchError("refusing to save invalid artifact: " + "; ".join(problems))
    payload: dict[str, np.ndarray] = {f"arrays/{k}": v for k, v in artifact.arrays.items()}
    payload["seen/indptr"] = np.asarray(artifact.seen_indptr, dtype=np.int64)
    payload["seen/indices"] = np.asarray(artifact.seen_indices, dtype=np.int64)
    payload["ids/tag_names"] = np.asarray(artifact.tag_names, dtype=np.str_)
    payload["__meta__"] = np.asarray(json.dumps(artifact.meta))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(out_path, **payload)
    return out_path


def artifact_from_model(model, *, source: str = "live") -> ModelArtifact:
    """Freeze one live model into an *in-memory* :class:`ModelArtifact`.

    Same payload and metadata as :func:`export_model` without the
    ``.npz`` round-trip — used by the streaming fold-in harness
    (:mod:`repro.stream`) which rebuilds artifacts many times per replay
    window.  The result passes the same validation as a loaded file.
    """
    from dataclasses import asdict, is_dataclass

    payload = model.frozen_scores()
    score_fn, arrays = payload["score_fn"], payload["arrays"]
    problems = check_payload(score_fn, arrays)
    if problems:
        raise SchemaMismatchError("refusing to freeze invalid payload: " + "; ".join(problems))
    arrays = {
        name: np.ascontiguousarray(arr) if np.ndim(arr) else np.asarray(arr)
        for name, arr in arrays.items()
    }
    train = model.train_data
    config = model.config
    seen = train.interaction_matrix()
    meta = {
        "schema": MODEL_SCHEMA,
        "model": model.name,
        "score_fn": score_fn,
        "manifold": dict(_MANIFOLDS[score_fn]),
        "dataset": {
            "name": train.name,
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
            "n_tags": int(train.n_tags),
            "user_id_map": "identity",
            "item_id_map": "identity",
        },
        "arrays": {name: list(arr.shape) for name, arr in arrays.items()},
        "config": asdict(config) if is_dataclass(config) else dict(config or {}),
        "source": source,
        "environment": _environment(),
        "created_unix": time.time(),
    }
    indptr = np.asarray(seen.indptr, dtype=np.int64)
    indices = np.asarray(seen.indices, dtype=np.int64)
    problems = validate_model_artifact(meta, arrays, indptr, indices)
    if problems:
        raise SchemaMismatchError("refusing to freeze invalid artifact: " + "; ".join(problems))
    return ModelArtifact(meta, arrays, indptr, indices, tag_names=list(train.tag_names))


def _resolve_checkpoint(source: Path) -> Path:
    """A checkpoint path, or the latest checkpoint inside a run directory."""
    if source.is_dir():
        from ..train.run import RunDir

        checkpoints = RunDir(source, create=False).checkpoints()
        if not checkpoints:
            raise ArtifactError(f"run directory {source} contains no checkpoint_*.npz files")
        return checkpoints[-1]
    if not source.exists():
        raise ArtifactError(f"checkpoint {source} does not exist")
    return source


def export_from_checkpoint(source, out_path, *, best: bool = False) -> Path:
    """Freeze a ``repro.ckpt/v1`` checkpoint (or run dir) into an artifact.

    The checkpoint's embedded run info rebuilds the exact training context
    (dataset preset, scale, seed, config), the saved weights — final by
    default, the best-validation snapshot with ``best=True`` — are loaded,
    and the reconstructed model is exported as from a live run.
    """
    from ..data import load_preset, temporal_split
    from ..models import TrainConfig, create_model
    from ..train import load_checkpoint

    source = _resolve_checkpoint(Path(source))
    try:
        ckpt = load_checkpoint(source)
    except ValueError as exc:  # bad schema tag from the checkpoint loader
        raise SchemaMismatchError(str(exc)) from exc
    except (OSError, KeyError, json.JSONDecodeError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"unreadable checkpoint {source}: {exc}") from exc
    run_info = ckpt.meta.get("run") or {}
    if not run_info:
        raise ArtifactError(
            f"checkpoint {source} has no embedded run info; it was not written "
            "by a run directory and cannot be exported without its dataset"
        )
    config = TrainConfig(**run_info["config"])
    data = load_preset(run_info["dataset"], scale=float(run_info["scale"]))
    split = temporal_split(data)
    model = create_model(run_info["model"], split.train, config)
    state = ckpt.best_state if best and ckpt.best_state else ckpt.model_state
    model.load_state_dict(state)
    model.load_extra_state(ckpt.meta.get("extra_state") or {})
    return export_model(model, out_path, source=str(source))


def load_artifact(path) -> ModelArtifact:
    """Read and validate one artifact (``.npz`` file or shared bundle dir).

    A directory is loaded as an mmap-backed shared bundle
    (:func:`repro.serve.shared.load_shared`); a file as the classic
    ``.npz`` container.  Raises the typed hierarchy from
    :mod:`repro.serve.errors`: :class:`ArtifactError` for unreadable
    files, :class:`SchemaMismatchError` for wrong/invalid schemas,
    :class:`UnknownScoreFnError` for score-fn ids this build does not
    register.
    """
    path = Path(path)
    if path.is_dir():
        from .shared import load_shared

        return load_shared(path)
    try:
        with np.load(path, allow_pickle=False) as npz:
            if "__meta__" not in npz.files:
                raise ArtifactError(f"{path} has no __meta__ entry; not a repro.model artifact")
            try:
                meta = json.loads(str(npz["__meta__"][()]))
            except json.JSONDecodeError as exc:
                raise ArtifactError(f"{path} carries unparseable metadata: {exc}") from exc
            groups: dict[str, dict[str, np.ndarray]] = {"arrays": {}, "seen": {}, "ids": {}}
            for key in npz.files:
                head, _, rest = key.partition("/")
                if head in groups and rest:
                    groups[head][rest] = np.array(npz[key])
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    if not isinstance(meta, dict):
        raise ArtifactError(f"{path} metadata is not an object")
    if meta.get("schema") != MODEL_SCHEMA:
        raise SchemaMismatchError(
            f"{path} declares schema {meta.get('schema')!r}; this build serves {MODEL_SCHEMA!r}"
        )
    score_fn = meta.get("score_fn")
    if score_fn not in SCORE_FNS:
        raise UnknownScoreFnError(
            f"{path} requires score_fn {score_fn!r}; this build knows {sorted(SCORE_FNS)}"
        )
    seen_indptr = groups["seen"].get("indptr")
    seen_indices = groups["seen"].get("indices")
    if seen_indptr is None or seen_indices is None:
        raise SchemaMismatchError(f"{path} is missing the seen/indptr + seen/indices CSR")
    problems = validate_model_artifact(meta, groups["arrays"], seen_indptr, seen_indices)
    if problems:
        raise SchemaMismatchError(f"{path} failed validation: " + "; ".join(problems))
    tag_names = [str(t) for t in groups["ids"].get("tag_names", np.asarray([], dtype=np.str_))]
    return ModelArtifact(
        meta=meta,
        arrays=groups["arrays"],
        seen_indptr=seen_indptr.astype(np.int64),
        seen_indices=seen_indices.astype(np.int64),
        tag_names=tag_names,
    )
