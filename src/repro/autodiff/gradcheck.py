"""Numerical gradient checking via central differences.

Used heavily by the test suite to verify every primitive's vector-Jacobian
product against finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. input ``wrt``."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    target = base[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        plus = fn(*[Tensor(x) for x in base]).item()
        target[idx] = orig - eps
        minus = fn(*[Tensor(x) for x in base]).item()
        target[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert that analytic gradients of scalar ``fn`` match finite differences.

    Raises
    ------
    AssertionError
        If any input's analytic gradient deviates beyond tolerance.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_grad(fn, [x.data for x in tensors], wrt=i, eps=eps)
        np.testing.assert_allclose(
            analytic,
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
