"""Higher-level differentiable functions built from tensor primitives."""

from __future__ import annotations

import numpy as np

from .ops import maximum, where
from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "hinge",
    "softplus",
    "binary_cross_entropy_with_logits",
    "dropout",
]


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    out = (x - shift).exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.reshape(tuple(np.delete(out.shape, axis)))
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Shift-invariant softmax along ``axis``."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    e = (x - shift).exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed via logsumexp."""
    return x - logsumexp(x, axis=axis, keepdims=True)


def hinge(x: Tensor) -> Tensor:
    """Standard hinge ``[x]_+ = max(x, 0)`` used by the LMNN loss (Eq. 18)."""
    return maximum(x, Tensor(0.0))


def softplus(x: Tensor) -> Tensor:
    """log(1 + exp(x)) computed as max(x, 0) + log(1 + exp(-|x|)) for stability."""
    return hinge(x) + ((-(x.abs())).exp() + 1.0).log()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean BCE over logits — used by NeuMF and AGCN's attribute head."""
    targets = Tensor(np.asarray(targets, dtype=np.float64))
    # max(z, 0) - z * y + log(1 + exp(-|z|))
    loss = hinge(logits) - logits * targets + ((-(logits.abs())).exp() + 1.0).log()
    return loss.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with explicit RNG for determinism."""
    if not training or rate <= 0.0:
        return x
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)
