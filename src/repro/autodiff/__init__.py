"""Reverse-mode autodiff engine on NumPy (the repo's PyTorch substitute)."""

from .functional import (
    binary_cross_entropy_with_logits,
    dropout,
    hinge,
    log_softmax,
    logsumexp,
    softmax,
    softplus,
)
from .gradcheck import check_gradients, numerical_grad
from .ops import concat, dot, maximum, minimum, ones, scatter_mean_rows, stack, where, zeros
from .parameter import Module, Parameter
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "Parameter",
    "Module",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "dot",
    "zeros",
    "ones",
    "scatter_mean_rows",
    "softmax",
    "log_softmax",
    "logsumexp",
    "hinge",
    "softplus",
    "binary_cross_entropy_with_logits",
    "dropout",
    "check_gradients",
    "numerical_grad",
]
