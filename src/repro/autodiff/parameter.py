"""Trainable parameters and a minimal module container.

A :class:`Parameter` is a leaf :class:`Tensor` tagged with the manifold it
lives on.  The Riemannian optimiser (:mod:`repro.optim.rsgd`) dispatches on
that tag: tag embeddings carry the Poincaré ball, user/item embeddings carry
the Lorentz hyperboloid, and baseline weights carry the Euclidean manifold
(paper §IV-E).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A leaf tensor optimised on a (possibly curved) manifold."""

    __slots__ = ("manifold",)

    def __init__(self, data, manifold=None):
        super().__init__(data, requires_grad=True)
        self.manifold = manifold


class Module:
    """Collects :class:`Parameter` attributes, recursively through submodules."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield every unique Parameter, recursing through submodules/lists."""
        seen: set[int] = set()
        for value in vars(self).values():
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                for p in value.parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        yield p
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item
                    elif isinstance(item, Module):
                        for p in item.parameters():
                            if id(p) not in seen:
                                seen.add(id(p))
                                yield p

    def zero_grad(self) -> None:
        """Zero gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array snapshot (copies) for checkpointing.

        Parameters held in list/tuple attributes (e.g. per-layer weight
        stacks) are named by index — ``W_self.0``, ``W_self.1`` — so the
        snapshot covers exactly the parameters :meth:`parameters` yields.
        """
        state = {}
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                state[name] = value.data.copy()
            elif isinstance(value, Module):
                for sub, arr in value.state_dict().items():
                    state[f"{name}.{sub}"] = arr
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        state[f"{name}.{i}"] = item.data.copy()
                    elif isinstance(item, Module):
                        for sub, arr in item.state_dict().items():
                            state[f"{name}.{i}.{sub}"] = arr
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot (shapes must match)."""
        for name, arr in state.items():
            head, _, rest = name.partition(".")
            target = getattr(self, head)
            while isinstance(target, (list, tuple)):
                index, _, rest = rest.partition(".")
                target = target[int(index)]
            if rest:
                target.load_state_dict({rest: arr})
            else:
                if target.data.shape != arr.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {target.data.shape} vs {arr.shape}"
                    )
                target.data[...] = arr
