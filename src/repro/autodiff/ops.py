"""Free-function tensor operations that do not fit as ``Tensor`` methods."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, _unbroadcast

__all__ = [
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "dot",
    "zeros",
    "ones",
    "scatter_mean_rows",
]


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """A zero-filled tensor."""
    return Tensor(np.zeros(shape, dtype=np.float64), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """A one-filled tensor."""
    return Tensor(np.ones(shape, dtype=np.float64), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradient splits back to inputs."""
    tensors = [_wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def vjp(g):
        grads = []
        for i in range(len(tensors)):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(index)])
        return grads

    return Tensor._from_op(data, tensors, vjp)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [_wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def vjp(g):
        return [np.take(g, i, axis=axis) for i in range(len(tensors))]

    return Tensor._from_op(data, tensors, vjp)


def where(condition, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition)
    a, b = _wrap(a), _wrap(b)
    data = np.where(condition, a.data, b.data)

    def vjp(g):
        return (
            _unbroadcast(np.where(condition, g, 0.0), a.shape),
            _unbroadcast(np.where(condition, 0.0, g), b.shape),
        )

    return Tensor._from_op(data, (a, b), vjp)


def maximum(a, b) -> Tensor:
    """Elementwise max; at ties the gradient is split evenly."""
    a, b = _wrap(a), _wrap(b)
    data = np.maximum(a.data, b.data)

    def vjp(g):
        a_wins = (a.data > b.data).astype(np.float64)
        tie = (a.data == b.data).astype(np.float64) * 0.5
        wa = a_wins + tie
        return (_unbroadcast(g * wa, a.shape), _unbroadcast(g * (1.0 - wa), b.shape))

    return Tensor._from_op(data, (a, b), vjp)


def minimum(a, b) -> Tensor:
    """Elementwise min (via negated :func:`maximum`)."""
    return -maximum(-_wrap(a), -_wrap(b))


def dot(a: Tensor, b: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Batched inner product ``sum(a * b, axis)``."""
    return (a * b).sum(axis=axis, keepdims=keepdims)


def scatter_mean_rows(values: Tensor, index: np.ndarray, n_rows: int) -> Tensor:
    """Group rows of ``values`` by ``index`` and average each group.

    This is the sparse-neighbourhood aggregation primitive used by the GCN
    layers: row ``r`` of the output is the mean of ``values[i]`` over all
    ``i`` with ``index[i] == r``.  Empty groups produce zero rows.

    Parameters
    ----------
    values:
        ``(nnz, d)`` tensor of messages.
    index:
        ``(nnz,)`` int array of destination rows.
    n_rows:
        Number of output rows.
    """
    index = np.asarray(index)
    counts = np.bincount(index, minlength=n_rows).astype(np.float64)
    safe = np.maximum(counts, 1.0)
    d = values.data.shape[1]
    data = np.zeros((n_rows, d), dtype=np.float64)
    np.add.at(data, index, values.data)
    data /= safe[:, None]

    def vjp(g):
        return (g[index] / safe[index][:, None],)

    return Tensor._from_op(data, (values,), vjp)
