"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the computational substrate for the whole reproduction: the
paper trains TaxoRec (and all baselines) with PyTorch, which is unavailable
here, so we provide a small but complete reverse-mode engine.  A ``Tensor``
wraps a ``numpy.ndarray`` and records the operation that produced it; calling
:meth:`Tensor.backward` walks the graph in reverse topological order and
accumulates vector-Jacobian products into ``.grad`` on every leaf with
``requires_grad=True``.

All arrays are float64.  Numerical stability near the boundary of the
Poincaré ball dominates any speed benefit of float32 at this scale.

Example
-------
>>> x = Tensor([1.0, 2.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4.])
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

# autodiff sits directly above repro.backend in the layering: every
# transcendental and matmul kernel dispatches through the active backend
# so a faster kernel set swaps in under the whole training stack at once.
# Each op resolves the backend at *forward* time and closes over it, so a
# graph built under one backend also backpropagates under it.
from ..backend import get_backend
from ..backend.constants import MIN_NORM as _MIN_NORM

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multidimensional array.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; stored as float64.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_vjp", "name")
    __array_priority__ = 100  # make np_scalar * Tensor dispatch to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._vjp: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None
        self.name: str | None = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        vjp: Callable[[np.ndarray], Sequence[np.ndarray | None]],
    ) -> "Tensor":
        parents = tuple(parents)
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._vjp = vjp
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones for scalar outputs; non-scalar outputs
        require an explicit upstream gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._vjp is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            parent_grads = node._vjp(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad
            # Intermediate nodes with no vjp-needed storage are released here.

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a one-element tensor."""
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data
        a_shape, b_shape = self.shape, other.shape

        def vjp(g):
            return _unbroadcast(g, a_shape), _unbroadcast(g, b_shape)

        return Tensor._from_op(data, (self, other), vjp)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data
        a_shape, b_shape = self.shape, other.shape

        def vjp(g):
            return _unbroadcast(g, a_shape), _unbroadcast(-g, b_shape)

        return Tensor._from_op(data, (self, other), vjp)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data
        a, b = self, other

        def vjp(g):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._from_op(data, (a, b), vjp)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data
        a, b = self, other

        def vjp(g):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._from_op(data, (a, b), vjp)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        def vjp(g):
            return (-g,)

        return Tensor._from_op(-self.data, (self,), vjp)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent
        a = self

        def vjp(g):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._from_op(data, (a,), vjp)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        xp = get_backend()
        data = xp.matmul(self.data, other.data)
        a, b = self, other

        def vjp(g):
            if a.data.ndim == 1 and b.data.ndim == 1:
                return g * b.data, g * a.data
            if a.data.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return xp.matmul(g, b.data.T), xp.outer(a.data, g)
            if b.data.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return xp.outer(g, b.data), xp.matmul(a.data.T, g)
            ga = xp.matmul(g, np.swapaxes(b.data, -1, -2))
            gb = xp.matmul(np.swapaxes(a.data, -1, -2), g)
            return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)

        return Tensor._from_op(data, (a, b), vjp)

    # ------------------------------------------------------------------
    # Comparisons (return plain bool arrays; non-differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Return a view with the given shape (gradient reshapes back)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        data = self.data.reshape(shape)

        def vjp(g):
            return (g.reshape(old_shape),)

        return Tensor._from_op(data, (self,), vjp)

    @property
    def T(self) -> "Tensor":
        data = self.data.T

        def vjp(g):
            return (g.T,)

        return Tensor._from_op(data, (self,), vjp)

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (all reversed when ``axes`` is empty)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def vjp(g):
            return (g.transpose(inverse),)

        return Tensor._from_op(data, (self,), vjp)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.shape

        def vjp(g):
            out = np.zeros(shape, dtype=np.float64)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._from_op(data, (self,), vjp)

    def take_rows(self, indices) -> "Tensor":
        """Row gather with scatter-add backward — the embedding-lookup op.

        ``indices`` may contain repeats; gradients for repeated rows are
        summed, exactly as a sparse embedding gradient requires.
        """
        indices = np.asarray(indices)
        data = self.data[indices]
        shape = self.shape

        def vjp(g):
            out = np.zeros(shape, dtype=np.float64)
            np.add.at(out, indices, g)
            return (out,)

        return Tensor._from_op(data, (self,), vjp)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when None)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def vjp(g):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, shape).copy(),)

        return Tensor._from_op(data, (self,), vjp)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over ``axis``."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof = 0)."""
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        return (self.var(axis=axis, keepdims=keepdims) + eps).sqrt()

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties split gradient evenly."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        src = self.data

        def vjp(g):
            if axis is None:
                mask = (src == data).astype(np.float64)
            else:
                expanded = data if keepdims else np.expand_dims(data, axis)
                mask = (src == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if (axis is None or keepdims) else np.expand_dims(g, axis)
            return (mask * g_expanded,)

        return Tensor._from_op(data, (self,), vjp)

    # ------------------------------------------------------------------
    # Elementwise transcendental ops
    # ------------------------------------------------------------------
    def _unary(self, fn, dfn) -> "Tensor":
        data = fn(self.data)
        src = self.data

        def vjp(g):
            return (g * dfn(src, data),)

        return Tensor._from_op(data, (self,), vjp)

    def exp(self) -> "Tensor":
        """Elementwise e**x."""
        return self._unary(get_backend().exp, lambda x, y: y)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        return self._unary(get_backend().log, lambda x, y: 1.0 / x)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self._unary(get_backend().sqrt, lambda x, y: 0.5 / y)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        return self._unary(get_backend().tanh, lambda x, y: 1.0 - y * y)

    def sinh(self) -> "Tensor":
        """Elementwise hyperbolic sine."""
        xp = get_backend()
        return self._unary(xp.sinh, lambda x, y: xp.cosh(x))

    def cosh(self) -> "Tensor":
        """Elementwise hyperbolic cosine."""
        xp = get_backend()
        return self._unary(xp.cosh, lambda x, y: xp.sinh(x))

    def arcosh(self) -> "Tensor":
        """Inverse hyperbolic cosine; input is clipped to [1, inf) for safety."""
        xp = get_backend()
        src = np.maximum(self.data, 1.0)
        data = xp.arccosh(src)

        def vjp(g):
            # d/dx arccosh(x) = 1/sqrt(x^2 - 1); guard the boundary x = 1.
            denom = xp.sqrt(np.maximum(src * src - 1.0, _MIN_NORM))
            return (g / denom,)

        return Tensor._from_op(data, (self,), vjp)

    def arsinh(self) -> "Tensor":
        """Inverse hyperbolic sine (domain is all of R; no clipping needed)."""
        xp = get_backend()

        def vjp_factor(x, y):
            return 1.0 / xp.sqrt(x * x + 1.0)

        return self._unary(xp.arcsinh, vjp_factor)

    def artanh(self) -> "Tensor":
        """Inverse hyperbolic tangent; input clipped inside (-1, 1)."""
        xp = get_backend()
        src = np.clip(self.data, -1.0 + _MIN_NORM, 1.0 - _MIN_NORM)
        data = xp.arctanh(src)

        def vjp(g):
            return (g / (1.0 - src * src),)

        return Tensor._from_op(data, (self,), vjp)

    def log1p(self) -> "Tensor":
        """log(1 + x), accurate for small x."""
        return self._unary(get_backend().log1p, lambda x, y: 1.0 / (1.0 + x))

    def expm1(self) -> "Tensor":
        """exp(x) - 1, accurate for small x."""
        xp = get_backend()
        return self._unary(xp.expm1, lambda x, y: xp.exp(x))

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        return self._unary(np.abs, lambda x, y: np.sign(x))

    def squeeze(self, axis: int) -> "Tensor":
        """Drop a size-1 dimension."""
        if self.shape[axis] != 1:
            raise ValueError(f"axis {axis} has size {self.shape[axis]}, not 1")
        return self.reshape(tuple(np.delete(self.shape, axis)))

    def unsqueeze(self, axis: int) -> "Tensor":
        """Insert a size-1 dimension at ``axis``."""
        new_shape = list(self.shape)
        new_shape.insert(axis if axis >= 0 else axis + self.ndim + 1, 1)
        return self.reshape(tuple(new_shape))

    def clamp(self, min_value=None, max_value=None) -> "Tensor":
        """Clip values; gradient is 1 inside the interval, 0 outside."""
        data = np.clip(self.data, min_value, max_value)
        src = self.data

        def vjp(g):
            mask = np.ones_like(src)
            if min_value is not None:
                mask = mask * (src >= min_value)
            if max_value is not None:
                mask = mask * (src <= max_value)
            return (g * mask,)

        return Tensor._from_op(data, (self,), vjp)

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        return self._unary(
            lambda x: np.maximum(x, 0.0), lambda x, y: (x > 0).astype(np.float64)
        )

    def sigmoid(self) -> "Tensor":
        """Numerically stable logistic function."""
        xp = get_backend()

        def stable_sigmoid(x):
            out = np.empty_like(x)
            pos = x >= 0
            out[pos] = 1.0 / (1.0 + xp.exp(-x[pos]))
            ex = xp.exp(x[~pos])
            out[~pos] = ex / (1.0 + ex)
            return out

        return self._unary(stable_sigmoid, lambda x, y: y * (1.0 - y))

    def norm(self, axis=-1, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        """Euclidean norm along ``axis`` with a differentiable-safe floor."""
        sq = (self * self).sum(axis=axis, keepdims=keepdims)
        if eps:
            sq = sq + eps
        return sq.sqrt()
