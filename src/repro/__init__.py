"""TaxoRec reproduction: joint tag-taxonomy construction and recommendation
in hyperbolic space (Tan et al., ICDE 2022), rebuilt from scratch on NumPy.

Public layers
-------------
``repro.autodiff``   reverse-mode AD engine (the PyTorch substitute)
``repro.manifolds``  Poincaré / Lorentz / Klein models and their maps
``repro.optim``      SGD, Adam, Riemannian SGD
``repro.data``       dataset container, synthetic presets, splits, sampling
``repro.taxonomy``   scoring, Poincaré k-means, Algorithm 1, L_reg, recovery
``repro.models``     TaxoRec + 14 baselines behind one Recommender API
``repro.eval``       full-ranking Recall/NDCG, Wilcoxon significance

Quickstart
----------
>>> from repro import load_preset, temporal_split, TaxoRec, TrainConfig, evaluate
>>> split = temporal_split(load_preset("ciao"))
>>> model = TaxoRec(split.train, TrainConfig(epochs=30)).fit(split)
>>> result = evaluate(model, split, on="test")
"""

from .data import InteractionDataset, load_preset, temporal_split
from .eval import EvalResult, evaluate
from .models import TaxoRec, TrainConfig, create_model

__version__ = "1.0.0"

__all__ = [
    "InteractionDataset",
    "load_preset",
    "temporal_split",
    "TaxoRec",
    "TrainConfig",
    "create_model",
    "evaluate",
    "EvalResult",
    "__version__",
]
