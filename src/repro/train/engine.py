"""Callback-driven training engine.

This module extracts the epoch/batch loop that historically lived inside
``Recommender.fit`` into a reusable :class:`Trainer`:

* the loop owns a :class:`TrainState` — epoch cursor, per-epoch history,
  best-validation bookkeeping and the deep-copied best snapshot — which is
  fully serialisable into ``.npz`` checkpoints (:func:`save_checkpoint` /
  :func:`load_checkpoint`);
* all behaviour around the loop (model epoch hooks, early stopping, best
  snapshotting, logging, throughput metering, checkpointing, run-artifact
  writing) is composed from :mod:`repro.train.callbacks`;
* RNG consumption order is bit-compatible with the legacy loop: the
  triplet sampler is seeded from the model's generator before the
  optimiser is built, so seeded metrics match the pre-refactor repo.

Checkpoints capture the model ``state_dict``, optimizer ``state_dict``,
both model and sampler generator states, model-specific extra state (e.g.
TaxoRec's current taxonomy) and the full :class:`TrainState`, which makes
``k epochs → checkpoint → resume for N−k`` bit-identical to training ``N``
epochs straight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..autodiff import no_grad
from ..data import TripletSampler

__all__ = [
    "TrainState",
    "Trainer",
    "Checkpoint",
    "CKPT_SCHEMA",
    "snapshot_state_dict",
    "save_checkpoint",
    "load_checkpoint",
]

CKPT_SCHEMA = "repro.ckpt/v1"


def snapshot_state_dict(model) -> dict[str, np.ndarray]:
    """Deep-copied ``state_dict`` snapshot, safe to hold across training.

    ``Module.state_dict`` copies parameter arrays, but a model may override
    it; forcing a copy here guarantees the best-validation snapshot can
    never alias live parameter storage.
    """
    return {k: np.array(v, copy=True) for k, v in model.state_dict().items()}


@dataclass
class TrainState:
    """Serialisable loop state: everything resume needs besides weights.

    ``epoch`` is the *next* epoch index to execute; ``history`` holds one
    record per executed epoch (``{"epoch", "loss"[, "valid"]}``) and is the
    exact content of a run directory's ``history.jsonl``.
    """

    epoch: int = 0
    history: list[dict] = field(default_factory=list)
    best_score: float = float("-inf")
    best_epoch: int | None = None
    bad_rounds: int = 0
    improved: bool = False
    best_state: dict[str, np.ndarray] | None = None
    stop: bool = False
    stop_reason: str | None = None

    def observe_validation(self, score: float, epoch: int) -> bool:
        """Record one validation score; returns whether it improved the best."""
        if score > self.best_score:
            self.best_score = score
            self.best_epoch = epoch
            self.bad_rounds = 0
            self.improved = True
        else:
            self.bad_rounds += 1
            self.improved = False
        return self.improved


def _default_eval(model, split) -> float:
    """Legacy model-selection scalar: mean of the four validation metrics."""
    from ..eval import evaluate

    with no_grad():
        return evaluate(model, split, on="valid").mean()


class Trainer:
    """Owns the epoch/batch loop; everything else is a callback.

    Parameters
    ----------
    model:
        A :class:`repro.models.Recommender` (anything with ``loss_batch``,
        ``make_optimizer``, ``train_data``, ``config``, ``rng``).
    split:
        Optional train/valid/test split; required when
        ``config.eval_every > 0`` for validation-based callbacks.
    callbacks:
        Callback list; ``None`` selects :func:`default_callbacks`, which
        reproduces the legacy ``Recommender.fit`` behaviour exactly.
    eval_fn:
        ``eval_fn(model, split) -> float`` validation scalar; defaults to
        the mean of Recall/NDCG@10/20 on the validation phase.
    """

    def __init__(
        self,
        model,
        split=None,
        callbacks: list | None = None,
        eval_fn: Callable[[Any, Any], float] | None = None,
    ):
        self.model = model
        self.config = model.config
        self.split = split
        if callbacks is None:
            from .callbacks import default_callbacks

            callbacks = default_callbacks(model.config)
        self.callbacks = list(callbacks)
        self.eval_fn = eval_fn or _default_eval
        self.state = TrainState()
        self.sampler: TripletSampler | None = None
        self.optimizer = None

    # ------------------------------------------------------------------
    def fit(self, resume: "str | Path | Checkpoint | None" = None):
        """Run the training loop (optionally resuming from a checkpoint).

        Bit-compatibility contract: the sampler is constructed from the
        model's own generator *before* the optimiser, mirroring the legacy
        loop's RNG consumption order.
        """
        model, config = self.model, self.config
        self.sampler = TripletSampler(
            model.train_data, n_negatives=config.n_negatives, seed=model.rng
        )
        self.optimizer = model.make_optimizer()
        if resume is not None:
            ckpt = resume if isinstance(resume, Checkpoint) else load_checkpoint(resume)
            self.restore(ckpt)
        else:
            # Share the model's legacy ``history`` list so both views grow.
            self.state.history = model.history
        return self._run()

    def restore(self, ckpt: "Checkpoint") -> None:
        """Load a checkpoint into the model, optimizer, RNGs and state."""
        meta = ckpt.meta
        model, state = self.model, self.state
        model.load_state_dict(ckpt.model_state)
        model.load_extra_state(meta.get("extra_state") or {})
        if self.optimizer is not None and hasattr(self.optimizer, "load_state_dict"):
            self.optimizer.load_state_dict(ckpt.optim_state)
        model.rng.bit_generator.state = meta["model_rng"]
        if self.sampler is not None and meta.get("sampler_rng") is not None:
            self.sampler.set_rng_state(meta["sampler_rng"])
        state.epoch = int(meta["epoch"])
        state.history = list(meta["history"])
        state.best_score = float(meta["best_score"])
        state.best_epoch = meta["best_epoch"]
        state.bad_rounds = int(meta["bad_rounds"])
        state.best_state = ckpt.best_state or None
        model.history = state.history

    # ------------------------------------------------------------------
    def _emit(self, hook: str, *args) -> None:
        for cb in self.callbacks:
            getattr(cb, hook)(self, *args)

    def _run(self):
        model, config, state = self.model, self.config, self.state
        self._emit("on_train_begin")
        for epoch in range(state.epoch, config.epochs):
            self._emit("on_epoch_begin", epoch)
            epoch_loss = 0.0
            n_batches = 0
            for users, pos, neg in self.sampler.epoch(config.batch_size):
                self.optimizer.zero_grad()
                loss = model.loss_batch(users, pos, neg)
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
                self._emit("on_batch_end", epoch, users, loss)
            self._emit("on_epoch_train_end", epoch)
            record: dict[str, Any] = {"epoch": epoch, "loss": epoch_loss / max(n_batches, 1)}
            if config.eval_every and self.split is not None and (epoch + 1) % config.eval_every == 0:
                score = float(self.eval_fn(model, self.split))
                record["valid"] = score
                state.observe_validation(score, epoch)
            state.epoch = epoch + 1
            state.history.append(record)
            self._emit("on_epoch_end", epoch, record)
            if state.stop:
                break
        self._emit("on_train_end")
        return model


# ----------------------------------------------------------------------
# Checkpoint serialisation
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """In-memory view of one ``.npz`` checkpoint."""

    meta: dict
    model_state: dict[str, np.ndarray]
    optim_state: dict[str, np.ndarray]
    best_state: dict[str, np.ndarray]


def save_checkpoint(path, trainer: Trainer, run_info: dict | None = None) -> Path:
    """Write the trainer's full resumable state as one ``.npz`` file.

    ``run_info`` (model/dataset/seed/scale/config) is embedded verbatim so
    ``repro --resume ckpt.npz`` can rebuild the exact training context.
    """
    model, state = trainer.model, trainer.state
    arrays: dict[str, np.ndarray] = {}
    for key, arr in snapshot_state_dict(model).items():
        arrays[f"model/{key}"] = arr
    if state.best_state:
        for key, arr in state.best_state.items():
            arrays[f"best/{key}"] = arr
    optim_state = trainer.optimizer.state_dict() if trainer.optimizer is not None else {}
    for key, arr in optim_state.items():
        arrays[f"optim/{key}"] = np.asarray(arr)
    meta = {
        "schema": CKPT_SCHEMA,
        "epoch": state.epoch,
        "best_score": state.best_score,
        "best_epoch": state.best_epoch,
        "bad_rounds": state.bad_rounds,
        "stop_reason": state.stop_reason,
        "history": state.history,
        "model_rng": model.rng.bit_generator.state,
        "sampler_rng": trainer.sampler.get_rng_state() if trainer.sampler is not None else None,
        "extra_state": model.extra_state(),
        "run": run_info or {},
    }
    arrays["__meta__"] = np.asarray(json.dumps(meta))
    path = Path(path)
    np.savez(path, **arrays)
    return path


def load_checkpoint(path) -> Checkpoint:
    """Read a :func:`save_checkpoint` file back into a :class:`Checkpoint`."""
    with np.load(Path(path), allow_pickle=False) as npz:
        meta = json.loads(str(npz["__meta__"][()]))
        if meta.get("schema") != CKPT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {meta.get('schema')!r}; expected {CKPT_SCHEMA!r}"
            )
        groups: dict[str, dict[str, np.ndarray]] = {"model": {}, "optim": {}, "best": {}}
        for key in npz.files:
            head, _, rest = key.partition("/")
            if head in groups and rest:
                groups[head][rest] = np.array(npz[key])
    return Checkpoint(
        meta=meta,
        model_state=groups["model"],
        optim_state=groups["optim"],
        best_state=groups["best"],
    )
