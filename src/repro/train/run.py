"""Run directories and the versioned ``repro.run/v1`` result schema.

One training run produces one directory::

    <out_dir>/
        config.json           # model/dataset/seed/scale + full TrainConfig
        history.jsonl         # one deterministic record per executed epoch
        checkpoint_0004.npz   # resumable checkpoints (every N epochs)
        result.json           # repro.run/v1 document (validated on write)

The result document mirrors the ``repro.bench/v1`` pattern: a ``schema``
tag, a structural :func:`validate_run_result` used by tests and the CI
smoke job, and enough environment/config context to compare runs across
machines and commits.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..backend import get_backend
from ..retrieval import get_retrieval
from ..utils import Timer
from .callbacks import (
    BestSnapshot,
    Callback,
    Checkpointer,
    EarlyStopping,
    EpochLogger,
    ModelHooks,
    ThroughputMeter,
)
from .engine import Trainer, load_checkpoint

__all__ = [
    "RUN_SCHEMA",
    "RunDir",
    "HistoryWriter",
    "RunOutcome",
    "validate_run_result",
    "execute_run",
]

RUN_SCHEMA = "repro.run/v1"

_TEST_METRIC_KEYS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")


def _write_json(path: Path, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _environment() -> dict:
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "backend": get_backend().name,
        "retrieval": get_retrieval(),
    }


class RunDir:
    """Filesystem layout of one training run."""

    CONFIG = "config.json"
    HISTORY = "history.jsonl"
    RESULT = "result.json"

    def __init__(self, path, create: bool = True):
        self.path = Path(path)
        if create:
            self.path.mkdir(parents=True, exist_ok=True)

    # -- history ------------------------------------------------------
    @property
    def history_path(self) -> Path:
        return self.path / self.HISTORY

    def rewrite_history(self, records: list[dict]) -> None:
        """Replace ``history.jsonl`` with the given records (resume support)."""
        with open(self.history_path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    def append_history(self, record: dict) -> None:
        with open(self.history_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def read_history(self) -> list[dict]:
        if not self.history_path.exists():
            return []
        with open(self.history_path, "r", encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    # -- config / checkpoints / result --------------------------------
    def write_config(self, doc: dict) -> None:
        _write_json(self.path / self.CONFIG, doc)

    def read_config(self) -> dict:
        return json.loads((self.path / self.CONFIG).read_text())

    def checkpoint_path(self, epoch: int) -> Path:
        return self.path / f"checkpoint_{epoch:04d}.npz"

    def checkpoints(self) -> list[Path]:
        return sorted(self.path.glob("checkpoint_*.npz"))

    def write_result(self, doc: dict) -> None:
        """Validate against ``repro.run/v1`` and write ``result.json``."""
        problems = validate_run_result(doc)
        if problems:
            raise ValueError("invalid run result: " + "; ".join(problems))
        _write_json(self.path / self.RESULT, doc)

    def read_result(self) -> dict:
        return json.loads((self.path / self.RESULT).read_text())


class HistoryWriter(Callback):
    """Streams history records into ``history.jsonl`` as epochs finish.

    On train begin the file is rewritten from the trainer's (possibly
    checkpoint-restored) history, so a resumed run's ``history.jsonl`` is
    byte-identical to an uninterrupted run's.
    """

    def __init__(self, run_dir):
        self.run_dir = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)

    def on_train_begin(self, trainer) -> None:
        self.run_dir.rewrite_history(trainer.state.history)

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        self.run_dir.append_history(record)


def validate_run_result(doc: dict) -> list[str]:
    """Structural validation of a ``repro.run/v1`` document.

    Returns human-readable problems (empty when valid) — mirrors
    ``repro.bench.harness.validate_result``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["result is not an object"]
    if doc.get("schema") != RUN_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {RUN_SCHEMA!r}")
    for key in (
        "model",
        "dataset",
        "seed",
        "scale",
        "config",
        "epochs_run",
        "stopped_early",
        "best_epoch",
        "best_valid",
        "metrics",
        "timing",
        "checkpoints",
        "resumed_from",
        "environment",
        "created_unix",
    ):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    epochs_run = doc.get("epochs_run")
    if epochs_run is not None and (not isinstance(epochs_run, int) or epochs_run < 0):
        problems.append("epochs_run must be a non-negative integer")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not isinstance(metrics.get("test"), dict):
        problems.append("metrics.test must be an object")
    else:
        for key in _TEST_METRIC_KEYS:
            value = metrics["test"].get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"metrics.test.{key} must be a number")
    timing = doc.get("timing")
    if not isinstance(timing, dict):
        problems.append("timing must be an object")
    else:
        seconds = timing.get("train_seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            problems.append("timing.train_seconds must be a non-negative number")
        rate = timing.get("triplets_per_sec")
        if rate is not None and (not isinstance(rate, (int, float)) or rate <= 0):
            problems.append("timing.triplets_per_sec must be null or positive")
    checkpoints = doc.get("checkpoints")
    if not isinstance(checkpoints, list) or any(not isinstance(c, str) for c in checkpoints):
        problems.append("checkpoints must be a list of file names")
    config = doc.get("config")
    if not isinstance(config, dict) or "epochs" not in config:
        problems.append("config must be the serialised TrainConfig")
    return problems


@dataclass
class RunOutcome:
    """Everything a caller may want after :func:`execute_run`."""

    result: dict
    model: object
    split: object
    dataset: object
    trainer: Trainer
    test_result: object
    run_dir: RunDir | None


def execute_run(
    model: str = "TaxoRec",
    dataset: str = "ciao",
    seed: int = 0,
    scale: float = 1.0,
    epochs: int | None = None,
    out_dir=None,
    checkpoint_every: int = 0,
    verbose: bool = False,
    resume=None,
    config_overrides: dict | None = None,
    on_start=None,
) -> RunOutcome:
    """Train one model on one preset, producing a run directory.

    With ``resume`` (a checkpoint path), the training context — model,
    dataset, seed, scale and the full :class:`TrainConfig` — is rebuilt
    from the checkpoint's embedded run info and the remaining epochs are
    trained bit-identically to an uninterrupted run; the other grid
    arguments are ignored.

    ``on_start(dataset, split, model, config)`` is invoked once before
    training (the CLI uses it to print dataset stats).
    """
    from ..data import load_preset, temporal_split
    from ..eval import evaluate
    from ..models import TrainConfig, create_model
    from ..models.defaults import tuned_config

    ckpt = None
    if resume is not None:
        ckpt = load_checkpoint(resume)
        run_info_in = ckpt.meta.get("run") or {}
        if not run_info_in:
            raise ValueError(
                f"checkpoint {resume!s} has no embedded run info; "
                "it was not written by a run directory and cannot drive --resume"
            )
        model = run_info_in["model"]
        dataset = run_info_in["dataset"]
        seed = int(run_info_in["seed"])
        scale = float(run_info_in["scale"])
        config = TrainConfig(**run_info_in["config"])
        if verbose:
            config = replace(config, verbose=True)
        checkpoint_every = int(run_info_in.get("checkpoint_every", checkpoint_every))
    else:
        extra = dict(config_overrides or {})
        if verbose:
            extra["verbose"] = True
        config = tuned_config(model, dataset, epochs=epochs, seed=seed, **extra)

    data = load_preset(dataset, scale=scale)
    split = temporal_split(data)
    net = create_model(model, split.train, config)

    run_dir = RunDir(out_dir) if out_dir is not None else None
    run_info = {
        "model": model,
        "dataset": dataset,
        "seed": int(seed),
        "scale": float(scale),
        "config": asdict(config),
        "checkpoint_every": int(checkpoint_every),
    }
    meter = ThroughputMeter()
    callbacks: list[Callback] = [
        ModelHooks(),
        BestSnapshot(),
        EarlyStopping(patience=config.patience),
        EpochLogger(),
        meter,
    ]
    if run_dir is not None:
        callbacks.append(HistoryWriter(run_dir))
        if checkpoint_every:
            callbacks.append(Checkpointer(run_dir, checkpoint_every, run_info=run_info))

    trainer = Trainer(net, split=split, callbacks=callbacks)
    if on_start is not None:
        on_start(data, split, net, config)
    with Timer() as timer:
        trainer.fit(resume=ckpt)
    test_result = evaluate(net, split, on="test")

    state = trainer.state
    result = {
        "schema": RUN_SCHEMA,
        "model": model,
        "dataset": dataset,
        "seed": int(seed),
        "scale": float(scale),
        "config": asdict(config),
        "epochs_run": len(state.history),
        "stopped_early": state.stop_reason == "early_stopping",
        "best_epoch": state.best_epoch,
        "best_valid": None if state.best_epoch is None else state.best_score,
        "metrics": {
            "test": {key: getattr(test_result, key) for key in _TEST_METRIC_KEYS},
        },
        "timing": {
            "train_seconds": timer.elapsed,
            "triplets_per_sec": meter.triplets_per_sec,
        },
        "checkpoints": [p.name for p in run_dir.checkpoints()] if run_dir else [],
        "resumed_from": str(resume) if resume is not None else None,
        "environment": _environment(),
        "created_unix": time.time(),
    }
    if run_dir is not None:
        run_dir.write_config(run_info)
        run_dir.write_result(result)
    return RunOutcome(
        result=result,
        model=net,
        split=split,
        dataset=data,
        trainer=trainer,
        test_result=test_result,
        run_dir=run_dir,
    )
