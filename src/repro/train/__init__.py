"""Training engine: callback-driven Trainer, checkpoints, runs, sweeps.

See ``docs/TRAIN.md`` for the Trainer/callback API, the ``repro.run/v1``
artifact schema and resume semantics.
"""

from .callbacks import (
    BestSnapshot,
    Callback,
    Checkpointer,
    EarlyStopping,
    EpochLogger,
    ModelHooks,
    ThroughputMeter,
    default_callbacks,
)
from .engine import (
    CKPT_SCHEMA,
    Checkpoint,
    Trainer,
    TrainState,
    load_checkpoint,
    save_checkpoint,
    snapshot_state_dict,
)
from .experiment import (
    EXPERIMENT_SCHEMA,
    ExperimentResult,
    cell_dir_name,
    comparison_table,
    run_experiment,
    run_staleness_experiment,
)
from .run import (
    RUN_SCHEMA,
    HistoryWriter,
    RunDir,
    RunOutcome,
    execute_run,
    validate_run_result,
)

__all__ = [
    "Trainer",
    "TrainState",
    "Checkpoint",
    "CKPT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "snapshot_state_dict",
    "Callback",
    "ModelHooks",
    "BestSnapshot",
    "EarlyStopping",
    "EpochLogger",
    "ThroughputMeter",
    "Checkpointer",
    "default_callbacks",
    "RUN_SCHEMA",
    "RunDir",
    "HistoryWriter",
    "RunOutcome",
    "execute_run",
    "validate_run_result",
    "EXPERIMENT_SCHEMA",
    "ExperimentResult",
    "cell_dir_name",
    "comparison_table",
    "run_experiment",
    "run_staleness_experiment",
]
