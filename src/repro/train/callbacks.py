"""Composable training callbacks.

Every behaviour the legacy ``Recommender.fit`` hardwired is reimplemented
here as an independent callback; :func:`default_callbacks` assembles the
exact legacy combination (model epoch hooks, best-validation snapshot,
patience-based early stopping, verbose epoch logging).

Hook order within one epoch::

    on_epoch_begin          # before any batch (TaxoRec taxonomy rebuild)
    on_batch_end × batches
    on_epoch_train_end      # after batches, BEFORE validation (CML re-projection)
    on_epoch_end            # after validation; record already in history

``on_epoch_end`` receives the epoch's history record; mutating it is
allowed but anything written there lands in ``history.jsonl``, so only
deterministic values belong in the record (wall-clock numbers stay on the
callback object, see :class:`ThroughputMeter`).
"""

from __future__ import annotations

import time
from pathlib import Path

from ..manifolds.constants import DIV_EPS
from ..utils import get_logger
from .engine import save_checkpoint, snapshot_state_dict

__all__ = [
    "Callback",
    "ModelHooks",
    "BestSnapshot",
    "EarlyStopping",
    "EpochLogger",
    "ThroughputMeter",
    "Checkpointer",
    "default_callbacks",
]

_LOG = get_logger("repro.train")


class Callback:
    """No-op base; subclasses override the hooks they need."""

    def on_train_begin(self, trainer) -> None:
        """Called once before the first epoch (also on resume)."""

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        """Called before each epoch's first batch."""

    def on_batch_end(self, trainer, epoch: int, users, loss) -> None:
        """Called after each optimiser step."""

    def on_epoch_train_end(self, trainer, epoch: int) -> None:
        """Called after the epoch's batches, before validation."""

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        """Called after validation; ``record`` is already in the history."""

    def on_train_end(self, trainer) -> None:
        """Called once after the loop exits (normally or via early stop)."""


class ModelHooks(Callback):
    """Re-registers the model's ``begin_epoch``/``end_epoch`` hooks.

    Keeps TaxoRec's taxonomy rebuild before the batches and the CML
    family's ball re-projection after them, exactly as the legacy loop
    ordered the calls (re-projection runs *before* validation).
    """

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        trainer.model.begin_epoch(epoch)

    def on_epoch_train_end(self, trainer, epoch: int) -> None:
        trainer.model.end_epoch(epoch)


class BestSnapshot(Callback):
    """Deep-copy the weights whenever validation improves; restore at end.

    The snapshot goes through :func:`repro.train.engine.snapshot_state_dict`
    so it can never alias live parameter storage (the legacy loop's latent
    bug: a ``state_dict`` that returned live references would make "restore
    the best epoch" silently keep the final weights).
    """

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        if "valid" in record and trainer.state.improved:
            trainer.state.best_state = snapshot_state_dict(trainer.model)

    def on_train_end(self, trainer) -> None:
        if trainer.state.best_state is not None:
            trainer.model.load_state_dict(trainer.state.best_state)


class EarlyStopping(Callback):
    """Stop when validation fails to improve for more than ``patience`` rounds."""

    def __init__(self, patience: int | None = None):
        self.patience = patience

    def on_train_begin(self, trainer) -> None:
        if self.patience is None:
            self.patience = trainer.config.patience

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        if "valid" in record and trainer.state.bad_rounds > self.patience:
            trainer.state.stop = True
            trainer.state.stop_reason = "early_stopping"


class EpochLogger(Callback):
    """Per-epoch log lines through :mod:`repro.utils.logging`.

    ``verbose=None`` defers to ``trainer.config.verbose`` at train begin.
    """

    def __init__(self, verbose: bool | None = None, logger=None):
        self.verbose = verbose
        self.log = logger or _LOG

    def on_train_begin(self, trainer) -> None:
        if self.verbose is None:
            self.verbose = bool(trainer.config.verbose)

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        if not self.verbose:
            return
        name = getattr(trainer.model, "name", "model")
        if "valid" in record:
            self.log.info(
                "%s epoch %d loss %.4f valid %.4f", name, epoch, record["loss"], record["valid"]
            )
        else:
            self.log.info("%s epoch %d loss %.4f", name, epoch, record["loss"])


class ThroughputMeter(Callback):
    """Measures training throughput in triplets (sampled positives) per second.

    Wall-clock numbers never enter the history records — resumed runs must
    produce bit-identical ``history.jsonl`` — so the totals live on the
    meter and are reported via :attr:`triplets_per_sec` (e.g. into a run's
    ``result.json``).
    """

    def __init__(self):
        self.total_triplets = 0
        self.total_seconds = 0.0
        self.epoch_triplets = 0
        self.epoch_seconds = 0.0
        self._t0: float | None = None

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        self._t0 = time.perf_counter()
        self.epoch_triplets = 0

    def on_batch_end(self, trainer, epoch: int, users, loss) -> None:
        self.epoch_triplets += len(users)

    def on_epoch_train_end(self, trainer, epoch: int) -> None:
        if self._t0 is None:
            return
        self.epoch_seconds = time.perf_counter() - self._t0
        self.total_seconds += self.epoch_seconds
        self.total_triplets += self.epoch_triplets
        self._t0 = None

    @property
    def triplets_per_sec(self) -> float | None:
        """Aggregate training throughput; ``None`` before any epoch finishes."""
        if self.total_triplets == 0:
            return None
        return self.total_triplets / max(self.total_seconds, DIV_EPS)


class Checkpointer(Callback):
    """Write a resumable ``.npz`` checkpoint every ``every`` epochs.

    ``directory`` is either a plain path or a
    :class:`repro.train.run.RunDir` (anything with ``checkpoint_path``).
    ``run_info`` is embedded in each checkpoint so ``--resume`` can rebuild
    the training context without extra flags.
    """

    def __init__(self, directory, every: int, run_info: dict | None = None):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.directory = directory
        self.every = every
        self.run_info = run_info
        self.written: list[Path] = []

    def _path_for(self, epoch: int) -> Path:
        if hasattr(self.directory, "checkpoint_path"):
            return Path(self.directory.checkpoint_path(epoch))
        return Path(self.directory) / f"checkpoint_{epoch:04d}.npz"

    def on_epoch_end(self, trainer, epoch: int, record: dict) -> None:
        if (epoch + 1) % self.every == 0:
            self.written.append(save_checkpoint(self._path_for(epoch), trainer, self.run_info))


def default_callbacks(config) -> list[Callback]:
    """The legacy ``Recommender.fit`` behaviour as a callback stack."""
    return [
        ModelHooks(),
        BestSnapshot(),
        EarlyStopping(patience=config.patience),
        EpochLogger(),
    ]
