"""Experiment runner: sweep model × dataset × seed grids.

Each grid cell executes :func:`repro.train.run.execute_run` into its own
run directory (``<out_dir>/<Model>__<dataset>__seed<k>/``), sequentially
or through a ``multiprocessing`` pool, and the merged results land in
``experiment.json`` plus a rendered ``comparison.txt`` table — the
many-configuration comparison workflow the scalable-hyperbolic-recsys
literature leans on.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path

from ..utils import get_logger, render_table
from .run import execute_run

__all__ = [
    "EXPERIMENT_SCHEMA",
    "ExperimentResult",
    "cell_dir_name",
    "comparison_table",
    "run_experiment",
    "run_staleness_experiment",
]

EXPERIMENT_SCHEMA = "repro.experiment/v1"

_LOG = get_logger("repro.train")

_METRIC_COLUMNS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")


def cell_dir_name(model: str, dataset: str, seed: int) -> str:
    """Stable run-directory name for one grid cell."""
    return f"{model}__{dataset}__seed{seed}"


@dataclass
class ExperimentResult:
    """Merged sweep output: one ``repro.run/v1`` document per cell."""

    results: list[dict]
    table: str
    out_dir: Path


def _run_cell(payload: dict) -> dict:
    """Pool worker: execute one cell, return only its result document."""
    return execute_run(**payload).result


def _mean_metric(result: dict) -> float:
    test = result["metrics"]["test"]
    return sum(test[key] for key in _METRIC_COLUMNS) / len(_METRIC_COLUMNS)


def comparison_table(results: list[dict]) -> str:
    """Render the merged per-run table plus a seed-aggregated summary."""
    rows = []
    for doc in sorted(results, key=lambda d: (d["dataset"], d["model"], d["seed"])):
        test = doc["metrics"]["test"]
        rows.append(
            [
                doc["model"],
                doc["dataset"],
                str(doc["seed"]),
                *(f"{100.0 * test[key]:.2f}" for key in _METRIC_COLUMNS),
                "-" if doc["best_epoch"] is None else str(doc["best_epoch"]),
                str(doc["epochs_run"]),
            ]
        )
    merged = render_table(
        ["Model", "Dataset", "Seed", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20", "Best", "Epochs"],
        rows,
        title="Runs (metrics in %):",
    )

    groups: dict[tuple[str, str], list[float]] = {}
    for doc in results:
        groups.setdefault((doc["model"], doc["dataset"]), []).append(_mean_metric(doc))
    agg_rows = []
    for (model, dataset), means in sorted(groups.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        n = len(means)
        mean = sum(means) / n
        var = sum((m - mean) ** 2 for m in means) / n
        agg_rows.append([model, dataset, str(n), f"{100.0 * mean:.2f}", f"{100.0 * var ** 0.5:.2f}"])
    summary = render_table(
        ["Model", "Dataset", "#Seeds", "Mean metric (%)", "Std"],
        agg_rows,
        title="\nAggregated over seeds (mean of the four metrics):",
    )
    return merged + "\n" + summary


def run_experiment(
    models: list[str],
    datasets: list[str],
    seeds: list[int],
    out_dir,
    scale: float = 1.0,
    epochs: int | None = None,
    checkpoint_every: int = 0,
    jobs: int = 1,
    config_overrides: dict | None = None,
) -> ExperimentResult:
    """Run the full grid; one validated run directory per cell.

    ``jobs > 1`` fans cells out over a ``multiprocessing`` pool (fork
    context when available); each worker returns only its ``repro.run/v1``
    document, the run artifacts are already on disk.
    """
    from ..data import PRESET_NAMES
    from ..models import MODEL_REGISTRY

    unknown = [m for m in models if m not in MODEL_REGISTRY]
    if unknown:
        raise ValueError(f"unknown models {unknown!r}; see MODEL_REGISTRY")
    bad = [d for d in datasets if d not in PRESET_NAMES]
    if bad:
        raise ValueError(f"unknown datasets {bad!r}; choose from {PRESET_NAMES}")
    if not models or not datasets or not seeds:
        raise ValueError("models, datasets and seeds must all be non-empty")

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    payloads = []
    for dataset in datasets:
        for model in models:
            for seed in seeds:
                payloads.append(
                    dict(
                        model=model,
                        dataset=dataset,
                        seed=int(seed),
                        scale=scale,
                        epochs=epochs,
                        out_dir=str(out / cell_dir_name(model, dataset, int(seed))),
                        checkpoint_every=checkpoint_every,
                        config_overrides=dict(config_overrides or {}),
                    )
                )

    _LOG.info("experiment: %d cells (%d models × %d datasets × %d seeds), jobs=%d",
              len(payloads), len(models), len(datasets), len(seeds), jobs)
    if jobs > 1 and len(payloads) > 1:
        methods = multiprocessing.get_all_start_methods()
        ctx = (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )
        with ctx.Pool(min(jobs, len(payloads))) as pool:
            results = pool.map(_run_cell, payloads)
    else:
        results = [_run_cell(payload) for payload in payloads]

    table = comparison_table(results)
    doc = {
        "schema": EXPERIMENT_SCHEMA,
        "grid": {
            "models": list(models),
            "datasets": list(datasets),
            "seeds": [int(s) for s in seeds],
            "scale": float(scale),
            "epochs": epochs,
            "checkpoint_every": int(checkpoint_every),
            "jobs": int(jobs),
        },
        "runs": [Path(p["out_dir"]).name for p in payloads],
        "results": results,
        "created_unix": time.time(),
    }
    with open(out / "experiment.json", "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    (out / "comparison.txt").write_text(table + "\n", encoding="utf-8")
    return ExperimentResult(results=results, table=table, out_dir=out)


def run_staleness_experiment(
    out_dir,
    *,
    model: str = "CML",
    preset: str = "ciao",
    scale: float = 0.5,
    n_windows: int = 2,
    epochs: int = 30,
    seed: int = 0,
) -> dict:
    """Replay a temporal event stream: fold-in vs full retrain per window.

    The online-learning companion to :func:`run_experiment` — instead of
    sweeping a grid of configurations, it sweeps *time*: a slice of users
    is withheld from base training and their interactions arrive as an
    event stream, replayed window by window through the staleness harness
    (:mod:`repro.stream.staleness`).  The per-window metric decay of
    fold-in against a periodic full retrain (and the untouched frozen
    baseline) lands in ``<out_dir>/staleness.json``; the paired *latency*
    side of the same trade is measured by ``repro.bench --cases stream``.
    """
    from ..stream.staleness import StalenessConfig, replay

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    config = StalenessConfig(
        model=model,
        preset=preset,
        scale=scale,
        n_windows=n_windows,
        epochs=epochs,
        seed=seed,
    )
    _LOG.info(
        "staleness: model=%s preset=%s scale=%.2f windows=%d epochs=%d",
        model, preset, scale, n_windows, epochs,
    )
    summary = replay(config)
    doc = {
        "schema": EXPERIMENT_SCHEMA,
        "kind": "staleness",
        **summary,
        "created_unix": time.time(),
    }
    with open(out / "staleness.json", "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    rows = [
        [
            str(w["window"]),
            str(w["events"]),
            f"{w['fold_in']['ndcg']:.4f}",
            f"{w['retrain']['ndcg']:.4f}",
            f"{w['frozen']['ndcg']:.4f}",
            f"{w['ratio']:.3f}",
        ]
        for w in summary["windows"]
    ]
    table = render_table(
        ["window", "events", "fold-in NDCG@10", "retrain NDCG@10", "frozen NDCG@10", "ratio"],
        rows,
    )
    (out / "staleness.txt").write_text(table + "\n", encoding="utf-8")
    return doc
