"""ASCII table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them consistently.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_percent"]


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction as the paper's percentage convention (e.g. 0.0633 → '6.33')."""
    return f"{100.0 * value:.{decimals}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each cell is formatted with ``str``.
    title:
        Optional caption printed above the table.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
