"""Lightweight structured run logging."""

from __future__ import annotations

import logging
import sys
import time

__all__ = ["get_logger", "Timer"]

_CONFIGURED = False


def get_logger(name: str = "repro") -> logging.Logger:
    """Return the shared logger, configuring a stderr handler on first use."""
    global _CONFIGURED
    logger = logging.getLogger(name)
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        _CONFIGURED = True
    return logger


class Timer:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __enter__(self):
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._start
        return False
