"""Shared utilities: RNG plumbing, logging, table rendering."""

from .logging import Timer, get_logger
from .rng import ensure_rng, spawn
from .tables import format_percent, render_table

__all__ = ["ensure_rng", "spawn", "get_logger", "Timer", "render_table", "format_percent"]
