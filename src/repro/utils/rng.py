"""Deterministic random-number plumbing.

Everything stochastic in the repo takes either an explicit
``numpy.random.Generator`` or an integer seed; this module centralises the
conversion so seeds written in configs reproduce exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn"]


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator``: pass through generators, seed ints, or fresh entropy."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
