"""Sub-linear approximate top-K candidate generation in hyperbolic space.

The serving stack scores every item for every request; this package is
the candidate-generation layer that breaks that linear wall, the way
"Scalable Hyperbolic Recommender Systems" (PAPERS.md) does in the ASOS
production setting: factor each frozen score-fn into an inner product
plus per-item bias (:mod:`repro.retrieval.reduction`), select candidates
sub-linearly over the precomputed reduced arrays
(:mod:`repro.retrieval.indexes`), and re-rank only the candidates
through the exact monotone map — measured against the offline evaluator
by :mod:`repro.retrieval.harness`.

One process has one *active* retrieval kind, mirroring
:mod:`repro.backend` selection:

1. :func:`set_retrieval` (the serve CLI's ``--retrieval`` flag calls
   :func:`activate_retrieval`, which also exports ``REPRO_RETRIEVAL``
   for forked shard workers);
2. the ``REPRO_RETRIEVAL`` environment variable, read once on the first
   :func:`get_retrieval` call;
3. the default, ``"exact"`` — full scoring, the pre-retrieval behavior.

The active kind is an *id*, not an index: services build their own
:class:`CandidateIndex` per artifact snapshot (see
``repro.serve.service``) and record its provenance in ``stats()``; the
id is stamped into the ``repro.run/v1`` / ``repro.model/v1`` /
``repro.bench/v1`` environment blocks exactly like the backend id, so
every result is attributable to a retrieval mode.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .indexes import (
    INDEX_KINDS,
    BlockwiseIndex,
    BucketedIndex,
    CandidateIndex,
    ExactIndex,
    build_index,
    measure_recall,
)
from .reduction import Reduction, ReductionUnsupported, reduce_score_fn, reducible_score_fns

__all__ = [
    "CandidateIndex",
    "ExactIndex",
    "BlockwiseIndex",
    "BucketedIndex",
    "INDEX_KINDS",
    "build_index",
    "measure_recall",
    "Reduction",
    "ReductionUnsupported",
    "reduce_score_fn",
    "reducible_score_fns",
    "UnknownRetrievalError",
    "available_retrieval",
    "get_retrieval",
    "set_retrieval",
    "activate_retrieval",
    "use_retrieval",
]

ENV_VAR = "REPRO_RETRIEVAL"

_active: str | None = None


class UnknownRetrievalError(ValueError):
    """Raised for a retrieval kind not registered in this build."""

    def __init__(self, name: str):
        self.name = name
        self.known = available_retrieval()
        super().__init__(
            f"unknown retrieval index {name!r} (from {ENV_VAR} or --retrieval); "
            f"this build knows {list(self.known)}"
        )


def available_retrieval() -> tuple[str, ...]:
    """Registered retrieval index kinds, in registration order."""
    return tuple(INDEX_KINDS)


def _check(name: str) -> str:
    if name not in INDEX_KINDS:
        raise UnknownRetrievalError(name)
    return name


def get_retrieval() -> str:
    """The active retrieval kind (resolving ``REPRO_RETRIEVAL`` on first use)."""
    global _active
    if _active is None:
        _active = _check(os.environ.get(ENV_VAR, "exact"))
    return _active


def set_retrieval(name: str) -> str:
    """Activate a retrieval kind by id for the rest of the process."""
    global _active
    _active = _check(name)
    return _active


def activate_retrieval(name: str) -> str:
    """:func:`set_retrieval` + export ``REPRO_RETRIEVAL`` for children."""
    name = set_retrieval(name)
    os.environ[ENV_VAR] = name
    return name


@contextmanager
def use_retrieval(name: str):
    """Temporarily activate a retrieval kind (yields it); restores on exit."""
    global _active
    previous = _active
    _active = _check(name)
    try:
        yield _active
    finally:
        _active = previous
