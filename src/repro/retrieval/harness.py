"""Recall@K-vs-exact harness: ground truth, floors, and frontier records.

Two ground truths, one per life-cycle stage:

* **Offline** (a trained model plus its data split):
  :func:`recall_against_evaluator` replays
  :func:`repro.eval.topk_ranking` — the *same* ranking the offline
  metrics are computed from — and scores an index against it, so a
  recall number here is directly a statement about served quality.
* **Artifact-only** (no split in sight, e.g. synthetic bench workloads):
  :func:`repro.retrieval.indexes.measure_recall` compares against
  :class:`~repro.retrieval.indexes.ExactIndex`, which the parity suite
  proves identical to ``topk_ranking`` for every registered model.

:func:`frontier` sweeps a list of index specs over one artifact and
returns latency/recall records in the shape the ``retrieval`` bench
suite emits into ``BENCH_retrieval.json`` (``repro.bench/v1``).
"""

from __future__ import annotations

import time

import numpy as np

from .indexes import CandidateIndex, ExactIndex, build_index, measure_recall

__all__ = ["recall_against_evaluator", "frontier"]


def recall_against_evaluator(
    model,
    split,
    index: CandidateIndex,
    ks: tuple[int, ...] = (10, 50),
    on: str = "valid",
    batch_users: int = 512,
) -> dict:
    """Mean recall@k of ``index`` against :func:`repro.eval.topk_ranking`.

    ``on="valid"`` masks exactly the train interactions — the same CSR an
    exported artifact freezes into ``seen_indptr``/``seen_indices`` — so
    the comparison is apples-to-apples with ``exclude_seen=True`` index
    queries.  ``model`` is the reference scorer (a live model or a
    :class:`~repro.serve.scoring.FrozenScorer`).
    """
    from ..eval.evaluator import topk_ranking

    out: dict = {"ks": list(ks), "on": on, "recall": {}}
    for k in ks:
        k_eff = min(int(k), index.n_items)
        users, exact_topk = topk_ranking(model, split, on=on, k=k_eff, batch_users=batch_users)
        hits = 0
        for row, user in enumerate(users):
            approx = index.topk(int(user), k_eff, exclude_seen=True)[0]
            hits += len(np.intersect1d(approx, exact_topk[row], assume_unique=True))
        out["recall"][str(k)] = hits / (len(users) * k_eff) if len(users) else 1.0
        out["sample_users"] = int(len(users))
    return out


def _time_queries(index: CandidateIndex, users, k: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock for one sweep of single-user queries."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for user in users:
            index.topk(int(user), k, exclude_seen=True)
        best = min(best, time.perf_counter() - t0)
    return best


def frontier(
    artifact,
    specs: list[dict],
    k: int = 10,
    query_users: int = 32,
    repeats: int = 3,
    recall_ks: tuple[int, ...] = (10, 50),
    recall_sample_users: int = 32,
) -> list[dict]:
    """Latency/recall frontier of index ``specs`` over one artifact.

    Each spec is ``{"kind": ..., **build_params}``.  Every record holds
    the spec, measured recall@k against :class:`ExactIndex`, the best
    single-user query sweep time, and the exact baseline's time on the
    same users — the speedup column of the retrieval bench.
    """
    scorer = artifact.scorer()
    exact = ExactIndex(scorer, artifact.seen_indptr, artifact.seen_indices)
    users = np.unique(
        np.linspace(0, scorer.n_users - 1, num=min(query_users, scorer.n_users)).astype(np.int64)
    )
    exact_s = _time_queries(exact, users, k, repeats)
    records = []
    for spec in specs:
        spec = dict(spec)
        kind = spec.pop("kind")
        index = build_index(artifact, kind, recall_sample_users=0, **spec)
        index.recall = (
            measure_recall(index, exact, ks=recall_ks, sample_users=recall_sample_users)
            if kind != "exact"
            else None
        )
        fast_s = _time_queries(index, users, k, repeats)
        records.append(
            {
                "spec": {"kind": kind, **spec},
                "provenance": index.provenance(),
                "k": int(k),
                "query_users": int(len(users)),
                "fast_best_s": fast_s,
                "exact_best_s": exact_s,
                "speedup": exact_s / max(fast_s, np.finfo(np.float64).tiny),
            }
        )
    return records
