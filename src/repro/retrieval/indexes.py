"""Candidate indexes: sub-linear top-K behind one narrow interface.

A :class:`CandidateIndex` answers the same question as the service's
scoring core — deterministic top-``k`` ``(item_ids, scores)`` for one
user under the ``(-score, item_id)`` ranking key, with optional
exclude-seen masking — but is free to get there without scoring every
item exactly:

* :class:`ExactIndex` — the current serving path (frozen scorer + CSR
  ``-inf`` mask + :func:`repro.eval.metrics.rank_topk`), wrapped in the
  index interface.  The ground truth every other index is measured
  against.
* :class:`BlockwiseIndex` — selects candidates by the *reduced* score
  ``q·x + b`` (:mod:`repro.retrieval.reduction`) with a blockwise
  ``argpartition`` sweep over the precomputed item arrays, then applies
  the exact monotone ``finish`` map only to the candidates.  With the
  default float64 arrays the result is exact by construction (the
  candidate budget ``k + pad + |seen|`` covers every maskable rank, and
  the final re-rank uses the same ``rank_topk`` tiebreak); ``fp32`` /
  ``fp16`` arrays trade candidate-selection precision for bandwidth and
  re-score survivors in float64.
* :class:`BucketedIndex` — items are permuted into contiguous norm
  buckets at build; each query scans buckets in decreasing order of the
  provable per-bucket bound ``‖q‖·max‖x‖·(1+slack) + max b`` and stops
  as soon as the bound falls strictly below the current k-th best
  reduced score (exact), or once a ``max_scan`` fraction of the catalog
  has been scanned (approximate, a latency/recall frontier knob).

Score-fns with no reduced form (``two_channel_lorentz``, ``dense``)
make the approximate indexes degrade to an internal :class:`ExactIndex`
— recorded in :meth:`CandidateIndex.provenance` — so every artifact can
be served with any ``--retrieval`` flag.

Indexes are immutable after construction and safe to share across
threads; all matmul/norm kernels route through
:func:`repro.backend.get_backend`, so ``--backend``/``REPRO_BACKEND``
covers index queries exactly like full scoring.
"""

from __future__ import annotations

import time

import numpy as np

from ..backend import get_backend
from ..backend.constants import RETRIEVAL_BOUND_SLACK
from ..eval.metrics import rank_topk
from .reduction import Reduction, ReductionUnsupported, reduce_score_fn

__all__ = [
    "CandidateIndex",
    "ExactIndex",
    "BlockwiseIndex",
    "BucketedIndex",
    "INDEX_KINDS",
    "build_index",
    "measure_recall",
]


def exact_masked_scores(scorer, indptr, indices, users, exclude_seen: bool) -> np.ndarray:
    """Batched float64 scores with seen items masked to ``-inf``.

    Mirrors ``RecommenderService._masked_scores`` / the offline
    evaluator: same dtype, same CSR row slicing, same ``-inf`` masking,
    so rankings agree exactly.
    """
    users = np.asarray(users, dtype=np.int64)
    scores = np.asarray(scorer.score_users(users), dtype=np.float64)
    if exclude_seen:
        starts, stops = indptr[users], indptr[users + 1]
        rows = np.repeat(np.arange(len(users)), stops - starts)
        cols = (
            np.concatenate([indices[a:b] for a, b in zip(starts, stops)])
            if len(rows)
            else np.zeros(0, dtype=np.int64)
        )
        scores[rows, cols] = -np.inf
    return scores


class CandidateIndex:
    """Interface every candidate index implements.

    Construction takes the frozen scorer plus the artifact's seen-CSR;
    subclasses add their own build knobs.  ``topk`` must implement the
    evaluator's ``(-score, item_id)`` total order over whatever
    candidate set the index considers.
    """

    kind = "abstract"

    def __init__(self, scorer, seen_indptr, seen_indices):
        self.scorer = scorer
        self.seen_indptr = np.asarray(seen_indptr, dtype=np.int64)
        self.seen_indices = np.asarray(seen_indices, dtype=np.int64)
        self.n_users = int(scorer.n_users)
        self.n_items = int(scorer.n_items)
        self.build_seconds = 0.0
        self.recall: dict | None = None

    # ------------------------------------------------------------------
    def topk(self, user: int, k: int, exclude_seen: bool = True) -> tuple:
        raise NotImplementedError

    def topk_batch(self, users, k: int, exclude_seen: bool = True) -> tuple:
        """Per-user loop by design: every row is bit-identical to
        :meth:`topk`, so micro-batched serving cannot change a response."""
        users = np.asarray(users, dtype=np.int64)
        pairs = [self.topk(int(u), k, exclude_seen) for u in users]
        return (
            np.stack([p[0] for p in pairs]) if pairs else np.zeros((0, k), np.int64),
            np.stack([p[1] for p in pairs]) if pairs else np.zeros((0, k), np.float64),
        )

    # ------------------------------------------------------------------
    def params(self) -> dict:
        """Build parameters (JSON-safe); recorded in provenance."""
        return {}

    def provenance(self) -> dict:
        """Identity + build record for stats/artifact environment blocks."""
        return {
            "index": self.kind,
            "score_fn": self.scorer.score_fn,
            "params": self.params(),
            "fallback": getattr(self, "fallback_reason", None),
            "build_seconds": self.build_seconds,
            "recall": self.recall,
        }

    # ------------------------------------------------------------------
    def _seen_row(self, user: int) -> np.ndarray:
        row = self.seen_indices[self.seen_indptr[user] : self.seen_indptr[user + 1]]
        return np.sort(row)


class ExactIndex(CandidateIndex):
    """The exact serving path wrapped in the index interface."""

    kind = "exact"

    def topk(self, user: int, k: int, exclude_seen: bool = True) -> tuple:
        k = min(int(k), self.n_items)
        users = np.asarray([user], dtype=np.int64)
        scores = exact_masked_scores(
            self.scorer, self.seen_indptr, self.seen_indices, users, exclude_seen
        )
        top = rank_topk(scores, k)[0]
        return top, scores[0, top]


class _ReducedIndex(CandidateIndex):
    """Shared machinery for indexes built on a score-fn reduction."""

    def __init__(self, scorer, seen_indptr, seen_indices):
        super().__init__(scorer, seen_indptr, seen_indices)
        self.fallback_reason: str | None = None
        self._fallback: ExactIndex | None = None
        try:
            self.reduction: Reduction | None = reduce_score_fn(scorer.score_fn, scorer.arrays)
        except ReductionUnsupported as exc:
            self.reduction = None
            self.fallback_reason = exc.reason
            self._fallback = ExactIndex(scorer, seen_indptr, seen_indices)

    def _query_row(self, user: int) -> tuple[np.ndarray, float]:
        queries, offsets = self.reduction.query(np.asarray([user], dtype=np.int64))
        return queries, float(offsets[0])

    def _rank_candidates(
        self, cand_ids: np.ndarray, cand_reduced: np.ndarray, offset: float, k: int
    ) -> tuple:
        """Exact-rank a candidate pool: monotone map, then ``(-s, id)``.

        Candidates are sorted by item id first so ``rank_topk``'s
        column-index tiebreak coincides with the global item-id tiebreak.
        """
        order = np.argsort(cand_ids, kind="stable")
        ids = cand_ids[order]
        exact = self.reduction.finish(
            cand_reduced[order][None, :], np.asarray([offset])
        )[0]
        sel = rank_topk(exact[None, :], min(k, len(ids)))[0]
        return ids[sel], exact[sel]


class BlockwiseIndex(_ReducedIndex):
    """Blockwise ``argpartition`` over precomputed reduced item arrays.

    Per query: sweep the item axis in blocks, computing the reduced
    score ``q·x + b`` for one block at a time (one small matmul), mask
    the user's seen items, keep each block's top candidates by
    ``argpartition``, then exact-rank the pooled candidates through the
    monotone ``finish`` map.  The candidate budget per block is
    ``k + pad + |seen|`` (clamped to the catalog), which provably covers
    the exact top-``k``: masking can delete at most ``|seen|`` ranks,
    so every true top-``k`` unseen item sits within the first
    ``k + |seen|`` of its block under the reduced order.

    ``dtype`` selects the candidate-generation precision: ``"fp64"``
    (exact by construction), ``"fp32"`` or ``"fp16"`` (low-precision
    sweep arrays, ~2×/4× less memory bandwidth; survivors are re-scored
    in float64, so only candidate *selection* is approximate).
    """

    kind = "blockwise"
    DTYPES = {"fp64": np.float64, "fp32": np.float32, "fp16": np.float16}

    def __init__(
        self,
        scorer,
        seen_indptr,
        seen_indices,
        block_items: int = 4096,
        pad: int = 16,
        dtype: str = "fp64",
    ):
        if dtype not in self.DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}; known: {sorted(self.DTYPES)}")
        super().__init__(scorer, seen_indptr, seen_indices)
        self.block_items = max(int(block_items), 1)
        self.pad = max(int(pad), 0)
        self.dtype = dtype
        if self.reduction is not None and dtype != "fp64":
            self._sweep_vectors = np.ascontiguousarray(
                self.reduction.item_vectors.astype(self.DTYPES[dtype])
            )
            self._sweep_bias = self.reduction.item_bias.astype(self.DTYPES[dtype])
        else:
            self._sweep_vectors = None
            self._sweep_bias = None

    def params(self) -> dict:
        return {"block_items": self.block_items, "pad": self.pad, "dtype": self.dtype}

    def topk(self, user: int, k: int, exclude_seen: bool = True) -> tuple:
        if self._fallback is not None:
            return self._fallback.topk(user, k, exclude_seen)
        k = min(int(k), self.n_items)
        seen = self._seen_row(user) if exclude_seen else np.zeros(0, dtype=np.int64)
        budget = min(k + self.pad + len(seen), self.n_items)
        queries, offset = self._query_row(user)

        xp = get_backend()
        lowp = self._sweep_vectors is not None
        if lowp:
            sweep_q = queries.astype(self._sweep_vectors.dtype)
        cand_ids: list[np.ndarray] = []
        cand_vals: list[np.ndarray] = []
        for lo in range(0, self.n_items, self.block_items):
            hi = min(lo + self.block_items, self.n_items)
            if lowp:
                block = xp.matmul(sweep_q, self._sweep_vectors[lo:hi].T)[0]
                block = block + self._sweep_bias[lo:hi]
            else:
                block = self.reduction.reduced_scores(queries, lo, hi)[0]
            if len(seen):
                inside = seen[(seen >= lo) & (seen < hi)]
                if len(inside):
                    block[inside - lo] = -np.inf
            take = min(budget, hi - lo)
            part = np.argpartition(-block, take - 1)[:take] if take < hi - lo else np.arange(hi - lo)
            cand_ids.append(part + lo)
            cand_vals.append(np.asarray(block[part], dtype=np.float64))
        ids = np.concatenate(cand_ids)
        vals = np.concatenate(cand_vals)
        if len(ids) > budget:
            # Deterministic trim under the global (-value, id) order, so
            # reduced-score ties at the cut resolve exactly like rank_topk.
            keep = np.lexsort((ids, -vals))[:budget]
            ids, vals = ids[keep], vals[keep]
        if lowp:
            # Re-score survivors in float64 so returned values are exact.
            survivors = np.ascontiguousarray(self.reduction.item_vectors[ids])
            vals = xp.matmul(np.repeat(queries, 2, axis=0), survivors.T)[0]
            vals = vals + self.reduction.item_bias[ids]
            if len(seen):
                vals[np.isin(ids, seen, assume_unique=False)] = -np.inf
        return self._rank_candidates(ids, vals, offset, k)


class BucketedIndex(_ReducedIndex):
    """Norm-bucketed pruning with a provable per-bucket upper bound.

    Build: items are ordered by reduced-vector norm and split into
    ``n_buckets`` contiguous buckets; the permuted item arrays plus each
    bucket's ``max ‖x‖`` and ``max b`` are precomputed.  Query: by
    Cauchy–Schwarz, every item in bucket ``B`` satisfies

        q·x + b  ≤  ‖q‖ · max_B ‖x‖ · (1 + slack) + max_B b

    with ``slack = RETRIEVAL_BOUND_SLACK`` absorbing float64 rounding
    (the Hypothesis suite hammers this inequality).

    For ``neg_sq_lorentz`` a second provable bound is intersected in.
    On the hyperboloid the reduced score is ``r = ⟨u, v⟩_L = -cosh
    d(u, v)``, and the reverse triangle inequality gives ``d(u, v) ≥
    |ρ(u) - ρ(v)|`` for the radial coordinates ``ρ = arccosh(x₀)`` — so
    ``r ≤ -cosh(gap_B)`` where ``gap_B`` is the distance from the
    query's radius to the bucket's radial interval.  Sorting by reduced
    vector norm **is** sorting by radius (``‖x‖² = 2x₀² - 1`` on the
    hyperboloid), so the contiguous norm buckets have tight radial
    intervals for free, and the scan order follows the geometry instead
    of the hopelessly loose Cauchy–Schwarz ceiling.

    Buckets are scanned in decreasing bound order; once ``k`` unseen
    candidates are held and the next bound falls strictly below the
    current k-th best reduced score, no remaining item can enter the
    top-``k`` even via the id tiebreak, and the scan stops — exact early
    termination.  A ``max_scan < 1`` budget additionally caps the
    scanned fraction of the catalog, which is the approximate (frontier)
    mode.
    """

    kind = "bucketed"

    def __init__(
        self,
        scorer,
        seen_indptr,
        seen_indices,
        n_buckets: int = 32,
        max_scan: float = 1.0,
    ):
        super().__init__(scorer, seen_indptr, seen_indices)
        self.n_buckets = max(int(n_buckets), 1)
        self.max_scan = float(max_scan)
        if not 0.0 < self.max_scan <= 1.0:
            raise ValueError(f"max_scan must be in (0, 1], got {max_scan}")
        if self.reduction is None:
            return
        xp = get_backend()
        norms = xp.norm(self.reduction.item_vectors, axis=1)
        order = np.argsort(-norms, kind="stable").astype(np.int64)
        self._perm = order
        self._inv_perm = np.empty_like(order)
        self._inv_perm[order] = np.arange(self.n_items, dtype=np.int64)
        self._vectors = np.ascontiguousarray(self.reduction.item_vectors[order])
        self._bias = self.reduction.item_bias[order]
        bounds_idx = np.linspace(0, self.n_items, self.n_buckets + 1).astype(np.int64)
        self._slices = [
            (int(lo), int(hi))
            for lo, hi in zip(bounds_idx[:-1], bounds_idx[1:])
            if hi > lo
        ]
        self._max_norm = np.asarray(
            [norms[order[lo:hi]].max() for lo, hi in self._slices]
        )
        self._max_bias = np.asarray([self._bias[lo:hi].max() for lo, hi in self._slices])
        self._radial: tuple[np.ndarray, np.ndarray] | None = None
        if self.reduction.score_fn == "neg_sq_lorentz":
            # item_vectors are raw hyperboloid rows: column 0 is the time
            # coordinate cosh(ρ), monotone in the radius ρ.
            times = self._vectors[:, 0]
            rho = xp.arccosh(
                np.maximum(
                    np.asarray([[times[lo:hi].min(), times[lo:hi].max()] for lo, hi in self._slices]),
                    1.0,
                )
            )
            self._radial = (rho[:, 0], rho[:, 1])

    def params(self) -> dict:
        return {"n_buckets": self.n_buckets, "max_scan": self.max_scan}

    def bucket_bounds(self, query: np.ndarray) -> np.ndarray:
        """The provable reduced-score upper bound of each bucket."""
        xp = get_backend()
        q_norm = float(xp.norm(query))
        bounds = q_norm * self._max_norm * (1.0 + RETRIEVAL_BOUND_SLACK) + self._max_bias
        if self._radial is not None:
            # q = [-u₀, u₁…], so the query's time coordinate is -q[0].
            rho_q = float(xp.arccosh(np.maximum(-query[0], 1.0)))
            lo, hi = self._radial
            gap = np.where(rho_q < lo, lo - rho_q, np.where(rho_q > hi, rho_q - hi, 0.0))
            # Shrinking the gap keeps the bound provable under rounding:
            # -cosh underestimates in magnitude for a smaller argument.
            radial_bound = -xp.cosh(gap * (1.0 - RETRIEVAL_BOUND_SLACK))
            bounds = np.minimum(bounds, radial_bound)
        return bounds

    def topk(self, user: int, k: int, exclude_seen: bool = True) -> tuple:
        if self._fallback is not None:
            return self._fallback.topk(user, k, exclude_seen)
        k = min(int(k), self.n_items)
        seen = self._seen_row(user) if exclude_seen else np.zeros(0, dtype=np.int64)
        seen_pos = np.sort(self._inv_perm[seen]) if len(seen) else seen
        queries, offset = self._query_row(user)
        q = queries[0]
        bounds = self.bucket_bounds(q)
        scan_order = np.argsort(-bounds, kind="stable")
        budget_items = int(np.ceil(self.max_scan * self.n_items))
        # Exactness floor: with fewer unseen items than k the tail fills
        # with -inf seen entries, which only full coverage reproduces.
        if k + len(seen) >= self.n_items:
            budget_items = self.n_items

        xp = get_backend()
        pos_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        scanned = 0
        unseen_held = 0
        kth_best = -np.inf
        for b in scan_order:
            if unseen_held >= k and bounds[b] < kth_best:
                break  # no remaining bucket can beat the current k-th best
            if scanned >= budget_items and unseen_held >= k:
                break  # approximate mode: scan budget exhausted
            lo, hi = self._slices[b]
            vals = xp.matmul(np.repeat(queries, 2, axis=0), self._vectors[lo:hi].T)[0]
            vals = vals + self._bias[lo:hi]
            if len(seen_pos):
                inside = seen_pos[(seen_pos >= lo) & (seen_pos < hi)]
                if len(inside):
                    vals[inside - lo] = -np.inf
            pos_chunks.append(np.arange(lo, hi, dtype=np.int64))
            val_chunks.append(vals)
            scanned += hi - lo
            unseen_held += (hi - lo) - (len(inside) if len(seen_pos) else 0)
            if unseen_held >= k:
                pool = np.concatenate(val_chunks)
                finite = pool[np.isfinite(pool)]
                if len(finite) >= k:
                    kth_best = np.partition(finite, len(finite) - k)[len(finite) - k]
        positions = np.concatenate(pos_chunks)
        vals = np.concatenate(val_chunks)
        return self._rank_candidates(self._perm[positions], vals, offset, k)


INDEX_KINDS: dict[str, type[CandidateIndex]] = {
    "exact": ExactIndex,
    "blockwise": BlockwiseIndex,
    "bucketed": BucketedIndex,
}


def measure_recall(
    index: CandidateIndex,
    reference: CandidateIndex,
    ks: tuple[int, ...] = (10, 50),
    sample_users: int = 32,
    exclude_seen: bool = True,
) -> dict:
    """Mean recall@k of ``index`` against ``reference`` on a user sample.

    The sample is deterministic (evenly spaced user ids), so a recall
    recorded in provenance is reproducible from the artifact alone.
    """
    n = index.n_users
    users = np.unique(np.linspace(0, n - 1, num=min(int(sample_users), n)).astype(np.int64))
    out: dict = {"ks": list(ks), "sample_users": int(len(users)), "recall": {}}
    for k in ks:
        k_eff = min(int(k), index.n_items)
        hits = 0
        for user in users:
            approx = index.topk(int(user), k_eff, exclude_seen)[0]
            exact = reference.topk(int(user), k_eff, exclude_seen)[0]
            hits += len(np.intersect1d(approx, exact, assume_unique=True))
        out["recall"][str(k)] = hits / (len(users) * k_eff) if len(users) else 1.0
    return out


def build_index(
    artifact,
    kind: str = "exact",
    recall_sample_users: int = 32,
    recall_ks: tuple[int, ...] = (10, 50),
    **params,
) -> CandidateIndex:
    """Build a candidate index over an artifact, with provenance filled in.

    ``artifact`` is anything with ``scorer()``, ``seen_indptr`` and
    ``seen_indices`` (a :class:`repro.serve.artifact.ModelArtifact`
    qualifies).  Build wall-time and — unless ``recall_sample_users`` is
    0 — recall@k measured against :class:`ExactIndex` on a deterministic
    user sample are recorded in the index's provenance.
    """
    if kind not in INDEX_KINDS:
        raise ValueError(f"unknown index kind {kind!r}; known: {sorted(INDEX_KINDS)}")
    scorer = artifact.scorer()
    t0 = time.perf_counter()
    index = INDEX_KINDS[kind](scorer, artifact.seen_indptr, artifact.seen_indices, **params)
    index.build_seconds = time.perf_counter() - t0
    if recall_sample_users and kind != "exact":
        reference = ExactIndex(scorer, artifact.seen_indptr, artifact.seen_indices)
        index.recall = measure_recall(
            index, reference, ks=recall_ks, sample_users=recall_sample_users
        )
    return index
