"""Score-fn reductions: rewrite frozen scorers as inner-product + bias.

The ASOS result ("Scalable Hyperbolic Recommender Systems", PAPERS.md)
that makes hyperbolic serving ANN-friendly: the squared-Lorentz score
``-d²(u, v)`` with ``d = arccosh(max(-⟨u, v⟩_L, 1))`` is a strictly
monotone function of the Lorentz inner product, and that inner product is
one ordinary matmul once the time column of the query is negated.  The
same shape holds across most of the frozen score registry
(:mod:`repro.serve.scoring`): every supported score-fn factors as

    exact(u, i) = finish(q(u) · x(i) + b(i)) + offset(u)

where ``x``/``b`` are **item-side arrays precomputed at index build**,
``q``/``offset`` are cheap per-query rewrites, and ``finish`` is an
elementwise strictly monotone (non-decreasing) map.  Because ``finish``
is monotone and ``offset`` is constant per query, ranking items by the
*reduced* score ``q·x + b`` is ranking them by the exact score — so a
candidate index can select on the cheap linear form and only apply
``finish`` to the handful of candidates it returns.

Reduction table (d' is the reduced width; derivations in
``docs/RETRIEVAL.md``):

| score_fn            | x(i)                                   | b(i)        | q(u)                               | finish(r)              |
|---------------------|----------------------------------------|-------------|------------------------------------|------------------------|
| ``dot``             | item                                   | 0           | user                               | r                      |
| ``dot_bias``        | item                                   | item_bias   | user                               | r                      |
| ``dot_aspect``      | [item, item_aspect]                    | 0           | [user, w·user_aspect]              | r                      |
| ``neg_sq_euclid``   | item                                   | -‖item‖²    | 2·user                             | r  (offset = -‖u‖²)    |
| ``neg_sq_lorentz``  | item                                   | 0           | [-u₀, u₁…]                         | -arccosh(max(-r,1))²   |
| ``two_channel_euclid`` | [i_ir, i_tg, ‖i_ir‖², ‖i_tg‖²]      | 0           | [2u_ir, 2αu_tg, -1, -α]            | r  (offset per user)   |

``two_channel_lorentz`` (two coupled arccosh chains with a per-user
mixing weight) and ``dense`` (the artifact *is* the score matrix; there
is nothing to factor) raise :class:`ReductionUnsupported` — a typed
signal the indexes catch to fall back to exact scoring, recorded in
their provenance.

Everything here routes matmul/norm/arccosh through
:func:`repro.backend.get_backend` — the backend-discipline lint rule
covers ``repro.retrieval.*`` exactly like the frozen scorers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..backend import get_backend

__all__ = ["Reduction", "ReductionUnsupported", "reduce_score_fn", "reducible_score_fns"]


class ReductionUnsupported(Exception):
    """The score-fn has no inner-product-plus-bias form.

    Carries the score-fn id and a human-readable reason; candidate
    indexes catch this and fall back to exact scoring (recording the
    fallback in their provenance) instead of guessing.
    """

    def __init__(self, score_fn: str, reason: str):
        self.score_fn = score_fn
        self.reason = reason
        super().__init__(f"score_fn {score_fn!r} has no reduced form: {reason}")


@dataclass
class Reduction:
    """One score-fn factored as ``finish(q·x + b) + offset``.

    ``item_vectors`` (``(n_items, d')`` float64, C-contiguous) and
    ``item_bias`` (``(n_items,)``) are the precomputed item side; they
    are immutable once built and safe to share across threads.
    """

    score_fn: str
    item_vectors: np.ndarray
    item_bias: np.ndarray
    _query: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]] = field(repr=False)
    _finish: Callable[[np.ndarray], np.ndarray] = field(repr=False)
    monotone: str = "strict"

    @property
    def n_items(self) -> int:
        return int(self.item_vectors.shape[0])

    @property
    def reduced_dim(self) -> int:
        return int(self.item_vectors.shape[1])

    def query(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(Q, offsets)``: reduced query rows + per-user score offsets.

        ``Q`` is ``(len(users), d')``; ``offsets`` is ``(len(users),)``
        and is added *after* ``finish`` to recover exact score values.
        """
        users = np.asarray(users, dtype=np.int64)
        return self._query(users)

    def reduced_scores(
        self, queries: np.ndarray, lo: int = 0, hi: int | None = None
    ) -> np.ndarray:
        """``(m, hi-lo)`` reduced scores of query rows against an item slice.

        Single-row queries are padded to a two-row batch (duplicate row,
        first row kept) for the same reason :class:`FrozenScorer` pads:
        BLAS dispatches a GEMV kernel for one-row products whose
        reduction order differs from GEMM in the last bits, and index
        queries must rank by the same bits as batched exact scoring.
        """
        hi = self.n_items if hi is None else hi
        xp = get_backend()
        block = self.item_vectors[lo:hi]
        if queries.shape[0] == 1:
            out = xp.matmul(np.repeat(queries, 2, axis=0), block.T)[:1]
        else:
            out = xp.matmul(queries, block.T)
        return out + self.item_bias[lo:hi][None, :]

    def finish(self, reduced: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Map reduced scores to exact score values (monotone + offset)."""
        out = self._finish(np.asarray(reduced, dtype=np.float64))
        return out + np.asarray(offsets, dtype=np.float64)[..., None]


def _identity(reduced: np.ndarray) -> np.ndarray:
    return reduced


def _finish_neg_sq_lorentz(reduced: np.ndarray) -> np.ndarray:
    # reduced = ⟨u, v⟩_L = spatial - time; the frozen kernel computes
    # d = arccosh(max(time - spatial, 1)) and returns -d².  Strictly
    # decreasing in -reduced ⇒ strictly increasing in reduced wherever
    # the clamp is inactive; on the hyperboloid -⟨u,v⟩_L = cosh(d) >= 1
    # with equality only at u == v, so the flat clamped region is a
    # single point per query.
    xp = get_backend()
    d = xp.arccosh(np.maximum(-reduced, 1.0))
    return -(d * d)


def _row_sq_norms(x: np.ndarray) -> np.ndarray:
    return (x * x).sum(axis=1)


def _as_f64(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(x, dtype=np.float64))


def _reduce_dot(arrays: dict) -> Reduction:
    item = _as_f64(arrays["item"])
    user = arrays["user"]

    def query(users):
        q = np.asarray(user[users], dtype=np.float64)
        return q, np.zeros(len(users), dtype=np.float64)

    return Reduction("dot", item, np.zeros(item.shape[0]), query, _identity)


def _reduce_dot_bias(arrays: dict) -> Reduction:
    item = _as_f64(arrays["item"])
    bias = _as_f64(arrays["item_bias"])
    user = arrays["user"]

    def query(users):
        q = np.asarray(user[users], dtype=np.float64)
        return q, np.zeros(len(users), dtype=np.float64)

    return Reduction("dot_bias", item, bias, query, _identity)


def _reduce_dot_aspect(arrays: dict) -> Reduction:
    item = np.concatenate(
        [_as_f64(arrays["item"]), _as_f64(arrays["item_aspect"])], axis=1
    )
    item = np.ascontiguousarray(item)
    user, user_aspect = arrays["user"], arrays["user_aspect"]
    weight = float(arrays["aspect_weight"])

    def query(users):
        q = np.concatenate(
            [
                np.asarray(user[users], dtype=np.float64),
                weight * np.asarray(user_aspect[users], dtype=np.float64),
            ],
            axis=1,
        )
        return q, np.zeros(len(users), dtype=np.float64)

    return Reduction("dot_aspect", item, np.zeros(item.shape[0]), query, _identity)


def _reduce_neg_sq_euclid(arrays: dict) -> Reduction:
    item = _as_f64(arrays["item"])
    bias = -_row_sq_norms(item)
    user = arrays["user"]

    def query(users):
        u = np.asarray(user[users], dtype=np.float64)
        return 2.0 * u, -_row_sq_norms(u)

    return Reduction("neg_sq_euclid", item, bias, query, _identity)


def _reduce_neg_sq_lorentz(arrays: dict) -> Reduction:
    item = _as_f64(arrays["item"])
    user = arrays["user"]

    def query(users):
        q = np.asarray(user[users], dtype=np.float64).copy()
        q[:, 0] = -q[:, 0]  # fold -u₀v₀ into the matmul: q·v = ⟨u, v⟩_L
        return q, np.zeros(len(users), dtype=np.float64)

    return Reduction(
        "neg_sq_lorentz",
        item,
        np.zeros(item.shape[0]),
        query,
        _finish_neg_sq_lorentz,
        monotone="strict-below-clamp",
    )


def _reduce_two_channel_euclid(arrays: dict) -> Reduction:
    item_ir = _as_f64(arrays["item_ir"])
    item_tg = _as_f64(arrays["item_tg"])
    item = np.concatenate(
        [
            item_ir,
            item_tg,
            _row_sq_norms(item_ir)[:, None],
            _row_sq_norms(item_tg)[:, None],
        ],
        axis=1,
    )
    item = np.ascontiguousarray(item)
    user_ir, user_tg, alpha = arrays["user_ir"], arrays["user_tg"], arrays["alpha"]

    def query(users):
        u_ir = np.asarray(user_ir[users], dtype=np.float64)
        u_tg = np.asarray(user_tg[users], dtype=np.float64)
        a = np.asarray(alpha[users], dtype=np.float64)
        q = np.concatenate(
            [2.0 * u_ir, 2.0 * a[:, None] * u_tg, -np.ones((len(users), 1)), -a[:, None]],
            axis=1,
        )
        offsets = -(_row_sq_norms(u_ir) + a * _row_sq_norms(u_tg))
        return q, offsets

    return Reduction("two_channel_euclid", item, np.zeros(item.shape[0]), query, _identity)


_BUILDERS: dict[str, Callable[[dict], Reduction]] = {
    "dot": _reduce_dot,
    "dot_bias": _reduce_dot_bias,
    "dot_aspect": _reduce_dot_aspect,
    "neg_sq_euclid": _reduce_neg_sq_euclid,
    "neg_sq_lorentz": _reduce_neg_sq_lorentz,
    "two_channel_euclid": _reduce_two_channel_euclid,
}

_UNSUPPORTED: dict[str, str] = {
    "two_channel_lorentz": (
        "two coupled arccosh chains mixed by a per-user alpha; the sum of "
        "two monotone maps of two different inner products is not itself a "
        "monotone map of any single inner product"
    ),
    "dense": "the artifact is the score matrix; there is no factored form",
}


def reducible_score_fns() -> tuple[str, ...]:
    """Score-fn ids with a registered reduction, in registration order."""
    return tuple(_BUILDERS)


def reduce_score_fn(score_fn: str, arrays: dict) -> Reduction:
    """Build the :class:`Reduction` for one frozen payload.

    Raises :class:`ReductionUnsupported` for score-fns with no factored
    form (``two_channel_lorentz``, ``dense``) and for ids this build does
    not know — an unknown id is by definition unreduced.
    """
    builder = _BUILDERS.get(score_fn)
    if builder is not None:
        return builder(arrays)
    reason = _UNSUPPORTED.get(score_fn, "score_fn not registered in this build")
    raise ReductionUnsupported(score_fn, reason)
