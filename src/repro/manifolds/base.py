"""Manifold interface shared by the Euclidean, Poincaré and Lorentz models.

Each manifold exposes two families of operations:

* **NumPy-level** methods (suffix ``_np`` or operating on raw arrays) used by
  the Riemannian optimiser and the clustering code, where no gradient flows
  *through* the operation itself.
* **Differentiable** methods operating on :class:`repro.autodiff.Tensor`,
  used inside loss functions (distances, exponential/logarithmic maps).
"""

from __future__ import annotations

import abc

import numpy as np

from ..autodiff import Tensor

__all__ = ["Manifold"]


class Manifold(abc.ABC):
    """Abstract Riemannian manifold used for embedding optimisation."""

    name: str = "abstract"

    # -- constraints ----------------------------------------------------
    @abc.abstractmethod
    def proj(self, x: np.ndarray) -> np.ndarray:
        """Project points back onto the manifold (returns a new array)."""

    @abc.abstractmethod
    def random(self, shape: tuple[int, ...], rng: np.random.Generator, scale: float = 1e-2) -> np.ndarray:
        """Sample initial points near the origin of the manifold."""

    # -- optimisation ---------------------------------------------------
    @abc.abstractmethod
    def egrad2rgrad(self, x: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        """Convert a Euclidean gradient at ``x`` into a Riemannian gradient."""

    @abc.abstractmethod
    def expmap_np(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Exponential map: move from ``x`` along tangent vector ``v``."""

    def retract(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """First-order retraction; defaults to expmap followed by projection."""
        return self.proj(self.expmap_np(x, v))

    # -- geometry -------------------------------------------------------
    @abc.abstractmethod
    def dist(self, x: Tensor, y: Tensor) -> Tensor:
        """Differentiable geodesic distance along the last axis."""

    def dist_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Geodesic distance on raw arrays (no graph is recorded)."""
        return self.dist(Tensor(x), Tensor(y)).data

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
