"""Manifold interface shared by the Euclidean, Poincaré and Lorentz models.

Each manifold exposes two families of operations:

* **NumPy-level** methods (suffix ``_np`` or operating on raw arrays) used by
  the Riemannian optimiser and the clustering code, where no gradient flows
  *through* the operation itself.
* **Differentiable** methods operating on :class:`repro.autodiff.Tensor`,
  used inside loss functions (distances, exponential/logarithmic maps).
"""

from __future__ import annotations

import abc
import os

import numpy as np

from ..autodiff import Tensor

__all__ = ["Manifold", "ManifoldCheckError", "manifold_checks_enabled"]


class ManifoldCheckError(ValueError):
    """A point failed its manifold's runtime contract check."""


def manifold_checks_enabled() -> bool:
    """Whether ``REPRO_CHECK_MANIFOLD`` turns on runtime point validation."""
    return os.environ.get("REPRO_CHECK_MANIFOLD", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


class Manifold(abc.ABC):
    """Abstract Riemannian manifold used for embedding optimisation."""

    name: str = "abstract"

    # -- constraints ----------------------------------------------------
    @abc.abstractmethod
    def proj(self, x: np.ndarray) -> np.ndarray:
        """Project points back onto the manifold (returns a new array)."""

    @abc.abstractmethod
    def random(self, shape: tuple[int, ...], rng: np.random.Generator, scale: float = 1e-2) -> np.ndarray:
        """Sample initial points near the origin of the manifold."""

    # -- optimisation ---------------------------------------------------
    @abc.abstractmethod
    def egrad2rgrad(self, x: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        """Convert a Euclidean gradient at ``x`` into a Riemannian gradient."""

    @abc.abstractmethod
    def expmap_np(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Exponential map: move from ``x`` along tangent vector ``v``."""

    def retract(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """First-order retraction; defaults to expmap followed by projection."""
        return self.proj(self.expmap_np(x, v))

    # -- runtime contracts ----------------------------------------------
    def check_point(self, x: np.ndarray, *, atol: float = 1e-6, force: bool = False) -> np.ndarray:
        """Validate that ``x`` satisfies the manifold's point invariant.

        A debug-mode contract check: a no-op unless the environment variable
        ``REPRO_CHECK_MANIFOLD`` is set (to anything but ``0``/``false``/
        ``off``) or ``force=True``.  When active, raises
        :class:`ManifoldCheckError` naming the manifold and the worst
        offending value; otherwise returns ``x`` unchanged, so call sites can
        wrap expressions: ``emb = manifold.check_point(manifold.proj(raw))``.
        """
        if not (force or manifold_checks_enabled()):
            return x
        arr = np.asarray(x, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            raise ManifoldCheckError(f"{self.name}: point contains non-finite values")
        problem = self._point_violation(arr, atol)
        if problem is not None:
            raise ManifoldCheckError(f"{self.name}: {problem}")
        return x

    def _point_violation(self, x: np.ndarray, atol: float) -> str | None:
        """Subclass hook: a description of the violated invariant, or None."""
        return None

    # -- geometry -------------------------------------------------------
    @abc.abstractmethod
    def dist(self, x: Tensor, y: Tensor) -> Tensor:
        """Differentiable geodesic distance along the last axis."""

    def dist_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Geodesic distance on raw arrays (no graph is recorded)."""
        return self.dist(Tensor(x), Tensor(y)).data

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
