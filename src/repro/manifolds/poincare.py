"""Poincaré ball model of hyperbolic space (curvature -1).

Implements the distance of paper §III-B, Möbius addition and the Möbius
exponential map of Eqs. 21–22, and the Riemannian gradient rescaling used by
RSGD on the ball (Nickel & Kiela 2017).
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff import Tensor
from ..backend import get_backend
from .base import Manifold

# Keep points strictly inside the unit ball; the distance blows up at the
# boundary and float64 loses all precision there.
from .constants import BOUNDARY_EPS as _BOUNDARY_EPS

__all__ = ["PoincareBall"]


class PoincareBall(Manifold):
    """The open unit ball with metric g_x = (2 / (1 - ||x||^2))^2 I."""

    name = "poincare"

    # ------------------------------------------------------------------
    # Constraints and sampling
    # ------------------------------------------------------------------
    def proj(self, x: np.ndarray) -> np.ndarray:
        """Pull points outside radius 1-ε back onto that shell."""
        return get_backend().poincare_proj(x)

    def random(self, shape, rng: np.random.Generator, scale: float = 1e-2) -> np.ndarray:
        """Sample points with *typical radius* ``scale`` (not per-coordinate
        std — in high dimension that would land everything on the boundary,
        where distances saturate and gradients explode)."""
        d = shape[-1]
        return self.proj(rng.normal(0.0, scale / math.sqrt(d), size=shape))

    def _point_violation(self, x: np.ndarray, atol: float) -> str | None:
        """Points must stay strictly inside the open unit ball."""
        max_norm = float(np.max(get_backend().norm(x, axis=-1), initial=0.0))
        if max_norm >= 1.0:
            return f"point norm {max_norm:.17g} is outside the open unit ball"
        return None

    # ------------------------------------------------------------------
    # Optimisation
    # ------------------------------------------------------------------
    def egrad2rgrad(self, x: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        """Rescale by the inverse metric ((1 - ||x||^2) / 2)^2 (Eq. 20 context)."""
        sq_norm = np.sum(x * x, axis=-1, keepdims=True)
        factor = ((1.0 - sq_norm) / 2.0) ** 2
        return factor * egrad

    def mobius_add_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Möbius addition x ⊕ y (Eq. 22) on raw arrays."""
        return get_backend().mobius_add(x, y)

    def expmap_np(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Möbius exponential map exp_x(v) = x ⊕ (tanh(||v||/2) v/||v||) (Eq. 21).

        The paper applies this form to the Riemannian gradient, which already
        carries the conformal factor from :meth:`egrad2rgrad`.
        """
        return get_backend().poincare_expmap(x, v)

    # ------------------------------------------------------------------
    # Geometry (differentiable)
    # ------------------------------------------------------------------
    def dist(self, x: Tensor, y: Tensor) -> Tensor:
        """Poincaré distance d_P(x, y) (paper §III-B), along the last axis."""
        diff_sq = ((x - y) ** 2).sum(axis=-1)
        x_sq = (x * x).sum(axis=-1)
        y_sq = (y * y).sum(axis=-1)
        denom_x = (1.0 - x_sq).clamp(min_value=_BOUNDARY_EPS)
        denom_y = (1.0 - y_sq).clamp(min_value=_BOUNDARY_EPS)
        arg = 1.0 + 2.0 * diff_sq / (denom_x * denom_y)
        return arg.arcosh()

    def dist_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Poincaré distance on raw arrays."""
        return get_backend().poincare_dist(x, y)

    def dist_matrix_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pairwise distances between ``(n, d)`` and ``(m, d)`` point sets.

        Uses the Gram-matrix expansion ``||x - y||² = ||x||² - 2⟨x, y⟩ +
        ||y||²`` so the whole matrix is one matmul instead of an
        ``(n, m, d)`` broadcast.  The expansion can go negative by a few
        ulp for (near-)coincident points, so it is clamped at zero; for
        such pairs the absolute error against the direct form is ≤ ~1e-8
        (arccosh near 1 amplifies square-root-of-eps), while well-separated
        pairs agree to better than 1e-10.
        """
        return get_backend().poincare_dist_matrix(x, y)

    def dist_matrix_reference_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Broadcast twin of :meth:`dist_matrix_np` (correctness anchor).

        Deliberately *not* routed through the backend: this is the pinned
        pure-NumPy anchor the differential suite compares every backend
        against, so it inlines the direct broadcast form.
        """
        xb = x[:, None, :]
        yb = y[None, :, :]
        diff_sq = np.sum((xb - yb) ** 2, axis=-1)
        x_sq = np.sum(xb * xb, axis=-1)
        y_sq = np.sum(yb * yb, axis=-1)
        denom = np.maximum(1.0 - x_sq, _BOUNDARY_EPS) * np.maximum(1.0 - y_sq, _BOUNDARY_EPS)
        arg = 1.0 + 2.0 * diff_sq / denom
        return np.arccosh(np.maximum(arg, 1.0))

    # ------------------------------------------------------------------
    # Origin maps (handy for initialisation and tests)
    # ------------------------------------------------------------------
    def expmap0_np(self, v: np.ndarray) -> np.ndarray:
        """exp_0(v) = tanh(||v||) v / ||v|| — maps tangent at origin into the ball."""
        return get_backend().poincare_expmap0(v)

    def logmap0_np(self, x: np.ndarray) -> np.ndarray:
        """log_0(x) = artanh(||x||) x / ||x|| — inverse of :meth:`expmap0_np`."""
        return get_backend().poincare_logmap0(x)
