"""Flat Euclidean manifold — used by every Euclidean-space baseline."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from .base import Manifold
from .constants import MIN_NORM as _MIN_NORM

__all__ = ["Euclidean"]


class Euclidean(Manifold):
    """R^d with the identity metric; all operations are trivial."""

    name = "euclidean"

    def proj(self, x: np.ndarray) -> np.ndarray:
        """Identity (every point is on the manifold)."""
        return np.asarray(x, dtype=np.float64)

    def random(self, shape, rng: np.random.Generator, scale: float = 1e-2) -> np.ndarray:
        """Gaussian points with per-coordinate std ``scale``."""
        return rng.normal(0.0, scale, size=shape)

    def egrad2rgrad(self, x: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        """Identity (flat metric)."""
        return egrad

    def expmap_np(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Straight-line step x + v."""
        return x + v

    def dist(self, x: Tensor, y: Tensor) -> Tensor:
        """Euclidean (L2) distance along the last axis."""
        return (x - y).norm(axis=-1, eps=_MIN_NORM)
