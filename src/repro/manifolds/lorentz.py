"""Lorentz (hyperboloid) model of hyperbolic space (curvature -1).

Points are (d+1)-vectors with <x, x>_L = -1 and x_0 > 0, where
<x, y>_L = -x_0 y_0 + sum_i x_i y_i.  The paper optimises user/item
embeddings here because the closed-form geodesics avoid the numerical
instabilities of the Poincaré distance near the boundary (§III-B, §IV-E).

Note the paper's §III-B states the constraint as <x, x>_L = 1; the standard
hyperboloid (and the formulae the paper actually uses, e.g. d_H =
arcosh(-<x,y>_L)) require <x, x>_L = -1, which is what we implement.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..backend import get_backend
from .base import Manifold
from .constants import MAX_TANH_ARG as _MAX_TANH_ARG
from .constants import MIN_NORM as _MIN_NORM

__all__ = ["Lorentz"]


class Lorentz(Manifold):
    """The upper sheet of the hyperboloid H^d in R^{d+1}."""

    name = "lorentz"

    # ------------------------------------------------------------------
    # Lorentzian algebra (NumPy)
    # ------------------------------------------------------------------
    @staticmethod
    def inner_np(x: np.ndarray, y: np.ndarray, keepdims: bool = False) -> np.ndarray:
        """Lorentzian scalar product <x, y>_L along the last axis."""
        return get_backend().lorentz_inner(x, y, keepdims=keepdims)

    def proj(self, x: np.ndarray) -> np.ndarray:
        """Re-normalise the time coordinate: x_0 = sqrt(1 + ||x_{1:}||^2)."""
        return get_backend().lorentz_proj(x)

    def proj_tangent(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Project ``v`` onto the tangent space at ``x``: v + <x, v>_L x."""
        return v + self.inner_np(x, v, keepdims=True) * x

    def random(self, shape, rng: np.random.Generator, scale: float = 1e-2) -> np.ndarray:
        """Sample near the origin o = (1, 0, ..., 0); ``shape`` includes d+1."""
        x = rng.normal(0.0, scale, size=shape)
        x[..., 0] = 0.0
        return self.proj(x)

    @staticmethod
    def origin(dim: int) -> np.ndarray:
        """The hyperboloid origin o = (1, 0, ..., 0) in R^{dim+1}."""
        o = np.zeros(dim + 1, dtype=np.float64)
        o[0] = 1.0
        return o

    def _point_violation(self, x: np.ndarray, atol: float) -> str | None:
        """Points must satisfy <x, x>_L = -1 (curvature -1) with x_0 > 0."""
        inner = self.inner_np(x, x)
        worst = float(np.max(np.abs(inner + 1.0), initial=0.0))
        if worst > atol:
            return f"<x, x>_L deviates from -1 by {worst:.3g} (atol={atol:.3g})"
        min_time = float(np.min(x[..., 0], initial=np.inf))
        if min_time <= 0.0:
            return f"time coordinate {min_time:.17g} is not on the upper sheet"
        return None

    # ------------------------------------------------------------------
    # Optimisation
    # ------------------------------------------------------------------
    def egrad2rgrad(self, x: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        """Flip the time component by the metric, then project to the tangent.

        grad = proj_x(g^{-1} ∇) with g = diag(-1, 1, ..., 1) (Eq. 20 in the
        Lorentz setting, cf. Nickel & Kiela 2018).
        """
        h = egrad.copy()
        h[..., 0] = -h[..., 0]
        return self.proj_tangent(x, h)

    def expmap_np(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """exp_x(v) = cosh(||v||_L) x + sinh(||v||_L) v / ||v||_L (Eq. 23)."""
        return get_backend().lorentz_expmap(x, v)

    # ------------------------------------------------------------------
    # Geometry (differentiable)
    # ------------------------------------------------------------------
    @staticmethod
    def inner(x: Tensor, y: Tensor, keepdims: bool = False) -> Tensor:
        prod = x * y
        time = prod[..., :1]
        space = prod[..., 1:]
        out = space.sum(axis=-1, keepdims=True) - time
        if keepdims:
            return out
        return out.sum(axis=-1)

    def dist(self, x: Tensor, y: Tensor) -> Tensor:
        """d_H(x, y) = arcosh(-<x, y>_L) (paper §III-B)."""
        return (-self.inner(x, y)).arcosh()

    def sq_dist(self, x: Tensor, y: Tensor) -> Tensor:
        """Squared geodesic distance, used in the similarity g(u, v) (Eq. 17)."""
        d = self.dist(x, y)
        return d * d

    def dist_np(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Geodesic distance on raw arrays."""
        return get_backend().lorentz_dist(x, y)

    # ------------------------------------------------------------------
    # Origin log/exp maps (Eqs. 12 and 15)
    # ------------------------------------------------------------------
    def logmap0(self, x: Tensor) -> Tensor:
        """log_o(x) as a *spatial* d-vector (the time component is zero).

        At the origin o = (1, 0, ..., 0), Eq. 12 reduces to
        z = arcosh(x_0) * x_{1:} / ||x_{1:}||.  Since hyperboloid points
        satisfy x_0^2 - ||x_{1:}||^2 = 1, arcosh(x_0) = arsinh(||x_{1:}||),
        and the arsinh form is the one computed here: it stays accurate for
        points near the origin, where arcosh(x_0 ≈ 1) loses half the
        mantissa to cancellation (a one-ulp rounding of x_0 shifts the
        result by ~1e-8).
        """
        spatial = x[..., 1:]
        sp_norm = spatial.norm(axis=-1, keepdims=True, eps=_MIN_NORM)
        scale = sp_norm.arsinh() / sp_norm
        return spatial * scale

    def expmap0(self, z: Tensor) -> Tensor:
        """exp_o(z) for a spatial tangent vector z (Eq. 15).

        Returns the full (d+1)-dimensional hyperboloid point
        (cosh ||z||, sinh ||z|| z / ||z||).
        """
        norm = z.norm(axis=-1, keepdims=True, eps=_MIN_NORM)
        clipped = norm.clamp(max_value=_MAX_TANH_ARG)
        time = clipped.cosh()
        spatial = clipped.sinh() * z / norm
        return concat([time, spatial], axis=-1)

    def logmap0_np(self, x: np.ndarray) -> np.ndarray:
        """NumPy twin of :meth:`logmap0` (same arsinh form, same guard)."""
        return get_backend().lorentz_logmap0(x)

    def expmap0_np(self, z: np.ndarray) -> np.ndarray:
        """NumPy twin of :meth:`expmap0`.

        The backend kernel uses the same guarded norm as the Tensor path —
        ``sqrt(||z||^2 + MIN_NORM)`` — so the divisor is floored
        identically and the two implementations agree to the last ulp.
        """
        return get_backend().lorentz_expmap0(z)
