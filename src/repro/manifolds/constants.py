"""Numerical guard constants (compatibility re-export).

The canonical home of every guard epsilon is now
``repro.backend.constants`` — the backend kernels sit *below* the
manifold layer and need the same guards, so the constants moved to the
bottom of the import stack.  This module re-exports every name so the
historical import path (``repro.manifolds.constants``) keeps working for
models, taxonomy, optimisers and external callers.

See ``repro/backend/constants.py`` for values and rationale; the
``magic-epsilon`` lint rule treats that file as the single allowed home
for literal guards.
"""

from __future__ import annotations

from ..backend.constants import (  # noqa: F401
    BOUNDARY_EPS,
    DIV_EPS,
    EPS,
    LOG_EPS,
    MAX_TANH_ARG,
    MIN_NORM,
    MULT_UPDATE_EPS,
)

__all__ = [
    "EPS",
    "MIN_NORM",
    "BOUNDARY_EPS",
    "MAX_TANH_ARG",
    "LOG_EPS",
    "DIV_EPS",
    "MULT_UPDATE_EPS",
]
