"""Diffeomorphisms between the Poincaré, Lorentz and Klein models.

Implements the paper's Eqs. 2 (Lorentz → Poincaré), 3 (Poincaré → Lorentz),
9 (Poincaré → Klein) and the inverse Klein → Poincaré map used inside the
local aggregation (Eq. 11).  All three models are isometric; these maps let
the framework cluster in Poincaré, aggregate in Klein and optimise the
recommendation loss in Lorentz coordinates.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..backend import get_backend
from .constants import EPS as _EPS

__all__ = [
    "lorentz_to_poincare",
    "poincare_to_lorentz",
    "poincare_to_klein",
    "klein_to_poincare",
    "lorentz_to_poincare_np",
    "poincare_to_lorentz_np",
    "poincare_to_klein_np",
    "klein_to_poincare_np",
]


# ----------------------------------------------------------------------
# Differentiable (Tensor) versions
# ----------------------------------------------------------------------
def lorentz_to_poincare(x: Tensor) -> Tensor:
    """p(x) = x_{1:} / (x_0 + 1) (Eq. 2)."""
    return x[..., 1:] / (x[..., :1] + 1.0)


def poincare_to_lorentz(x: Tensor) -> Tensor:
    """p^{-1}(x) = (1 + ||x||^2, 2x) / (1 - ||x||^2) (Eq. 3)."""
    sq = (x * x).sum(axis=-1, keepdims=True)
    denom = (1.0 - sq).clamp(min_value=_EPS)
    time = (1.0 + sq) / denom
    spatial = 2.0 * x / denom
    return concat([time, spatial], axis=-1)


def poincare_to_klein(x: Tensor) -> Tensor:
    """k = 2x / (1 + ||x||^2) (Eq. 9)."""
    sq = (x * x).sum(axis=-1, keepdims=True)
    return 2.0 * x / (1.0 + sq)


def klein_to_poincare(x: Tensor) -> Tensor:
    """p = x / (1 + sqrt(1 - ||x||^2)) — inverse of Eq. 9, used in Eq. 11."""
    sq = (x * x).sum(axis=-1, keepdims=True)
    root = (1.0 - sq).clamp(min_value=0.0).sqrt()
    return x / (1.0 + root)


# ----------------------------------------------------------------------
# NumPy versions (backend-routed)
# ----------------------------------------------------------------------
def lorentz_to_poincare_np(x: np.ndarray) -> np.ndarray:
    """NumPy twin of :func:`lorentz_to_poincare`."""
    return get_backend().lorentz_to_poincare(x)


def poincare_to_lorentz_np(x: np.ndarray) -> np.ndarray:
    """NumPy twin of :func:`poincare_to_lorentz`."""
    return get_backend().poincare_to_lorentz(x)


def poincare_to_klein_np(x: np.ndarray) -> np.ndarray:
    """NumPy twin of :func:`poincare_to_klein`."""
    return get_backend().poincare_to_klein(x)


def klein_to_poincare_np(x: np.ndarray) -> np.ndarray:
    """NumPy twin of :func:`klein_to_poincare`."""
    return get_backend().klein_to_poincare(x)
