"""Klein model utilities: Einstein-midpoint aggregation (Eqs. 1 and 10).

The Klein model is used purely as a computational device: weighted means of
hyperbolic points have the closed-form Einstein midpoint in Klein
coordinates, so TaxoRec's local aggregation maps Poincaré tag embeddings to
Klein, averages there, and maps back (paper §IV-D).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..backend import get_backend
from .base import ManifoldCheckError, manifold_checks_enabled
from .constants import EPS as _EPS

__all__ = [
    "lorentz_factor",
    "einstein_midpoint",
    "einstein_midpoint_batch",
    "einstein_midpoint_batch_reference_np",
    "einstein_midpoint_np",
    "check_klein_point",
]


def check_klein_point(x: np.ndarray, *, force: bool = False) -> np.ndarray:
    """Debug-mode contract check: Klein points live in the open unit ball.

    Like :meth:`repro.manifolds.base.Manifold.check_point`, a no-op unless
    ``REPRO_CHECK_MANIFOLD`` is set or ``force=True``.
    """
    if not (force or manifold_checks_enabled()):
        return x
    arr = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ManifoldCheckError("klein: point contains non-finite values")
    max_norm = float(np.max(get_backend().norm(arr, axis=-1), initial=0.0))
    if max_norm >= 1.0:
        raise ManifoldCheckError(
            f"klein: point norm {max_norm:.17g} is outside the open unit ball"
        )
    return x


def lorentz_factor(x: Tensor) -> Tensor:
    """γ(x) = 1 / sqrt(1 - ||x||^2) for Klein-model points (Eq. 1)."""
    sq = (x * x).sum(axis=-1, keepdims=True)
    return 1.0 / (1.0 - sq).clamp(min_value=_EPS).sqrt()


def einstein_midpoint(points: Tensor, weights: Tensor) -> Tensor:
    """Weighted Einstein midpoint of Klein-model points (Eq. 10).

    Parameters
    ----------
    points:
        ``(n, d)`` Klein coordinates.
    weights:
        ``(n,)`` non-negative weights ψ (e.g. an item's row of the item-tag
        matrix).  Rows with zero weight do not contribute.

    Returns
    -------
    Tensor
        ``(d,)`` Klein coordinates of the midpoint.
    """
    gamma = lorentz_factor(points)[..., 0]
    w = gamma * weights
    denom = w.sum().clamp(min_value=_EPS)
    return (points * w.reshape(-1, 1)).sum(axis=0) / denom


def einstein_midpoint_batch(points: Tensor, weights: Tensor) -> Tensor:
    """Batched Einstein midpoint.

    Parameters
    ----------
    points:
        ``(n, d)`` Klein coordinates shared across the batch (the tag table).
    weights:
        ``(b, n)`` per-row weights (e.g. the item-tag matrix ψ).

    Returns
    -------
    Tensor
        ``(b, d)`` midpoints, one per weight row.
    """
    gamma = lorentz_factor(points)[..., 0]  # (n,)
    w = weights * gamma.reshape(1, -1)  # (b, n)
    denom = w.sum(axis=-1, keepdims=True).clamp(min_value=_EPS)
    return (w @ points) / denom


def einstein_midpoint_batch_reference_np(
    points: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Row-by-row twin of :func:`einstein_midpoint_batch` on raw arrays.

    The batched version computes all midpoints in one matmul; this loops
    :func:`einstein_midpoint_np` over the ``(b, n)`` weight rows and exists
    as the correctness anchor for the differential tests and benchmarks.
    """
    return np.stack([einstein_midpoint_np(points, w) for w in weights])


def einstein_midpoint_np(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """NumPy Einstein midpoint for ``(n, d)`` points and ``(n,)`` weights."""
    return get_backend().einstein_midpoint(points, weights)
