"""Hyperbolic geometry substrate: Poincaré, Lorentz, Klein models and maps."""

from . import constants
from .base import Manifold, ManifoldCheckError
from .euclidean import Euclidean
from .klein import (
    check_klein_point,
    einstein_midpoint,
    einstein_midpoint_batch,
    einstein_midpoint_batch_reference_np,
    einstein_midpoint_np,
    lorentz_factor,
)
from .lorentz import Lorentz
from .maps import (
    klein_to_poincare,
    klein_to_poincare_np,
    lorentz_to_poincare,
    lorentz_to_poincare_np,
    poincare_to_klein,
    poincare_to_klein_np,
    poincare_to_lorentz,
    poincare_to_lorentz_np,
)
from .poincare import PoincareBall

__all__ = [
    "constants",
    "Manifold",
    "ManifoldCheckError",
    "Euclidean",
    "PoincareBall",
    "Lorentz",
    "lorentz_factor",
    "check_klein_point",
    "einstein_midpoint",
    "einstein_midpoint_batch",
    "einstein_midpoint_batch_reference_np",
    "einstein_midpoint_np",
    "lorentz_to_poincare",
    "poincare_to_lorentz",
    "poincare_to_klein",
    "klein_to_poincare",
    "lorentz_to_poincare_np",
    "poincare_to_lorentz_np",
    "poincare_to_klein_np",
    "klein_to_poincare_np",
]
