"""Evaluation: full-ranking metrics, protocol runner, significance tests."""

from .evaluator import EvalResult, evaluate, evaluate_reference, held_out_positives, topk_ranking
from .protocol import ExperimentResult, run_experiment, run_model
from .metrics import (
    ndcg_at_k,
    ndcg_at_k_reference,
    rank_topk,
    rank_topk_reference,
    recall_at_k,
    recall_at_k_reference,
)
from .significance import wilcoxon_improvement
from .slices import catalog_coverage, evaluate_by_item_coldness, mean_popularity_rank, metrics_at

__all__ = [
    "EvalResult",
    "evaluate",
    "evaluate_reference",
    "ExperimentResult",
    "run_experiment",
    "run_model",
    "held_out_positives",
    "topk_ranking",
    "recall_at_k",
    "ndcg_at_k",
    "rank_topk",
    "recall_at_k_reference",
    "ndcg_at_k_reference",
    "rank_topk_reference",
    "wilcoxon_improvement",
    "metrics_at",
    "evaluate_by_item_coldness",
    "catalog_coverage",
    "mean_popularity_rank",
]
