"""End-to-end experiment runner: model × dataset × seeds → mean ± std.

This is the machinery behind every benchmark table: it generates a preset,
splits temporally, trains a registered model with its tuned configuration,
and reports test metrics aggregated over seeds (the ± entries of Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import Split, load_preset, temporal_split
from ..utils import get_logger
from .evaluator import EvalResult, evaluate

__all__ = ["ExperimentResult", "run_model", "run_experiment"]

_LOG = get_logger("repro.protocol")

_METRICS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")


@dataclass
class ExperimentResult:
    """Aggregated test metrics for one (model, dataset) cell."""

    model: str
    dataset: str
    per_seed: list[EvalResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Across-seed mean of one metric."""
        return float(np.mean([getattr(r, metric) for r in self.per_seed]))

    def std(self, metric: str) -> float:
        """Across-seed standard deviation of one metric."""
        return float(np.std([getattr(r, metric) for r in self.per_seed]))

    def values(self, metric: str) -> np.ndarray:
        """Per-seed values of one metric."""
        return np.array([getattr(r, metric) for r in self.per_seed])

    def overall_mean(self) -> float:
        """Mean of the four metrics, averaged over seeds."""
        return float(np.mean([r.mean() for r in self.per_seed]))

    def cell(self, metric: str, percent: bool = True) -> str:
        """Format one Table-II cell as ``mean±std`` (in percent)."""
        scale = 100.0 if percent else 1.0
        if len(self.per_seed) > 1:
            return f"{scale * self.mean(metric):.2f}±{scale * self.std(metric):.2f}"
        return f"{scale * self.mean(metric):.2f}"

    def as_row(self) -> list[str]:
        """Render as one Table-II row."""
        return [self.model] + [self.cell(m) for m in _METRICS]


def run_model(model_name: str, split: Split, config) -> EvalResult:
    """Train one model on a prepared split and evaluate on test."""
    from ..models import create_model

    model = create_model(model_name, split.train, config)
    model.fit(split)
    return evaluate(model, split, on="test")


def run_experiment(
    model_name: str,
    dataset_name: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 1.0,
    epochs: int | None = None,
    **config_overrides,
) -> ExperimentResult:
    """Run one Table-II cell: a model on a preset over several seeds.

    The dataset itself is held fixed across seeds (the paper's datasets are
    fixed); seeds vary initialisation and sampling, which is what the ±
    deviations in Table II measure.
    """
    from ..models.defaults import tuned_config

    dataset = load_preset(dataset_name, scale=scale)
    split = temporal_split(dataset)
    result = ExperimentResult(model=model_name, dataset=dataset_name)
    for seed in seeds:
        config = tuned_config(
            model_name, dataset_name, epochs=epochs, seed=seed, **config_overrides
        )
        res = run_model(model_name, split, config)
        result.per_seed.append(res)
        _LOG.info(
            "%s/%s seed %d: R@10=%.4f N@10=%.4f",
            model_name,
            dataset_name,
            seed,
            res.recall_at_10,
            res.ndcg_at_10,
        )
    return result
