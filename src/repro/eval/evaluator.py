"""Held-out ranking evaluation over a temporal split."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import InteractionDataset, Split
from .metrics import ndcg_at_k, rank_topk, recall_at_k

__all__ = ["EvalResult", "evaluate", "held_out_positives"]


@dataclass
class EvalResult:
    """Recall/NDCG at the paper's two cutoffs."""

    recall_at_10: float
    recall_at_20: float
    ndcg_at_10: float
    ndcg_at_20: float

    def get(self, metric: str) -> float:
        """Look a metric up by paper-style name (e.g. ``\"Recall@10\"``)."""
        key = metric.lower().replace("@", "_at_")
        return getattr(self, key)

    def as_row(self, percent: bool = True) -> list[str]:
        """Render the four metrics as formatted strings."""
        scale = 100.0 if percent else 1.0
        return [
            f"{scale * v:.2f}"
            for v in (self.recall_at_10, self.recall_at_20, self.ndcg_at_10, self.ndcg_at_20)
        ]

    def mean(self) -> float:
        """Mean of the four metrics (the model-selection scalar)."""
        return (self.recall_at_10 + self.recall_at_20 + self.ndcg_at_10 + self.ndcg_at_20) / 4.0


def held_out_positives(dataset: InteractionDataset) -> list[np.ndarray]:
    """Per-user held-out item arrays for a valid/test subset."""
    return dataset.items_of_user()


def evaluate(
    model,
    split: Split,
    on: str = "test",
    ks: tuple[int, int] = (10, 20),
    batch_users: int = 512,
) -> EvalResult:
    """Rank the full catalogue for every user with held-out items.

    Items the user interacted with in *earlier* phases are masked:
    train when evaluating validation; train+validation when evaluating test
    (the standard temporal-protocol masking).

    Parameters
    ----------
    model:
        Object with ``score_users(users) -> (len(users), n_items)`` where
        larger scores mean stronger recommendations.
    split:
        The temporal split.
    on:
        ``"test"`` or ``"valid"``.
    """
    if on not in ("test", "valid"):
        raise ValueError("on must be 'test' or 'valid'")
    target = split.test if on == "test" else split.valid
    positives = held_out_positives(target)

    mask_sets = split.train.items_of_user()
    if on == "test":
        valid_sets = split.valid.items_of_user()
        mask_sets = [np.concatenate([a, b]) for a, b in zip(mask_sets, valid_sets)]

    users = np.array([u for u in range(target.n_users) if len(positives[u])], dtype=np.int64)
    k_max = min(max(ks), split.train.n_items)
    all_topk = np.zeros((len(users), k_max), dtype=np.int64)
    for start in range(0, len(users), batch_users):
        batch = users[start : start + batch_users]
        scores = np.asarray(model.score_users(batch), dtype=np.float64)
        for i, u in enumerate(batch):
            scores[i, mask_sets[u]] = -np.inf
        all_topk[start : start + len(batch)] = rank_topk(scores, k_max)

    pos = [positives[u] for u in users]
    return EvalResult(
        recall_at_10=recall_at_k(all_topk, pos, ks[0]),
        recall_at_20=recall_at_k(all_topk, pos, ks[1]),
        ndcg_at_10=ndcg_at_k(all_topk, pos, ks[0]),
        ndcg_at_20=ndcg_at_k(all_topk, pos, ks[1]),
    )
