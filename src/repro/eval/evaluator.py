"""Held-out ranking evaluation over a temporal split.

Two implementations of the same protocol live here:

* :func:`evaluate` — the production path: user-chunked score matrices,
  CSR-vectorised masking of earlier-phase items, and the deterministic
  batched top-K of :func:`repro.eval.metrics.rank_topk`.
* :func:`evaluate_reference` — a deliberately naive per-user / per-item
  Python loop with identical semantics (same masking, same
  ``(-score, item_id)`` tie rule).  It exists purely as the correctness
  anchor for the differential test suite and the ``repro.bench`` speedup
  trajectory; never use it for real workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import InteractionDataset, Split
from .metrics import (
    ndcg_at_k,
    ndcg_at_k_reference,
    rank_topk,
    rank_topk_reference,
    recall_at_k,
    recall_at_k_reference,
)

__all__ = ["EvalResult", "evaluate", "evaluate_reference", "held_out_positives", "topk_ranking"]


@dataclass
class EvalResult:
    """Recall/NDCG at the paper's two cutoffs."""

    recall_at_10: float
    recall_at_20: float
    ndcg_at_10: float
    ndcg_at_20: float

    def get(self, metric: str) -> float:
        """Look a metric up by paper-style name (e.g. ``\"Recall@10\"``)."""
        key = metric.lower().replace("@", "_at_")
        return getattr(self, key)

    def as_row(self, percent: bool = True) -> list[str]:
        """Render the four metrics as formatted strings."""
        scale = 100.0 if percent else 1.0
        return [
            f"{scale * v:.2f}"
            for v in (self.recall_at_10, self.recall_at_20, self.ndcg_at_10, self.ndcg_at_20)
        ]

    def mean(self) -> float:
        """Mean of the four metrics (the model-selection scalar)."""
        return (self.recall_at_10 + self.recall_at_20 + self.ndcg_at_10 + self.ndcg_at_20) / 4.0


def held_out_positives(dataset: InteractionDataset) -> list[np.ndarray]:
    """Per-user held-out item arrays for a valid/test subset."""
    return dataset.items_of_user()


def _eval_setup(split: Split, on: str):
    """Shared preamble: held-out positives, mask CSR, evaluated-user set."""
    if on not in ("test", "valid"):
        raise ValueError("on must be 'test' or 'valid'")
    target = split.test if on == "test" else split.valid
    positives = held_out_positives(target)

    mask = split.train.interaction_matrix()
    if on == "test":
        mask = mask + split.valid.interaction_matrix()
    mask = mask.tocsr()

    users = np.array([u for u in range(target.n_users) if len(positives[u])], dtype=np.int64)
    return positives, mask, users


def _ranked_topk(model, mask, users: np.ndarray, k: int, batch_users: int) -> np.ndarray:
    """Masked, deterministically tie-broken top-``k`` lists per user.

    The production ranking core shared by :func:`evaluate` and
    :func:`topk_ranking`: user-chunked score matrices, CSR-vectorised
    ``-inf`` masking of earlier-phase items, and the batched
    ``(-score, item_id)`` top-K of :func:`repro.eval.metrics.rank_topk`.
    """
    all_topk = np.zeros((len(users), k), dtype=np.int64)
    for start in range(0, len(users), batch_users):
        batch = users[start : start + batch_users]
        scores = np.asarray(model.score_users(batch), dtype=np.float64)
        # Flat (row, col) coordinates of every masked entry in the batch,
        # straight from the CSR row slices — no per-user Python loop.
        sub = mask[batch]
        rows = np.repeat(np.arange(len(batch)), np.diff(sub.indptr))
        scores[rows, sub.indices] = -np.inf
        all_topk[start : start + len(batch)] = rank_topk(scores, k)
    return all_topk


def topk_ranking(
    model,
    split: Split,
    on: str = "test",
    k: int = 20,
    batch_users: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """The offline evaluator's exact top-``k`` rankings, not just metrics.

    Returns ``(users, topk)``: the evaluated user ids (those with held-out
    positives in the ``on`` phase) and their ``(len(users), k)`` ranked
    item lists, produced by the same masking and deterministic
    ``(-score, item_id)`` tiebreak as :func:`evaluate`.  This is the
    offline ground truth the serving parity harness
    (``tests/test_serve_parity.py``) holds ``repro.serve`` to.
    """
    _, mask, users = _eval_setup(split, on)
    return users, _ranked_topk(model, mask, users, min(k, split.train.n_items), batch_users)


def evaluate(
    model,
    split: Split,
    on: str = "test",
    ks: tuple[int, int] = (10, 20),
    batch_users: int = 512,
) -> EvalResult:
    """Rank the full catalogue for every user with held-out items.

    Items the user interacted with in *earlier* phases are masked:
    train when evaluating validation; train+validation when evaluating test
    (the standard temporal-protocol masking).

    Parameters
    ----------
    model:
        Object with ``score_users(users) -> (len(users), n_items)`` where
        larger scores mean stronger recommendations.
    split:
        The temporal split.
    on:
        ``"test"`` or ``"valid"``.
    """
    positives, mask, users = _eval_setup(split, on)
    k_max = min(max(ks), split.train.n_items)
    all_topk = _ranked_topk(model, mask, users, k_max, batch_users)

    pos = [positives[u] for u in users]
    return EvalResult(
        recall_at_10=recall_at_k(all_topk, pos, ks[0]),
        recall_at_20=recall_at_k(all_topk, pos, ks[1]),
        ndcg_at_10=ndcg_at_k(all_topk, pos, ks[0]),
        ndcg_at_20=ndcg_at_k(all_topk, pos, ks[1]),
    )


def evaluate_reference(
    model,
    split: Split,
    on: str = "test",
    ks: tuple[int, int] = (10, 20),
) -> EvalResult:
    """Per-user loop twin of :func:`evaluate` (correctness anchor, slow).

    Scores one user at a time, masks with a Python loop, ranks with the
    pure-Python ``rank_topk_reference`` and aggregates with the loop-based
    reference metrics.  Differential tests assert agreement with
    :func:`evaluate` to 1e-10.
    """
    positives, mask, users = _eval_setup(split, on)
    k_max = min(max(ks), split.train.n_items)
    all_topk = np.zeros((len(users), k_max), dtype=np.int64)
    for i, u in enumerate(users):
        scores = np.asarray(model.score_users(np.array([u])), dtype=np.float64)[0]
        for v in mask[int(u)].indices:
            scores[v] = -np.inf
        all_topk[i] = rank_topk_reference(scores[None, :], k_max)[0]

    pos = [positives[u] for u in users]
    return EvalResult(
        recall_at_10=recall_at_k_reference(all_topk, pos, ks[0]),
        recall_at_20=recall_at_k_reference(all_topk, pos, ks[1]),
        ndcg_at_10=ndcg_at_k_reference(all_topk, pos, ks[0]),
        ndcg_at_20=ndcg_at_k_reference(all_topk, pos, ks[1]),
    )
