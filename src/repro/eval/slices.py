"""Sliced evaluation: metric breakdowns beyond the headline averages.

The paper's motivation is that tags carry the signal where collaborative
evidence is thin.  These helpers make that measurable:

* :func:`evaluate_by_item_coldness` splits test interactions by how often
  their item was seen in training and reports Recall@K per bucket — the
  tag/taxonomy advantage should concentrate in the cold buckets.
* :func:`metrics_at` computes Recall/NDCG at arbitrary cutoffs.
* :func:`catalog_coverage` and :func:`mean_popularity_rank` quantify how
  concentrated a model's recommendations are.
"""

from __future__ import annotations

import numpy as np

from ..data import Split
from .evaluator import held_out_positives
from .metrics import ndcg_at_k, rank_topk, recall_at_k

__all__ = [
    "metrics_at",
    "evaluate_by_item_coldness",
    "catalog_coverage",
    "mean_popularity_rank",
]


def _masked_topk(model, split: Split, k: int, batch_users: int = 512):
    """Top-k per test user with train+valid items masked; returns (users, topk)."""
    positives = held_out_positives(split.test)
    train_sets = split.train.items_of_user()
    valid_sets = split.valid.items_of_user()
    mask_sets = [np.concatenate([a, b]) for a, b in zip(train_sets, valid_sets)]
    users = np.array(
        [u for u in range(split.test.n_users) if len(positives[u])], dtype=np.int64
    )
    k = min(k, split.train.n_items)
    topk = np.zeros((len(users), k), dtype=np.int64)
    for start in range(0, len(users), batch_users):
        batch = users[start : start + batch_users]
        scores = np.asarray(model.score_users(batch), dtype=np.float64)
        for i, u in enumerate(batch):
            scores[i, mask_sets[u]] = -np.inf
        topk[start : start + len(batch)] = rank_topk(scores, k)
    return users, topk, positives


def metrics_at(model, split: Split, ks: tuple[int, ...] = (1, 5, 10, 20, 50)) -> dict[int, dict[str, float]]:
    """Recall@K and NDCG@K for several cutoffs in one ranking pass."""
    users, topk, positives = _masked_topk(model, split, max(ks))
    pos = [positives[u] for u in users]
    return {
        k: {
            "recall": recall_at_k(topk, pos, k),
            "ndcg": ndcg_at_k(topk, pos, k),
        }
        for k in ks
    }


def evaluate_by_item_coldness(
    model,
    split: Split,
    k: int = 10,
    boundaries: tuple[int, ...] = (2, 10),
) -> dict[str, dict[str, float]]:
    """Recall@k restricted to test items in training-count buckets.

    Parameters
    ----------
    boundaries:
        Training-interaction-count cut points.  Default buckets:
        cold (< 2 train interactions), warm (2–9), popular (≥ 10).

    Returns
    -------
    dict
        Bucket name → ``{"recall": …, "n_interactions": …}``.  Recall for
        a bucket counts only that bucket's held-out items, so the buckets
        decompose where each model's hits come from.
    """
    train_counts = np.bincount(split.train.item_ids, minlength=split.train.n_items)
    users, topk, positives = _masked_topk(model, split, k)

    edges = (0,) + tuple(boundaries) + (np.inf,)
    names = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        names.append(f"[{lo},{'inf' if hi == np.inf else int(hi)})")

    out: dict[str, dict[str, float]] = {}
    for name, lo, hi in zip(names, edges[:-1], edges[1:]):
        bucket_pos = []
        total = 0
        for u in users:
            items = positives[u]
            sel = items[(train_counts[items] >= lo) & (train_counts[items] < hi)]
            bucket_pos.append(sel)
            total += len(sel)
        out[name] = {
            "recall": recall_at_k(topk, bucket_pos, k),
            "n_interactions": float(total),
        }
    return out


def catalog_coverage(model, split: Split, k: int = 10) -> float:
    """Fraction of the catalogue appearing in at least one user's top-k."""
    _, topk, _ = _masked_topk(model, split, k)
    return len(np.unique(topk)) / split.train.n_items


def mean_popularity_rank(model, split: Split, k: int = 10) -> float:
    """Mean training-popularity percentile of recommended items (1 = most popular).

    Values near 1 indicate the model mostly re-recommends popular items.
    """
    counts = np.bincount(split.train.item_ids, minlength=split.train.n_items)
    # Percentile of each item's popularity (1 = most popular).
    order = np.argsort(-counts)
    percentile = np.empty(split.train.n_items)
    percentile[order] = 1.0 - np.arange(split.train.n_items) / max(split.train.n_items - 1, 1)
    _, topk, _ = _masked_topk(model, split, k)
    return float(percentile[topk].mean())
