"""Ranking metrics: Recall@K and NDCG@K on full, unsampled rankings.

Following the paper (§V-A2, citing Krichene & Rendle 2020), metrics are
computed against the *full* item catalogue, never against sampled
negatives.  Items seen in train/validation are masked out of rankings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "ndcg_at_k", "rank_topk"]


def rank_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-``k`` items per row, sorted by descending score."""
    if k >= scores.shape[1]:
        return np.argsort(-scores, axis=1)
    part = np.argpartition(-scores, k, axis=1)[:, :k]
    row = np.arange(scores.shape[0])[:, None]
    order = np.argsort(-scores[row, part], axis=1)
    return part[row, order]


def recall_at_k(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Mean Recall@K over users.

    Parameters
    ----------
    topk:
        ``(n_users, >=k)`` ranked item ids.
    positives:
        Per-user arrays of held-out ground-truth item ids; users with no
        positives are skipped.
    """
    scores = []
    for row, pos in zip(topk, positives):
        if len(pos) == 0:
            continue
        hits = np.isin(row[:k], pos).sum()
        scores.append(hits / len(pos))
    return float(np.mean(scores)) if scores else 0.0


def ndcg_at_k(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Mean NDCG@K with binary relevance.

    IDCG truncates at ``min(k, |positives|)`` so a perfect ranking scores 1.
    """
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    scores = []
    for row, pos in zip(topk, positives):
        if len(pos) == 0:
            continue
        rel = np.isin(row[:k], pos).astype(np.float64)
        dcg = float((rel * discounts[: len(rel)]).sum())
        idcg = float(discounts[: min(k, len(pos))].sum())
        scores.append(dcg / idcg)
    return float(np.mean(scores)) if scores else 0.0
