"""Ranking metrics: Recall@K and NDCG@K on full, unsampled rankings.

Following the paper (§V-A2, citing Krichene & Rendle 2020), metrics are
computed against the *full* item catalogue, never against sampled
negatives.  Items seen in train/validation are masked out of rankings.

Tie handling
------------
``rank_topk`` orders by **descending score, ascending item id** — the item
id is an explicit, documented tiebreak.  The default ``np.argsort`` (an
unstable introsort) and ``np.argpartition`` leave the relative order of
equal scores platform- and layout-dependent, which silently changes
Recall/NDCG whenever a model emits tied scores (popularity scorers,
quantised checkpoints, masked ``-inf`` blocks).  Every function here has a
pure-Python ``*_reference`` twin implementing the same contract; the
differential test suite pins the vectorised paths to those twins.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..backend import get_backend

__all__ = [
    "recall_at_k",
    "ndcg_at_k",
    "rank_topk",
    "rank_topk_reference",
    "recall_at_k_reference",
    "ndcg_at_k_reference",
]


def rank_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-``k`` items per row, ties broken by ascending id.

    Sorting key is ``(-score, item_id)``: descending score, then ascending
    item id, so the returned ranking is a deterministic function of the
    score values alone (no dependence on sort stability or partition
    layout).  Scores must be real-valued (``-inf`` is fine for masked
    entries; ``nan`` is not supported).

    For ``k`` much smaller than the catalogue this runs an
    ``argpartition``-based selection: the k-th score is found first, rows
    are filled with all strictly-greater entries plus the lowest-id entries
    tied with the threshold, and only the selected ``k`` are sorted.

    The implementation lives in the compute backend
    (:meth:`repro.backend.base.KernelBackend.rank_topk`); selection is
    discrete, so every backend must return *identical* indices.
    """
    return get_backend().rank_topk(scores, k)


def rank_topk_reference(scores: np.ndarray, k: int) -> np.ndarray:
    """Pure-Python twin of :func:`rank_topk` (per-row sort on ``(-s, id)``)."""
    scores = np.asarray(scores)
    n_rows, n = scores.shape
    k = min(k, n)
    out = np.zeros((n_rows, k), dtype=np.int64)
    for i in range(n_rows):
        row = scores[i]
        order = sorted(range(n), key=lambda j: (-row[j], j))
        out[i] = order[:k]
    return out


def _positives_csr(positives: list[np.ndarray], n_items: int) -> sparse.csr_matrix:
    """Binary (n_users, n_items) membership matrix from ragged positive lists."""
    counts = np.array([len(p) for p in positives], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    indices = (
        np.concatenate([np.asarray(p, dtype=np.int64) for p in positives])
        if counts.sum()
        else np.zeros(0, dtype=np.int64)
    )
    data = np.ones(len(indices), dtype=np.float64)
    mat = sparse.csr_matrix((data, indices, indptr), shape=(len(positives), n_items))
    mat.sum_duplicates()
    mat.data[:] = 1.0  # repro-lint: disable=inplace-tensor-data
    return mat


def _relevance(topk: np.ndarray, positives: list[np.ndarray], k: int) -> tuple[np.ndarray, np.ndarray]:
    """(rel, n_pos): binary hit matrix over the first ``k`` columns + counts."""
    n_pos = np.array([len(p) for p in positives], dtype=np.int64)
    width = min(k, topk.shape[1]) if topk.ndim == 2 else 0
    if len(topk) == 0 or width == 0:
        return np.zeros((len(topk), 0)), n_pos
    n_items = int(topk.max(initial=-1)) + 1
    for p in positives:
        if len(p):
            n_items = max(n_items, int(np.max(p)) + 1)
    pos_mat = _positives_csr(positives, n_items)
    rows = np.repeat(np.arange(len(topk)), width)
    cols = topk[:, :width].ravel()
    rel = np.asarray(pos_mat[rows, cols]).reshape(len(topk), -1)
    return rel, n_pos


def recall_at_k(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Mean Recall@K over users (vectorised; users without positives skipped).

    Parameters
    ----------
    topk:
        ``(n_users, >=k)`` ranked item ids.
    positives:
        Per-user arrays of held-out ground-truth item ids; users with no
        positives are skipped.
    """
    rel, n_pos = _relevance(topk, positives, k)
    keep = n_pos > 0
    if not keep.any():
        return 0.0
    hits = rel[keep].sum(axis=1)
    return float(np.mean(hits / n_pos[keep]))


def ndcg_at_k(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Mean NDCG@K with binary relevance (vectorised).

    IDCG truncates at ``min(k, |positives|)`` so a perfect ranking scores 1.
    """
    rel, n_pos = _relevance(topk, positives, k)
    keep = n_pos > 0
    if not keep.any():
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    width = rel.shape[1]
    dcg = (rel[keep] * discounts[:width]).sum(axis=1)
    cum = np.concatenate([[0.0], np.cumsum(discounts)])
    idcg = cum[np.minimum(k, n_pos[keep])]
    return float(np.mean(dcg / idcg))


def recall_at_k_reference(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Per-user loop twin of :func:`recall_at_k`."""
    scores = []
    for row, pos in zip(topk, positives):
        if len(pos) == 0:
            continue
        hits = np.isin(row[:k], pos).sum()
        scores.append(hits / len(pos))
    return float(np.mean(scores)) if scores else 0.0


def ndcg_at_k_reference(topk: np.ndarray, positives: list[np.ndarray], k: int) -> float:
    """Per-user loop twin of :func:`ndcg_at_k`."""
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    scores = []
    for row, pos in zip(topk, positives):
        if len(pos) == 0:
            continue
        rel = np.isin(row[:k], pos).astype(np.float64)
        dcg = float((rel * discounts[: len(rel)]).sum())
        idcg = float(discounts[: min(k, len(pos))].sum())
        scores.append(dcg / idcg)
    return float(np.mean(scores)) if scores else 0.0
