"""Wilcoxon signed-rank significance testing (paper Table II's asterisks)."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["wilcoxon_improvement"]


def wilcoxon_improvement(
    candidate: np.ndarray, baseline: np.ndarray, alpha: float = 0.05
) -> tuple[float, bool]:
    """One-sided Wilcoxon signed-rank test that ``candidate > baseline``.

    Parameters
    ----------
    candidate, baseline:
        Paired per-seed (or per-fold) metric values.
    alpha:
        Significance level (paper uses 5%).

    Returns
    -------
    (p_value, significant)
    """
    candidate = np.asarray(candidate, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    if candidate.shape != baseline.shape:
        raise ValueError("paired samples must have equal shape")
    diff = candidate - baseline
    if np.allclose(diff, 0.0):
        return 1.0, False
    result = stats.wilcoxon(candidate, baseline, alternative="greater")
    return float(result.pvalue), bool(result.pvalue < alpha)
