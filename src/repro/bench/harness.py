"""Micro/macro benchmark harness: timed cases, JSON results, trajectories.

The harness runs *paired* benchmarks: every case times its production fast
path and (when present) the pinned ``*_reference`` implementation on the
same prepared state, so each result carries a measured speedup that the
differential test suite guarantees is numerics-preserving.

Result files follow the ``repro.bench/v1`` schema (see
:func:`validate_result` and ``docs/BENCH.md``) and are written as
``BENCH_<suite>.json`` so repeated runs form a performance trajectory that
can be diffed across commits.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..backend import get_backend
from ..retrieval import get_retrieval

__all__ = [
    "BenchCase",
    "SCHEMA",
    "time_callable",
    "run_cases",
    "validate_result",
    "write_result",
]

SCHEMA = "repro.bench/v1"


@dataclass
class BenchCase:
    """One paired benchmark.

    Parameters
    ----------
    name:
        Dotted identifier, e.g. ``"evaluator.topk"``.
    group:
        Subsystem bucket (``"evaluator"``, ``"sampling"``, ...).
    setup:
        ``setup(quick) -> state``: build the workload.  ``quick`` selects a
        CI-sized variant.  The returned state is shared by both paths.
    fast:
        ``fast(state)``: the production path under test.
    reference:
        Optional ``reference(state)``: the pinned slow twin; when present
        the result records a speedup.
    workload:
        Optional ``workload(quick) -> dict`` describing sizes for the JSON
        record (purely informational).
    """

    name: str
    group: str
    setup: Callable[[bool], Any]
    fast: Callable[[Any], Any]
    reference: Callable[[Any], Any] | None = None
    workload: Callable[[bool], dict] | None = None


@dataclass
class _Timing:
    times_s: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        arr = np.asarray(self.times_s, dtype=np.float64)
        return {
            "times_s": [float(t) for t in arr],
            "best_s": float(arr.min()),
            "mean_s": float(arr.mean()),
            "std_s": float(arr.std()),
        }


def time_callable(
    fn: Callable[[], Any], warmup: int = 1, repeats: int = 5
) -> dict:
    """Time ``fn`` with ``warmup`` discarded calls then ``repeats`` timed ones.

    Returns the ``{"times_s", "best_s", "mean_s", "std_s"}`` dict of the
    result schema.  ``best_s`` is the headline number: minimum wall-clock
    over repeats, the standard low-noise estimator for microbenchmarks.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    timing = _Timing()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timing.times_s.append(time.perf_counter() - start)
    return timing.as_dict()


def _environment() -> dict:
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "backend": get_backend().name,
        "retrieval": get_retrieval(),
    }


def run_cases(
    cases: list[BenchCase],
    suite: str,
    quick: bool = False,
    warmup: int = 1,
    repeats: int = 5,
    only: str | None = None,
) -> dict:
    """Run benchmark cases and return a ``repro.bench/v1`` result document.

    Parameters
    ----------
    cases:
        The paired benchmarks to run.
    suite:
        Suite name recorded in the document (and the default file stem).
    quick:
        CI mode: small workloads; timings are recorded but meaningless for
        trajectory comparisons (the document is flagged ``"quick": true``).
    warmup, repeats:
        Per-path timing protocol.
    only:
        Optional substring filter on case names.
    """
    selected = [c for c in cases if only is None or only in c.name]
    records = []
    for case in selected:
        state = case.setup(quick)
        record: dict[str, Any] = {
            "name": case.name,
            "group": case.group,
            "workload": case.workload(quick) if case.workload else {},
            "fast": time_callable(lambda: case.fast(state), warmup, repeats),
            "reference": None,
            "speedup": None,
        }
        if case.reference is not None:
            record["reference"] = time_callable(
                lambda: case.reference(state), warmup, repeats
            )
            record["speedup"] = record["reference"]["best_s"] / max(
                record["fast"]["best_s"], sys.float_info.min
            )
        records.append(record)
    return {
        "schema": SCHEMA,
        "suite": suite,
        "quick": bool(quick),
        "created_unix": time.time(),
        "environment": _environment(),
        "config": {"warmup": int(warmup), "repeats": int(repeats)},
        "benchmarks": records,
    }


def validate_result(result: dict) -> list[str]:
    """Structural validation of a ``repro.bench/v1`` document.

    Returns a list of human-readable problems (empty when valid) — used by
    the harness tests and the CI smoke job.
    """
    problems: list[str] = []
    if not isinstance(result, dict):
        return ["result is not an object"]
    if result.get("schema") != SCHEMA:
        problems.append(f"schema is {result.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("suite", "quick", "created_unix", "environment", "config", "benchmarks"):
        if key not in result:
            problems.append(f"missing top-level key {key!r}")
    for i, record in enumerate(result.get("benchmarks", []) or []):
        where = f"benchmarks[{i}]"
        for key in ("name", "group", "fast", "reference", "speedup"):
            if key not in record:
                problems.append(f"{where} missing key {key!r}")
        for side in ("fast", "reference"):
            timing = record.get(side)
            if timing is None:
                continue
            for key in ("times_s", "best_s", "mean_s", "std_s"):
                if key not in timing:
                    problems.append(f"{where}.{side} missing key {key!r}")
            times = timing.get("times_s", [])
            if not times or any(t < 0 for t in times):
                problems.append(f"{where}.{side}.times_s must be non-empty, non-negative")
        if record.get("reference") is not None and not record.get("speedup"):
            problems.append(f"{where} has a reference timing but no speedup")
    return problems


def write_result(result: dict, path) -> None:
    """Write a result document as pretty-printed JSON (validating first)."""
    problems = validate_result(result)
    if problems:
        raise ValueError("invalid bench result: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=False)
        fh.write("\n")
