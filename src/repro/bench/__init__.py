"""Benchmark harness: paired fast-vs-reference timings with JSON trajectories.

See ``docs/BENCH.md`` for the result schema and how to add a benchmark.
"""

from .harness import (
    SCHEMA,
    BenchCase,
    run_cases,
    time_callable,
    validate_result,
    write_result,
)
from .hotpaths import HOTPATH_CASES, hotpath_cases

__all__ = [
    "SCHEMA",
    "BenchCase",
    "run_cases",
    "time_callable",
    "validate_result",
    "write_result",
    "HOTPATH_CASES",
    "hotpath_cases",
]
