"""Closed-loop load harness for the serving stack.

``python -m repro.bench.load`` deploys a serving topology (single
process, or a forked :class:`~repro.serve.pool.WorkerPool` behind the
shard router), drives it with ``concurrency`` closed-loop HTTP clients —
each client holds one keep-alive connection and fires its next
``/recommend`` the moment the previous response lands — and sweeps the
``workers × concurrency`` grid into a ``repro.bench/v1`` document
(``BENCH_serve.json``), so serving throughput joins the same trajectory
machinery as the numeric hot-path benchmarks.

Each grid cell becomes one benchmark record:

* ``name`` — ``serve.load.w{workers}.c{concurrency}``;
* ``fast.times_s`` — per-client wall times for the cell (the schema's
  timing block, so ``best_s``/``mean_s`` stay meaningful);
* ``workload`` — the serving-specific facts: workers, shards,
  concurrency, completed requests, error count, QPS, and p50/p99
  request latency in milliseconds.

Before any load is applied the harness asserts *parity*: a sample of
users served over the wire must match a local
:class:`~repro.serve.service.RecommenderService` on the same artifact
exactly.  A deployment that fails parity is not worth benchmarking.

Usage:
    python -m repro.bench.load model.npz --workers 1,2 --concurrency 1,4,8
    python -m repro.bench.load bundle/ --workers 2 --shards 4 --quick
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ...backend import get_backend
from ...serve.errors import ServeError
from ...serve.http import create_server
from ...serve.service import RecommenderService
from ...utils import get_logger
from ..harness import SCHEMA

__all__ = [
    "run_load_cell",
    "sweep",
    "deploy",
    "check_parity",
    "synthetic_bundle",
    "build_parser",
]

logger = get_logger("repro.bench.load")


# ----------------------------------------------------------------------
# Deployment shapes
# ----------------------------------------------------------------------
@contextmanager
def deploy(
    artifact_path,
    workers: int,
    shards: int | None = None,
    micro_batch: int = 0,
    cache_size: int = 0,
    host: str = "127.0.0.1",
):
    """Serve ``artifact_path`` with the requested topology; yield ``(host, port)``.

    ``workers == 0`` is the baseline: one in-process
    :class:`RecommenderService` behind the threaded HTTP server.
    ``workers >= 1`` forks a :class:`~repro.serve.pool.WorkerPool` and
    fronts it with the shard router.  Caching defaults to **off** so the
    harness measures scoring, not cache hits (a closed-loop sweep revisits
    users, and a warm LRU would flatter every topology equally).
    """
    if workers == 0:
        service = RecommenderService(artifact_path, cache_size=cache_size)
        server = create_server(service, host=host, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server.server_address[:2]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
    else:
        from ...serve.pool import WorkerPool

        with WorkerPool(
            artifact_path,
            n_workers=workers,
            n_shards=shards if shards else workers,
            micro_batch=micro_batch,
            cache_size=cache_size,
        ) as pool:
            router = pool.create_router(host=host)
            thread = threading.Thread(target=router.serve_forever, daemon=True)
            thread.start()
            try:
                yield router.server_address[:2]
            finally:
                router.shutdown()
                router.server_close()
                thread.join(timeout=10)


def _fetch_json(host: str, port: int, path: str) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def check_parity(address: tuple[str, int], reference: RecommenderService,
                 users, k: int = 10) -> None:
    """Assert served top-K over the wire ≡ the local reference, bit for bit."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        for user in users:
            conn.request("GET", f"/recommend?user={int(user)}&k={k}")
            response = conn.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            if response.status != 200:
                raise ServeError(f"parity probe for user {user} failed: {body}")
            items, scores = reference.recommend(int(user), k)
            if body["items"] != [int(i) for i in items]:
                raise ServeError(
                    f"parity violation for user {user}: served {body['items']}, "
                    f"reference {[int(i) for i in items]}"
                )
            if body["scores"] != [float(s) for s in scores]:
                raise ServeError(f"parity violation in scores for user {user}")
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Closed-loop load generation
# ----------------------------------------------------------------------
class _Client(threading.Thread):
    """One closed-loop client: keep-alive connection, back-to-back requests."""

    def __init__(self, host: str, port: int, users: list[int], k: int,
                 barrier: threading.Barrier):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.users, self.k = users, k
        self.barrier = barrier
        self.latencies_s: list[float] = []
        self.errors = 0
        self.wall_s = 0.0

    def run(self) -> None:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            self.barrier.wait()
            start = time.perf_counter()
            for user in self.users:
                t0 = time.perf_counter()
                try:
                    conn.request("GET", f"/recommend?user={user}&k={self.k}")
                    response = conn.getresponse()
                    response.read()
                    if response.status != 200:
                        self.errors += 1
                except (http.client.HTTPException, ConnectionError, OSError):
                    self.errors += 1
                    conn.close()
                    conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
                self.latencies_s.append(time.perf_counter() - t0)
            self.wall_s = time.perf_counter() - start
        finally:
            conn.close()


def run_load_cell(
    address: tuple[str, int],
    concurrency: int,
    requests: int,
    n_users: int,
    k: int = 10,
) -> dict:
    """Drive one ``(deployment, concurrency)`` cell; return its measurements.

    ``requests`` total requests are split evenly over ``concurrency``
    clients; user ids are assigned deterministically (client ``i``'s
    ``j``-th request hits user ``(i + j * concurrency) % n_users``), so
    every sweep is reproducible and every shard sees traffic.
    """
    if concurrency < 1 or requests < concurrency:
        raise ValueError(
            f"need requests >= concurrency >= 1, got {requests} over {concurrency}"
        )
    host, port = address
    per_client = requests // concurrency
    barrier = threading.Barrier(concurrency + 1)
    clients = [
        _Client(
            host, port,
            [(i + j * concurrency) % n_users for j in range(per_client)],
            k, barrier,
        )
        for i in range(concurrency)
    ]
    for client in clients:
        client.start()
    barrier.wait()
    t0 = time.perf_counter()
    for client in clients:
        client.join()
    wall_s = time.perf_counter() - t0

    latencies = np.asarray(
        [lat for client in clients for lat in client.latencies_s], dtype=np.float64
    )
    completed = int(len(latencies))
    errors = sum(client.errors for client in clients)
    return {
        "concurrency": int(concurrency),
        "requests": completed,
        "errors": int(errors),
        "wall_s": float(wall_s),
        "qps": float(completed / wall_s) if wall_s > 0 else 0.0,
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
        "client_wall_s": [float(client.wall_s) for client in clients],
    }


# ----------------------------------------------------------------------
# The sweep → repro.bench/v1
# ----------------------------------------------------------------------
def _timing_block(client_wall_s: list[float]) -> dict:
    arr = np.asarray(client_wall_s, dtype=np.float64)
    return {
        "times_s": [float(t) for t in arr],
        "best_s": float(arr.min()),
        "mean_s": float(arr.mean()),
        "std_s": float(arr.std()),
    }


def sweep(
    artifact_path,
    workers_list: list[int],
    concurrency_list: list[int],
    requests: int = 200,
    shards: int | None = None,
    micro_batch: int = 0,
    cache_size: int = 0,
    k: int = 10,
    parity_users: int = 16,
    quick: bool = False,
) -> dict:
    """Run the full ``workers × concurrency`` grid; return a bench document.

    With ``cache_size > 0`` every worker gets a per-process LRU of that
    capacity and each deployment is warmed with two full passes over the
    user space before its first measured cell — the configuration that
    exposes the *aggregate cache* benefit of sharding (each shard's LRU
    only has to hold its own users).
    """
    reference = RecommenderService(artifact_path, cache_size=0)
    n_users = reference.n_users
    records = []
    for workers in workers_list:
        cell_shards = (shards if shards else max(workers, 1)) if workers else 0
        with deploy(artifact_path, workers, shards=cell_shards,
                    micro_batch=micro_batch, cache_size=cache_size) as address:
            probe = np.linspace(0, n_users - 1, num=min(parity_users, n_users), dtype=int)
            check_parity(address, reference, probe, k=k)
            if cache_size > 0:
                warm = max(2 * n_users, 64)
                run_load_cell(address, min(8, warm), warm, n_users, k=k)
            for concurrency in concurrency_list:
                cell = run_load_cell(address, concurrency, requests, n_users, k=k)
                logger.info(
                    "workers=%d shards=%d c=%-3d qps=%8.1f p50=%6.2fms p99=%6.2fms errors=%d",
                    workers, cell_shards, concurrency, cell["qps"],
                    cell["p50_ms"], cell["p99_ms"], cell["errors"],
                )
                workload = {
                    "workers": int(workers),
                    "shards": int(cell_shards),
                    "micro_batch": int(micro_batch),
                    "cache_size": int(cache_size),
                    "k": int(k),
                    **{key: cell[key] for key in (
                        "concurrency", "requests", "errors", "wall_s",
                        "qps", "p50_ms", "p99_ms", "mean_ms",
                    )},
                }
                records.append({
                    "name": f"serve.load.w{workers}.c{concurrency}",
                    "group": "serve",
                    "workload": workload,
                    "fast": _timing_block(cell["client_wall_s"]),
                    "reference": None,
                    "speedup": None,
                })
    import os
    import platform
    import sys as _sys

    return {
        "schema": SCHEMA,
        "suite": "serve",
        "quick": bool(quick),
        "created_unix": time.time(),
        "environment": {
            "python": _sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
            # QPS curves only make sense relative to the core budget:
            # on one core, worker parallelism can't add compute.
            "cpu_count": os.cpu_count(),
            "backend": get_backend().name,
        },
        "config": {
            "requests_per_cell": int(requests),
            "workers": [int(w) for w in workers_list],
            "concurrency": [int(c) for c in concurrency_list],
            "cache_size": int(cache_size),
            "micro_batch": int(micro_batch),
        },
        "benchmarks": records,
    }


def synthetic_bundle(n_users: int, n_items: int, dim: int, out_dir, seed: int = 0):
    """Build a deterministic CML-shaped artifact + shared bundle for load runs.

    Embeddings are seeded ``standard_normal`` under ``neg_sq_euclid`` —
    the same scoring kernel a trained CML artifact exercises — so the
    harness can benchmark serving without a training run, reproducibly.
    Returns the bundle directory.
    """
    from ...data import SyntheticConfig, generate, temporal_split
    from ...serve import export_payload, export_shared

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    split = temporal_split(generate(SyntheticConfig(
        n_users=n_users, n_items=n_items, branching=(4, 4),
        mean_interactions=25.0, seed=seed, name="loadbench",
    )))
    rng = np.random.default_rng(seed)
    npz = out_dir / "loadbench.npz"
    export_payload(
        npz,
        score_fn="neg_sq_euclid",
        arrays={
            "user": rng.standard_normal((split.train.n_users, dim)),
            "item": rng.standard_normal((split.train.n_items, dim)),
        },
        train=split.train,
        model_name="CML",
    )
    return export_shared(npz, out_dir / "loadbench.bundle")


def _int_list(raw: str) -> list[int]:
    try:
        values = [int(part) for part in raw.split(",") if part.strip() != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {raw!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("list must be non-empty")
    return values


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.bench.load``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.load",
        description="Closed-loop load sweep over serving topologies "
        "(workers × concurrency) → BENCH_serve.json",
    )
    parser.add_argument("artifact", nargs="?", default=None,
                        help="repro.model/v1 .npz artifact or shared bundle directory "
                        "(omit with --synthetic)")
    parser.add_argument("--synthetic", type=_int_list, default=None,
                        metavar="USERS,ITEMS,DIM",
                        help="benchmark a deterministic seeded CML-shaped artifact "
                        "of this size instead of a trained one")
    parser.add_argument("--workers", type=_int_list, default=[0, 1, 2], metavar="LIST",
                        help="worker counts to sweep; 0 = single-process baseline "
                        "(default: 0,1,2)")
    parser.add_argument("--shards", type=int, default=0, metavar="M",
                        help="shard count for pooled cells (default: one per worker)")
    parser.add_argument("--concurrency", type=_int_list, default=[1, 2, 4, 8],
                        metavar="LIST", help="closed-loop client counts (default: 1,2,4,8)")
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="requests per grid cell (default: 200)")
    parser.add_argument("--micro-batch", type=int, default=0, metavar="B",
                        help="per-shard micro-batch bound for pooled cells (0 disables)")
    parser.add_argument("--cache", type=int, default=0, metavar="C",
                        help="per-worker LRU capacity; deployments are cache-warmed "
                        "before measuring (0 = uncached scoring throughput)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: 32 requests per cell, flags the document")
    parser.add_argument("--out", default="BENCH_serve.json", metavar="PATH")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.load`` (see ``__main__``)."""
    from .__main__ import main as _main

    return _main(argv)
