"""CLI entry for the serving load harness: sweep, print the grid, write JSON.

``python -m repro.bench.load model.npz --workers 0,2 --concurrency 1,8``
— the measurement machinery lives in the package ``__init__``; this
module is only the terminal surface (argument handling and the result
table).
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..harness import validate_result, write_result
from ...serve.errors import ServeError
from . import build_parser, sweep, synthetic_bundle


def main(argv: list[str] | None = None) -> int:
    """Run the sweep, print the grid, write the document."""
    args = build_parser().parse_args(argv)
    requests = 32 if args.quick else args.requests
    concurrency_list = [c for c in args.concurrency if c <= requests]
    artifact = args.artifact
    tmp_dir = None
    if args.synthetic is not None:
        if artifact is not None:
            print("pass either an artifact path or --synthetic, not both",
                  file=sys.stderr)
            return 2
        if len(args.synthetic) != 3:
            print("--synthetic wants USERS,ITEMS,DIM", file=sys.stderr)
            return 2
        import tempfile

        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-load-")
        artifact = synthetic_bundle(*args.synthetic, out_dir=tmp_dir.name)
    elif artifact is None:
        print("an artifact path (or --synthetic) is required",
              file=sys.stderr)
        return 2
    try:
        result = sweep(
            artifact,
            workers_list=args.workers,
            concurrency_list=concurrency_list,
            requests=requests,
            shards=args.shards if args.shards > 0 else None,
            micro_batch=args.micro_batch,
            cache_size=args.cache,
            k=args.k,
            quick=args.quick,
        )
    except ServeError as exc:
        print(f"load sweep failed: {exc}", file=sys.stderr)
        return 2
    problems = validate_result(result)
    if problems:  # pragma: no cover - sweep() emits schema-valid documents
        raise ValueError("invalid bench result: " + "; ".join(problems))
    write_result(result, args.out)
    print(f"{'cell':<22} {'qps':>9} {'p50_ms':>8} {'p99_ms':>8} {'errors':>7}")
    for record in result["benchmarks"]:
        work = record["workload"]
        print(f"{record['name']:<22} {work['qps']:>9.1f} {work['p50_ms']:>8.2f} "
              f"{work['p99_ms']:>8.2f} {work['errors']:>7d}")
    print(f"wrote {Path(args.out).resolve()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
