"""The retrieval benchmark suite: candidate indexes vs exact scoring.

Every case pairs a :mod:`repro.retrieval` candidate index (the fast
path) against :class:`~repro.retrieval.ExactIndex` (the reference) on
the same synthetic artifact and the same single-user query sweep, so the
reported speedup is exactly the serving-path win of sub-linear candidate
generation, and the recall measured at index build time is recorded in
each case's workload block — the latency/recall frontier of
``docs/RETRIEVAL.md``.

Two item-catalog families, chosen to bracket the regimes that matter:

* ``lorentz`` — points on the hyperboloid scored by ``neg_sq_lorentz``
  (the paper's geometry).  Isotropic in high dimension: the blockwise
  sweep wins by skipping the ``arccosh`` finish for non-candidates (and
  by low-precision matmuls), while norm-bucket pruning has little to
  grab onto — the committed numbers document that honestly.
* ``skewed`` — ``dot_bias`` with power-law item norms (the popularity
  skew real catalogs have, and the regime ASOS's norm-pruning argument
  targets).  Here the bucketed index's provable bound prunes most of
  the catalog while staying exact.

Results land in ``BENCH_retrieval.json`` (``python -m repro.bench
--cases retrieval``); ``--quick`` shrinks the catalog for CI smoke runs.
"""

from __future__ import annotations

import numpy as np

from ..retrieval import INDEX_KINDS, ExactIndex, measure_recall
from ..serve.scoring import FrozenScorer
from ..utils import ensure_rng

__all__ = ["RETRIEVAL_CASES", "retrieval_cases"]

_QUERY_K = 10


def _sizes(quick: bool) -> dict:
    return (
        {"n_users": 24, "n_items": 1500, "d": 17, "query_users": 8, "recall_users": 8}
        if quick
        else {"n_users": 64, "n_items": 24000, "d": 33, "query_users": 32, "recall_users": 32}
    )


def _lorentz_rows(rng, n: int, d: int, scale: float = 1.2) -> np.ndarray:
    spatial = rng.normal(0.0, scale, size=(n, d - 1))
    time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
    return np.ascontiguousarray(np.concatenate([time, spatial], axis=-1))


def _seen_csr(rng, n_users: int, n_items: int, per_user: int = 20):
    rows = [
        np.sort(rng.choice(n_items, size=min(per_user, n_items), replace=False))
        for _ in range(n_users)
    ]
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(r) for r in rows])
    indices = np.concatenate(rows).astype(np.int64)
    return indptr, indices


def _payload(family: str, sizes: dict) -> tuple[str, dict]:
    rng = ensure_rng(11)
    n_users, n_items, d = sizes["n_users"], sizes["n_items"], sizes["d"]
    if family == "lorentz":
        return "neg_sq_lorentz", {
            "user": _lorentz_rows(rng, n_users, d),
            "item": _lorentz_rows(rng, n_items, d),
        }
    # Popularity-skewed catalog: power-law item norms, the regime where
    # norm-bucket pruning pays (items are shuffled so norm order carries
    # no id information).
    norms = np.sort(rng.pareto(1.5, size=n_items) + 0.1)[::-1]
    item = rng.normal(size=(n_items, d)) * norms[:, None] / np.sqrt(d)
    return "dot_bias", {
        "user": rng.normal(size=(n_users, d)),
        "item": np.ascontiguousarray(rng.permutation(item)),
        "item_bias": 0.1 * rng.normal(size=n_items),
    }


def _sweep(index, users) -> int:
    for user in users:
        index.topk(int(user), _QUERY_K, exclude_seen=True)
    return len(users)


def _retrieval_case(family: str, kind: str, label: str, **params):
    """Paired case: one index spec vs exact scoring on one catalog family."""
    from .harness import BenchCase

    info: dict = {}

    def setup(quick: bool):
        sizes = _sizes(quick)
        score_fn, payload = _payload(family, sizes)
        scorer = FrozenScorer(score_fn, payload)
        indptr, indices = _seen_csr(ensure_rng(13), sizes["n_users"], sizes["n_items"])
        exact = ExactIndex(scorer, indptr, indices)
        index = INDEX_KINDS[kind](scorer, indptr, indices, **params)
        recall = measure_recall(
            index, exact, ks=(10, 50), sample_users=sizes["recall_users"]
        )
        users = np.unique(
            np.linspace(
                0, sizes["n_users"] - 1, num=min(sizes["query_users"], sizes["n_users"])
            ).astype(np.int64)
        )
        info.clear()
        info.update(
            {
                "family": family,
                "score_fn": score_fn,
                "spec": {"kind": kind, **params},
                "k": _QUERY_K,
                "n_items": sizes["n_items"],
                "d": sizes["d"],
                "query_users": int(len(users)),
                "recall": recall["recall"],
            }
        )
        return {"index": index, "exact": exact, "users": users}

    return BenchCase(
        name=f"retrieval.{family}.{label}",
        group="retrieval",
        setup=setup,
        fast=lambda state: _sweep(state["index"], state["users"]),
        reference=lambda state: _sweep(state["exact"], state["users"]),
        workload=lambda quick: dict(info),
    )


RETRIEVAL_CASES = [
    _retrieval_case("lorentz", "blockwise", "blockwise_fp64"),
    _retrieval_case("lorentz", "blockwise", "blockwise_fp32", dtype="fp32"),
    _retrieval_case("lorentz", "bucketed", "bucketed", n_buckets=64),
    _retrieval_case("skewed", "blockwise", "blockwise_fp32", dtype="fp32"),
    _retrieval_case("skewed", "bucketed", "bucketed", n_buckets=64),
]


def retrieval_cases():
    """The retrieval suite (fresh list; callers may filter freely)."""
    return list(RETRIEVAL_CASES)
