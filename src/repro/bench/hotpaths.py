"""The hot-path benchmark suite: vectorised paths vs pinned references.

Each case pairs a production code path with the ``*_reference``
implementation that the differential test suite
(``tests/test_vectorized_vs_reference.py``) proves numerically equivalent,
so every reported speedup is a *safe* speedup.

Workloads are seeded synthetic data shaped like the paper's datasets
(scaled down); ``quick`` variants are CI-sized smoke workloads.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..data import SyntheticConfig, TripletSampler, generate, temporal_split
from ..eval import evaluate, rank_topk
from ..eval.evaluator import evaluate_reference
from ..eval.metrics import rank_topk_reference
from ..manifolds import (
    PoincareBall,
    einstein_midpoint_batch,
    einstein_midpoint_batch_reference_np,
)
from ..models.graph import BipartiteGraph
from ..taxonomy import poincare_kmeans
from ..taxonomy.clustering import poincare_kmeans_reference
from ..utils import ensure_rng
from .harness import BenchCase

__all__ = ["HOTPATH_CASES", "hotpath_cases"]

_BALL = PoincareBall()


class _FixedScores:
    """Evaluator workload model: a frozen random score matrix."""

    def __init__(self, n_users: int, n_items: int, seed: int = 0):
        rng = ensure_rng(seed)
        self.scores = rng.normal(size=(n_users, n_items))

    def score_users(self, users):
        return self.scores[np.asarray(users)]


# ----------------------------------------------------------------------
# Case builders
# ----------------------------------------------------------------------
def _topk_sizes(quick: bool) -> dict:
    return {"n_users": 48, "n_items": 600, "k": 10} if quick else {
        "n_users": 384,
        "n_items": 6000,
        "k": 20,
    }


def _topk_setup(quick: bool):
    sizes = _topk_sizes(quick)
    rng = ensure_rng(0)
    scores = rng.normal(size=(sizes["n_users"], sizes["n_items"]))
    # Quantise a slice so the tiebreak path is exercised under timing too.
    scores[:, : sizes["n_items"] // 4] = np.round(
        scores[:, : sizes["n_items"] // 4], 1
    )
    return {"scores": scores, "k": sizes["k"]}


def _dataset_sizes(quick: bool) -> dict:
    return {"n_users": 40, "n_items": 60} if quick else {"n_users": 220, "n_items": 320}


def _evaluate_setup(quick: bool):
    sizes = _dataset_sizes(quick)
    ds = generate(
        SyntheticConfig(
            n_users=sizes["n_users"],
            n_items=sizes["n_items"],
            seed=11,
            name="bench",
        )
    )
    split = temporal_split(ds)
    model = _FixedScores(ds.n_users, ds.n_items, seed=3)
    return {"split": split, "model": model}


def _sampling_sizes(quick: bool) -> dict:
    return {"n_users": 40, "n_items": 60, "n_each": 5} if quick else {
        "n_users": 250,
        "n_items": 400,
        "n_each": 5,
    }


def _sampling_setup(quick: bool):
    sizes = _sampling_sizes(quick)
    train = generate(
        SyntheticConfig(
            n_users=sizes["n_users"], n_items=sizes["n_items"], seed=13, name="bench"
        )
    )
    sampler = TripletSampler(train, seed=0)
    users = np.tile(np.arange(train.n_users), 4)
    return {"sampler": sampler, "users": users, "n_each": sizes["n_each"]}


def _midpoint_sizes(quick: bool) -> dict:
    return {"n_items": 200, "n_tags": 40, "dim": 8} if quick else {
        "n_items": 4000,
        "n_tags": 200,
        "dim": 16,
    }


def _midpoint_setup(quick: bool):
    sizes = _midpoint_sizes(quick)
    rng = ensure_rng(5)
    klein = _BALL.proj(rng.normal(0.0, 0.2, size=(sizes["n_tags"], sizes["dim"])))
    psi = (rng.random((sizes["n_items"], sizes["n_tags"])) < 0.05).astype(np.float64)
    return {"klein": klein, "psi": psi}


def _gcn_setup(quick: bool):
    sizes = _dataset_sizes(quick)
    train = generate(
        SyntheticConfig(
            n_users=sizes["n_users"], n_items=sizes["n_items"], seed=17, name="bench"
        )
    )
    graph = BipartiteGraph(train)
    rng = ensure_rng(2)
    user_x = Tensor(rng.normal(size=(train.n_users, 16)))
    item_x = Tensor(rng.normal(size=(train.n_items, 16)))
    return {"graph": graph, "user_x": user_x, "item_x": item_x}


def _kmeans_sizes(quick: bool) -> dict:
    return {"n": 90, "dim": 4, "k": 4} if quick else {"n": 600, "dim": 8, "k": 8}


def _kmeans_setup(quick: bool):
    sizes = _kmeans_sizes(quick)
    rng = ensure_rng(9)
    points = _BALL.proj(rng.normal(0.0, 0.3, size=(sizes["n"], sizes["dim"])))
    init = points[rng.choice(sizes["n"], size=sizes["k"], replace=False)]
    return {"points": points, "k": sizes["k"], "init": init}


def hotpath_cases() -> list[BenchCase]:
    """Build the hot-path suite (fresh state factories each call)."""
    return [
        BenchCase(
            name="evaluator.topk",
            group="evaluator",
            setup=_topk_setup,
            fast=lambda s: rank_topk(s["scores"], s["k"]),
            reference=lambda s: rank_topk_reference(s["scores"], s["k"]),
            workload=_topk_sizes,
        ),
        BenchCase(
            name="evaluator.evaluate",
            group="evaluator",
            setup=_evaluate_setup,
            fast=lambda s: evaluate(s["model"], s["split"]),
            reference=lambda s: evaluate_reference(s["model"], s["split"]),
            workload=_dataset_sizes,
        ),
        BenchCase(
            name="sampling.negatives",
            group="sampling",
            setup=_sampling_setup,
            fast=lambda s: s["sampler"].sample_negatives(s["users"], s["n_each"]),
            reference=lambda s: s["sampler"].sample_negatives_reference(
                s["users"], s["n_each"]
            ),
            workload=_sampling_sizes,
        ),
        BenchCase(
            name="taxorec.einstein_midpoint",
            group="taxorec",
            setup=_midpoint_setup,
            fast=lambda s: einstein_midpoint_batch(
                Tensor(s["klein"]), Tensor(s["psi"])
            ).data,
            reference=lambda s: einstein_midpoint_batch_reference_np(
                s["klein"], s["psi"]
            ),
            workload=_midpoint_sizes,
        ),
        BenchCase(
            name="taxorec.gcn_propagation",
            group="taxorec",
            setup=_gcn_setup,
            fast=lambda s: _run_gcn(s, reference=False),
            reference=lambda s: _run_gcn(s, reference=True),
            workload=_dataset_sizes,
        ),
        BenchCase(
            name="clustering.poincare_kmeans",
            group="clustering",
            setup=_kmeans_setup,
            fast=lambda s: poincare_kmeans(
                s["points"], s["k"], rng=0, n_iter=10, init_centroids=s["init"]
            ),
            reference=lambda s: poincare_kmeans_reference(
                s["points"], s["k"], rng=0, n_iter=10, init_centroids=s["init"]
            ),
            workload=_kmeans_sizes,
        ),
    ]


def _run_gcn(state, reference: bool):
    with no_grad():
        return state["graph"].residual_gcn(
            state["user_x"], state["item_x"], n_layers=3, reference=reference
        )


HOTPATH_CASES = hotpath_cases()
