"""Streaming staleness benchmark cases (``--cases stream``).

One paired :class:`~repro.bench.harness.BenchCase` per replay window of
the staleness harness (:mod:`repro.stream.staleness`): the **fast** path
ingests the window's events and folds them into the frozen base
artifact; the **reference** path is the periodic full retrain the
fold-in is racing.  The recorded ``speedup`` is therefore exactly the
fold-in : retrain latency ratio the acceptance gate reads (≥ 50×), and
the ``workload`` block carries the metric side of the trade — NDCG@K of
fold-in, retrain and the untouched (frozen) artifact, plus the
fold-in/retrain ratio (≥ 0.9 on window 0).

The replay context (dataset, base model, window events) is built once
per quick-flag and shared by every case; metrics are computed once in
that build, so the timed paths measure fold-in/retrain work only.
Committed results live in ``BENCH_stream.json`` at the repo root;
``--quick`` writes CI smoke variants under ``benchmarks/results/``.
"""

from __future__ import annotations

from ..backend.constants import DIV_EPS
from ..stream.staleness import (
    StalenessConfig,
    build_context,
    fold_in_window,
    frozen_ndcg,
    retrain_window,
)
from .harness import BenchCase

__all__ = ["stream_cases", "DEFAULT_CONFIG"]

DEFAULT_CONFIG = StalenessConfig()

# Shared replay context per quick flag: (ctx, window metric records).
_CACHE: dict = {}


def _shared(quick: bool):
    if quick not in _CACHE:
        config = DEFAULT_CONFIG.quick() if quick else DEFAULT_CONFIG
        ctx = build_context(config)
        frozen = frozen_ndcg(ctx)
        windows = []
        for w in range(config.n_windows):
            _, fold = fold_in_window(ctx, w)
            _, retrain = retrain_window(ctx, w)
            windows.append(
                {
                    "window": w,
                    "events": len(ctx.window_events[w]),
                    "stream_users": int(len(ctx.stream_users)),
                    "ndcg_at_10": {
                        "fold_in": fold["ndcg"],
                        "retrain": retrain["ndcg"],
                        "frozen": frozen["ndcg"],
                    },
                    "recall_at_10": {
                        "fold_in": fold["recall"],
                        "retrain": retrain["recall"],
                        "frozen": frozen["recall"],
                    },
                    "ratio": fold["ndcg"] / max(retrain["ndcg"], DIV_EPS),
                }
            )
        _CACHE[quick] = (ctx, windows)
    return _CACHE[quick]


def stream_cases() -> list[BenchCase]:
    """Paired fold-in-vs-retrain cases, one per replay window."""
    cases = []
    for w in range(DEFAULT_CONFIG.n_windows):
        cases.append(
            BenchCase(
                name=f"stream.window{w}.foldin_vs_retrain",
                group="stream",
                setup=lambda quick, w=w: (_shared(quick)[0], w),
                fast=lambda state: fold_in_window(state[0], state[1]),
                reference=lambda state: retrain_window(state[0], state[1]),
                workload=lambda quick, w=w: dict(_shared(quick)[1][w]),
            )
        )
    return cases
