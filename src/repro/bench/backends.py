"""The backend benchmark suite: fused kernels vs the numpy reference.

Every case runs the *same* backend kernel twice through the paired
harness — the fast path under ``use_backend("fused")`` and the reference
path under ``use_backend("numpy")`` — so the reported speedup is exactly
the fused-over-reference ratio on identical inputs, and the differential
suite (``tests/test_backend_differential.py``) guarantees the two paths
agree within the fused backend's documented tolerance.

Cases cover the three hot families the backend seam was cut for:

* hyperbolic distance — ``sq_dist_lorentz`` and ``poincare_dist_matrix``,
  the kernels behind HGCF/HyperML/TaxoRec scoring and taxonomy k-means;
* batched scoring — ``sq_dist_euclid_gram`` (CML/SML and the
  ``neg_sq_euclid`` frozen score-fn) and the broadcast twin;
* GCN hot-path maps — ``lorentz_expmap0``/``lorentz_logmap0``, the
  tangent-space round-trip every hyperbolic GCN layer makes.

Results land in ``BENCH_backends.json`` (``python -m repro.bench --cases
backends``); the committed document is the performance trajectory for the
fused backend.
"""

from __future__ import annotations

import numpy as np

from ..backend import use_backend
from ..backend.constants import DIV_EPS
from ..utils import ensure_rng
from .harness import BenchCase

__all__ = ["BACKEND_CASES", "backend_cases"]


def _pair_sizes(quick: bool) -> dict:
    return {"b": 48, "n": 256, "d": 16} if quick else {"b": 512, "n": 2048, "d": 32}


def _lorentz_rows(rng, n: int, d: int) -> np.ndarray:
    spatial = rng.normal(0.0, 0.1, size=(n, d))
    time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
    return np.concatenate([time, spatial], axis=-1)


def _poincare_rows(rng, n: int, d: int) -> np.ndarray:
    x = rng.normal(0.0, 0.1, size=(n, d))
    norm = np.linalg.norm(x, axis=-1, keepdims=True)
    return x * np.tanh(norm) / np.maximum(norm, DIV_EPS)


def _pair_setup(kind: str):
    def setup(quick: bool):
        sizes = _pair_sizes(quick)
        rng = ensure_rng(3)
        if kind == "lorentz":
            u = _lorentz_rows(rng, sizes["b"], sizes["d"])
            v = _lorentz_rows(rng, sizes["n"], sizes["d"])
        elif kind == "poincare":
            u = _poincare_rows(rng, sizes["b"], sizes["d"])
            v = _poincare_rows(rng, sizes["n"], sizes["d"])
        else:
            u = rng.normal(size=(sizes["b"], sizes["d"]))
            v = rng.normal(size=(sizes["n"], sizes["d"]))
        return {"u": u, "v": v}

    return setup


def _map_setup(quick: bool):
    sizes = _pair_sizes(quick)
    rng = ensure_rng(5)
    z = rng.normal(0.0, 0.1, size=(sizes["n"], sizes["d"]))
    return {"z": z, "x": _lorentz_rows(rng, sizes["n"], sizes["d"])}


def _kernel_case(name: str, kind: str, kernel: str, keys=("u", "v"), setup=None):
    """Paired case: ``kernel`` under the fused backend vs under numpy."""

    def fast(state):
        with use_backend("fused") as xp:
            return getattr(xp, kernel)(*(state[k] for k in keys))

    def reference(state):
        with use_backend("numpy") as xp:
            return getattr(xp, kernel)(*(state[k] for k in keys))

    return BenchCase(
        name=name,
        group="backend",
        setup=setup or _pair_setup(kind),
        fast=fast,
        reference=reference,
        workload=lambda quick: {**_pair_sizes(quick), "kernel": kernel},
    )


BACKEND_CASES: list[BenchCase] = [
    _kernel_case("backend.sq_dist_lorentz", "lorentz", "sq_dist_lorentz"),
    _kernel_case("backend.scoring_euclid_gram", "euclid", "sq_dist_euclid_gram"),
    _kernel_case("backend.scoring_euclid_broadcast", "euclid", "sq_dist_euclid_broadcast"),
    _kernel_case("backend.poincare_dist_matrix", "poincare", "poincare_dist_matrix"),
    _kernel_case("backend.gcn_expmap0", None, "lorentz_expmap0", keys=("z",), setup=_map_setup),
    _kernel_case("backend.gcn_logmap0", None, "lorentz_logmap0", keys=("x",), setup=_map_setup),
]


def backend_cases() -> list[BenchCase]:
    """The backend suite (fresh list; callers may filter freely)."""
    return list(BACKEND_CASES)
