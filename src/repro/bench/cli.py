"""``python -m repro.bench`` — run a registered benchmark suite.

Usage:
    python -m repro.bench                    # hot paths -> BENCH_hotpaths.json
    python -m repro.bench --cases backends   # fused-vs-numpy -> BENCH_backends.json
    python -m repro.bench --quick            # CI smoke workloads -> BENCH_smoke.json
    python -m repro.bench --only kmeans      # substring filter
    python -m repro.bench --backend fused    # activate a compute backend first
    python -m repro.bench --list             # show cases and exit
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..backend import UnknownBackendError, activate_backend, available_backends
from ..utils import render_table
from .backends import backend_cases
from .harness import run_cases, write_result
from .hotpaths import hotpath_cases
from .retrieval import retrieval_cases
from .stream import stream_cases

__all__ = ["main", "build_parser", "CASE_SETS"]

# Registered case sets; the set name is the default suite name (and file
# stem), so --cases backends writes BENCH_backends.json.
CASE_SETS = {
    "hotpaths": hotpath_cases,
    "backends": backend_cases,
    "retrieval": retrieval_cases,
    "stream": stream_cases,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Paired fast-vs-reference benchmarks for the repo's hot paths",
    )
    parser.add_argument(
        "--cases",
        default="hotpaths",
        choices=sorted(CASE_SETS),
        help="registered case set to run (default: hotpaths)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workloads, suite name '<cases>_smoke'",
    )
    parser.add_argument("--only", default=None, help="substring filter on case names")
    parser.add_argument(
        "--out",
        default=None,
        help="result path (default: BENCH_<suite>.json in the working directory)",
    )
    parser.add_argument("--suite", default=None, help="override the suite name")
    parser.add_argument("--warmup", type=int, default=1, help="warmup calls per path")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed calls per path (default 5, 2 in --quick)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()} "
                        "(default: $REPRO_BACKEND or 'numpy'); the backends "
                        "case set switches backends per path itself")
    parser.add_argument("--list", action="store_true", help="list cases and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the suite, print a table, write BENCH_<suite>.json."""
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        try:
            activate_backend(args.backend)
        except UnknownBackendError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    cases = CASE_SETS[args.cases]()
    if args.list:
        for case in cases:
            ref = "paired" if case.reference else "fast-only"
            print(f"{case.name}  [{case.group}, {ref}]")
        return 0

    if args.suite:
        suite = args.suite
    elif args.quick:
        # Historical name for the default set ("smoke", kept stable for
        # CI artifact paths); other sets get a distinguishing prefix.
        suite = "smoke" if args.cases == "hotpaths" else f"{args.cases}_smoke"
    else:
        suite = args.cases
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 5)
    result = run_cases(
        cases,
        suite=suite,
        quick=args.quick,
        warmup=args.warmup,
        repeats=repeats,
        only=args.only,
    )
    if not result["benchmarks"]:
        print(f"no cases match --only {args.only!r}")
        return 2

    rows = []
    for record in result["benchmarks"]:
        fast_ms = 1e3 * record["fast"]["best_s"]
        if record["reference"] is not None:
            ref_ms = 1e3 * record["reference"]["best_s"]
            rows.append(
                [record["name"], f"{fast_ms:.3f}", f"{ref_ms:.3f}", f"{record['speedup']:.1f}x"]
            )
        else:
            rows.append([record["name"], f"{fast_ms:.3f}", "-", "-"])
    print(render_table(["case", "fast best (ms)", "reference best (ms)", "speedup"], rows))

    out = Path(args.out) if args.out else Path(f"BENCH_{suite}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    write_result(result, out)
    print(f"wrote {out}")
    return 0
