"""Tag taxonomy data structure produced by the construction algorithm.

A taxonomy is a tree of tag-set nodes (paper Fig. 4): each node holds the
tags clustered into it; *general* tags detected by the adaptive clustering
(Algorithm 1) are retained at the node itself, while the remaining tags are
partitioned among its children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["TaxonomyNode", "Taxonomy"]


@dataclass
class TaxonomyNode:
    """One node of the constructed taxonomy.

    Parameters
    ----------
    members:
        All tag ids contained in this node's subtree (the tag set ``G_k``).
    general_tags:
        Tags retained at this node by the push-up rule — the general
        concepts whose representativeness fell below δ in every child.
    scores:
        ``s(t, G_k)`` for every member tag (aligned with ``members``),
        used as the regularisation weights of Eq. 8.
    level:
        Depth of the node; the root is level 0.
    children:
        Child nodes (fine-grained splits).
    """

    members: np.ndarray
    general_tags: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    scores: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.float64))
    level: int = 0
    children: list["TaxonomyNode"] = field(default_factory=list)

    def __post_init__(self):
        self.members = np.asarray(self.members, dtype=np.int64)
        self.general_tags = np.asarray(self.general_tags, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def __repr__(self) -> str:
        return (
            f"TaxonomyNode(level={self.level}, members={len(self.members)}, "
            f"general={len(self.general_tags)}, children={len(self.children)})"
        )


class Taxonomy:
    """Constructed tag taxonomy with traversal and rendering helpers."""

    def __init__(self, root: TaxonomyNode, n_tags: int):
        self.root = root
        self.n_tags = n_tags

    @classmethod
    def from_parent_array(cls, parent: np.ndarray) -> "Taxonomy":
        """Build a taxonomy from an existing parent array.

        Supports the paper's future-work setting of *incorporating an
        existing taxonomy*: ``parent[t]`` is tag ``t``'s parent (or -1).
        Each tag with children becomes a node holding its subtree, with the
        tag itself retained as the node's general tag.
        """
        parent = np.asarray(parent, dtype=np.int64)
        n_tags = len(parent)
        children: dict[int, list[int]] = {t: [] for t in range(-1, n_tags)}
        for t, p in enumerate(parent):
            children[int(p)].append(t)

        def subtree_tags(t: int) -> list[int]:
            out = [t]
            for c in children[t]:
                out.extend(subtree_tags(c))
            return out

        def make_node(tag: int, level: int) -> TaxonomyNode:
            members = np.array(subtree_tags(tag), dtype=np.int64)
            node = TaxonomyNode(
                members=members,
                general_tags=np.array([tag], dtype=np.int64),
                scores=np.ones(len(members)),
                level=level,
            )
            node.children = [make_node(c, level + 1) for c in children[tag]]
            return node

        root = TaxonomyNode(
            members=np.arange(n_tags, dtype=np.int64),
            general_tags=np.array([], dtype=np.int64),
            scores=np.ones(n_tags),
            level=0,
        )
        root.children = [make_node(t, 1) for t in children[-1]]
        return cls(root, n_tags=n_tags)

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[TaxonomyNode]:
        """Pre-order traversal over every node, root first."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    @property
    def depth(self) -> int:
        """Maximum node level in the tree."""
        return max(node.level for node in self.nodes())

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return sum(1 for _ in self.nodes())

    def level_partition(self, level: int) -> list[np.ndarray]:
        """Member sets of all nodes at exactly ``level`` (the level's clustering)."""
        return [node.members for node in self.nodes() if node.level == level]

    def tag_level(self) -> np.ndarray:
        """For every tag, the deepest node level at which it appears.

        General tags pushed up at shallow levels report small values;
        fine-grained tags survive down to the leaves.
        """
        levels = np.zeros(self.n_tags, dtype=np.int64)
        for node in self.nodes():
            for t in node.members:
                levels[t] = max(levels[t], node.level)
        return levels

    def ancestor_pairs(self) -> set[tuple[int, int]]:
        """Predicted (ancestor_tag, descendant_tag) pairs.

        A tag retained as *general* at a node is treated as a hypernym of
        every tag that descends into the node's children — the relation the
        push-up rule is designed to discover.
        """
        pairs: set[tuple[int, int]] = set()

        def visit(node: TaxonomyNode) -> None:
            below = set()
            for child in node.children:
                below.update(int(t) for t in child.members)
            for g in node.general_tags:
                for t in below:
                    if int(g) != t:
                        pairs.add((int(g), t))
            for child in node.children:
                visit(child)

        visit(self.root)
        return pairs

    def render(self, tag_names: list[str] | None = None, max_tags: int = 6) -> str:
        """ASCII rendering (used by the Fig. 6 reproduction)."""
        lines: list[str] = []

        def label(tags: np.ndarray) -> str:
            shown = tags[:max_tags]
            names = [tag_names[t] if tag_names else str(t) for t in shown]
            suffix = f" …(+{len(tags) - max_tags})" if len(tags) > max_tags else ""
            return "{" + ", ".join(f"<{n}>" for n in names) + "}" + suffix

        def visit(node: TaxonomyNode, prefix: str) -> None:
            head = f"level-{node.level}"
            general = f" general={label(node.general_tags)}" if len(node.general_tags) else ""
            lines.append(f"{prefix}{head}: {len(node.members)} tags{general}")
            for child in node.children:
                visit(child, prefix + "  ")

        visit(self.root, "")
        return "\n".join(lines)
