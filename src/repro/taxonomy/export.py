"""Taxonomy interchange: JSON documents and networkx graphs.

Constructed taxonomies are the paper's interpretability artefact; this
module lets downstream tools consume them — a JSON document for UIs /
storage, and a ``networkx.DiGraph`` for graph analytics.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx
import numpy as np

from .tree import Taxonomy, TaxonomyNode

__all__ = ["to_dict", "from_dict", "save_json", "load_json", "to_networkx"]


def to_dict(taxonomy: Taxonomy, tag_names: list[str] | None = None) -> dict:
    """Serialise a taxonomy to plain JSON-compatible types."""

    def node_dict(node: TaxonomyNode) -> dict:
        out = {
            "level": node.level,
            "members": [int(t) for t in node.members],
            "general_tags": [int(t) for t in node.general_tags],
            "scores": [float(s) for s in node.scores],
            "children": [node_dict(c) for c in node.children],
        }
        if tag_names:
            out["general_names"] = [tag_names[t] for t in node.general_tags]
        return out

    return {"n_tags": taxonomy.n_tags, "root": node_dict(taxonomy.root)}


def from_dict(data: dict) -> Taxonomy:
    """Inverse of :func:`to_dict`."""

    def build(node_data: dict) -> TaxonomyNode:
        node = TaxonomyNode(
            members=np.array(node_data["members"], dtype=np.int64),
            general_tags=np.array(node_data["general_tags"], dtype=np.int64),
            scores=np.array(node_data["scores"], dtype=np.float64),
            level=int(node_data["level"]),
        )
        node.children = [build(c) for c in node_data["children"]]
        return node

    return Taxonomy(build(data["root"]), n_tags=int(data["n_tags"]))


def save_json(taxonomy: Taxonomy, path: str | Path, tag_names: list[str] | None = None) -> None:
    """Write :func:`to_dict` output as a JSON file."""
    Path(path).write_text(json.dumps(to_dict(taxonomy, tag_names), indent=2))


def load_json(path: str | Path) -> Taxonomy:
    """Read a taxonomy written by :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))


def to_networkx(taxonomy: Taxonomy, tag_names: list[str] | None = None) -> nx.DiGraph:
    """Directed graph: one node per taxonomy node, edges parent → child.

    Node attributes: ``level``, ``size`` (member count), ``general`` (tag
    names or ids retained at the node).
    """
    graph = nx.DiGraph()
    counter = 0

    def visit(node: TaxonomyNode, parent_id: int | None) -> None:
        nonlocal counter
        node_id = counter
        counter += 1
        general = [
            tag_names[t] if tag_names else int(t) for t in node.general_tags
        ]
        graph.add_node(node_id, level=node.level, size=len(node.members), general=general)
        if parent_id is not None:
            graph.add_edge(parent_id, node_id)
        for child in node.children:
            visit(child, node_id)

    visit(taxonomy.root, None)
    return graph
