"""Representation-aware tag scoring (paper Eqs. 4–7).

Given a candidate split of a node's tags into groups ``G_1..G_K``, each tag
is scored by how *representative* it is of its group:

* **Context** (Eq. 4) — normalised frequency of the tag among the items
  covered by the group.
* **Structure** (Eq. 5) — a softmax over BM25-style retrieval scores
  (Eq. 6) measuring how concentrated the tag is on this group's items
  versus its siblings'.

The final score is the geometric mean ``s = sqrt(con · stru)`` (Eq. 7);
tags scoring below the threshold δ in their group are *general* and get
pushed up by the adaptive clustering.
"""

from __future__ import annotations

import numpy as np

from ..manifolds.constants import DIV_EPS

__all__ = ["argmax_tiebreak", "group_item_sets", "score_tags", "bm25_rank"]

# BM25 constants, set empirically by the paper (§IV-C1).
K1 = 1.2
B = 0.5


def argmax_tiebreak(scores: np.ndarray, ids: np.ndarray | None = None) -> int:
    """Index of the best score under the ``(-score, id)`` order.

    Returns the *position* in ``scores`` whose ``(−score, id)`` pair is
    smallest; ``ids`` defaults to positions.  Shared by node labelling
    and the streaming attach router so every taxonomy argmax breaks ties
    the same way as ``repro.eval.metrics.rank_topk`` — plain
    ``np.argmax`` resolves ties by array position, which silently
    depends on construction order.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("argmax_tiebreak needs at least one candidate")
    ids = np.arange(len(scores)) if ids is None else np.asarray(ids)
    return int(np.lexsort((ids, -scores))[0])


def group_item_sets(item_tags: np.ndarray, groups: list[np.ndarray]) -> list[np.ndarray]:
    """Map tag groups ``G_k`` to item sets ``E_k`` via the item-tag matrix Ψ.

    ``E_k`` contains every item carrying at least one tag of ``G_k``.
    """
    sets = []
    for group in groups:
        if len(group) == 0:
            sets.append(np.array([], dtype=np.int64))
            continue
        mask = item_tags[:, group].sum(axis=1) > 0
        sets.append(np.nonzero(mask)[0])
    return sets


def bm25_rank(item_tags: np.ndarray, tags: np.ndarray, item_set: np.ndarray) -> np.ndarray:
    """rank(t, E_k) of Eq. 6 for every tag in ``tags`` against one item set.

    Parameters
    ----------
    item_tags:
        ``(n_items, n_tags)`` binary matrix Ψ.
    tags:
        Tag ids to score.
    item_set:
        Item ids forming ``E_k``.

    Returns
    -------
    ndarray
        ``(len(tags),)`` BM25 retrieval scores.
    """
    if len(item_set) == 0:
        return np.zeros(len(tags), dtype=np.float64)
    sub = item_tags[item_set][:, tags]  # (|E_k|, |tags|)
    tf_t = sub.sum(axis=0)  # occurrences of each tag in E_k
    tf_e = float(item_tags[item_set].sum())  # total tag assignments in E_k
    avgdl = tf_e / max(len(item_set), 1)  # average tags per item in E_k
    idf = np.log((tf_e - tf_t + 0.5) / (tf_t + 0.5) + 1.0)
    denom = tf_t + K1 * (1.0 - B + B * tf_e / max(avgdl, DIV_EPS))
    return idf * tf_t * (K1 + 1.0) / np.maximum(denom, DIV_EPS)


def score_tags(
    item_tags: np.ndarray,
    groups: list[np.ndarray],
    item_sets: list[np.ndarray] | None = None,
) -> list[np.ndarray]:
    """Representativeness ``s(t, G_k)`` (Eq. 7) for every tag in every group.

    Parameters
    ----------
    item_tags:
        ``(n_items, n_tags)`` binary matrix Ψ.
    groups:
        Candidate tag groups ``G_1..G_K`` (arrays of tag ids).
    item_sets:
        Optional precomputed ``E_k``; computed from Ψ when omitted.

    Returns
    -------
    list of ndarray
        Per-group score arrays aligned with ``groups``.
    """
    if item_sets is None:
        item_sets = group_item_sets(item_tags, groups)

    # Structure factor needs every tag's rank against *every* sibling group.
    all_scores: list[np.ndarray] = []
    for k, (group, items) in enumerate(zip(groups, item_sets)):
        if len(group) == 0:
            all_scores.append(np.array([], dtype=np.float64))
            continue
        # Context (Eq. 4): log-normalised in-group frequency.
        if len(items) == 0:
            all_scores.append(np.zeros(len(group), dtype=np.float64))
            continue
        sub = item_tags[items][:, group]
        tf_t = sub.sum(axis=0)
        tf_e = float(item_tags[items].sum())
        con = np.log(tf_t + 1.0) / max(np.log(max(tf_e, 2.0)), DIV_EPS)

        # Structure (Eq. 5): softmax of BM25 ranks over sibling groups.
        own_rank = bm25_rank(item_tags, group, items)
        exp_sum = np.zeros(len(group), dtype=np.float64)
        for j, other_items in enumerate(item_sets):
            exp_sum += np.exp(
                np.clip(bm25_rank(item_tags, group, other_items), -30.0, 30.0)
            )
        stru = np.exp(np.clip(own_rank, -30.0, 30.0)) / (1.0 + exp_sum)

        all_scores.append(np.sqrt(np.maximum(con * stru, 0.0)))
    return all_scores
