"""Poincaré k-means and the adaptive clustering of Algorithm 1.

K-means in the Poincaré ball assigns by hyperbolic distance and recomputes
centroids with the Einstein midpoint in Klein coordinates (the hyperbolic
analogue of the arithmetic mean), following Nickel & Kiela's clustering
usage cited by the paper [34].

:func:`poincare_kmeans` is the vectorised production path: assignment uses
the Gram-matrix pairwise-distance kernel of
:meth:`~repro.manifolds.PoincareBall.dist_matrix_np` and centroid updates
scatter all points into their clusters in one pass.
:func:`poincare_kmeans_reference` replays the identical algorithm (same RNG
consumption, same reseeding rule) with per-point/per-centroid Python loops;
the differential tests pin the fast path to it.
"""

from __future__ import annotations

import numpy as np

from ..manifolds import (
    PoincareBall,
    einstein_midpoint_np,
    klein_to_poincare_np,
    poincare_to_klein_np,
)
from ..manifolds.constants import EPS as _EPS
from ..utils import ensure_rng
from .scoring import group_item_sets, score_tags

__all__ = ["poincare_kmeans", "poincare_kmeans_reference", "adaptive_cluster"]

_BALL = PoincareBall()


def _seed_centroids(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    dist_matrix,
) -> np.ndarray:
    """k-means++ seeding under the hyperbolic metric.

    ``dist_matrix`` is injected so the fast and reference paths consume the
    RNG identically while using their own distance kernels.
    """
    n = len(points)
    centroids = [points[rng.integers(n)]]
    for _ in range(1, k):
        dists = dist_matrix(points, np.stack(centroids)).min(axis=1)
        probs = dists**2
        total = probs.sum()
        if total <= 0:
            centroids.append(points[rng.integers(n)])
            continue
        centroids.append(points[rng.choice(n, p=probs / total)])
    return np.stack(centroids)


def poincare_kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | int | None = 0,
    n_iter: int = 25,
    tol: float = 1e-6,
    init_centroids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster Poincaré-ball points into ``k`` groups.

    Parameters
    ----------
    points:
        ``(n, d)`` points inside the unit ball.
    k:
        Number of clusters; if ``n < k`` every point gets its own cluster.
    rng:
        Seed or generator for the k-means++-style initialisation.
    n_iter:
        Maximum Lloyd iterations.
    tol:
        Stop when centroids move less than this (Poincaré distance).
    init_centroids:
        Optional explicit ``(k, d)`` initial centroids; skips the seeding
        (used by the differential tests to compare Lloyd iterations under
        a shared start).

    Returns
    -------
    (assignments, centroids):
        ``(n,)`` int labels in ``[0, k)`` and ``(k, d)`` ball centroids.
    """
    rng = ensure_rng(rng)
    n = len(points)
    if n == 0:
        return np.array([], dtype=np.int64), np.zeros((0, points.shape[1]))
    k = min(k, n)
    if init_centroids is not None:
        centroids = np.asarray(init_centroids, dtype=np.float64).copy()
        k = len(centroids)
    else:
        centroids = _seed_centroids(points, k, rng, _BALL.dist_matrix_np)

    # Klein coordinates and Lorentz factors are functions of the (fixed)
    # points only — hoist them out of the Lloyd loop.
    klein = poincare_to_klein_np(points)
    gamma = 1.0 / np.sqrt(np.maximum(1.0 - np.sum(klein * klein, axis=-1), _EPS))

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dist_matrix = _BALL.dist_matrix_np(points, centroids)  # (n, k)
        assignments = dist_matrix.argmin(axis=1)
        # Scatter every point's γ-weighted Klein coordinates into its
        # cluster: the per-cluster Einstein midpoints in one pass.
        w_sum = np.bincount(assignments, weights=gamma, minlength=k)
        wx = np.zeros((k, klein.shape[1]))
        np.add.at(wx, assignments, klein * gamma[:, None])
        mids = wx / np.maximum(w_sum, _EPS)[:, None]
        new_centroids = _BALL.proj(klein_to_poincare_np(mids))
        empty = w_sum == 0
        if empty.any():
            # Reseed empty clusters at the point farthest from its centroid.
            far = dist_matrix.min(axis=1).argmax()
            new_centroids[empty] = points[far]
        shift = _BALL.dist_np(centroids, new_centroids).max()
        centroids = new_centroids
        if shift < tol:
            break
    return assignments, centroids


def poincare_kmeans_reference(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | int | None = 0,
    n_iter: int = 25,
    tol: float = 1e-6,
    init_centroids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-point/per-centroid loop twin of :func:`poincare_kmeans`.

    Same contract, same RNG consumption and same reseeding rule, but every
    distance is a scalar evaluation and every midpoint a per-cluster call —
    the correctness anchor for the differential tests and the
    ``repro.bench`` speedup trajectory.
    """
    rng = ensure_rng(rng)
    n = len(points)
    if n == 0:
        return np.array([], dtype=np.int64), np.zeros((0, points.shape[1]))
    k = min(k, n)

    def dist_matrix_loops(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        out = np.zeros((len(x), len(y)))
        for i in range(len(x)):
            for j in range(len(y)):
                out[i, j] = _BALL.dist_np(x[i], y[j])
        return out

    if init_centroids is not None:
        centroids = np.asarray(init_centroids, dtype=np.float64).copy()
        k = len(centroids)
    else:
        centroids = _seed_centroids(points, k, rng, dist_matrix_loops)

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dist_matrix = dist_matrix_loops(points, centroids)
        assignments = dist_matrix.argmin(axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            mask = assignments == c
            if not mask.any():
                far = dist_matrix.min(axis=1).argmax()
                new_centroids[c] = points[far]
                continue
            klein = poincare_to_klein_np(points[mask])
            mid = einstein_midpoint_np(klein, np.ones(int(mask.sum())))
            new_centroids[c] = _BALL.proj(klein_to_poincare_np(mid[None, :]))[0]
        shift = max(
            _BALL.dist_np(centroids[c], new_centroids[c]) for c in range(k)
        )
        centroids = new_centroids
        if shift < tol:
            break
    return assignments, centroids


def adaptive_cluster(
    tags: np.ndarray,
    embeddings: np.ndarray,
    item_tags: np.ndarray,
    k: int,
    delta: float,
    rng: np.random.Generator | int | None = 0,
    max_rounds: int = 10,
) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
    """Algorithm 1: adaptive clustering with general-tag push-up.

    Iterates Poincaré k-means over the current tag subset, scores every tag
    in its group (Eq. 7), and removes tags scoring below δ — these are
    *general* tags that stay at the parent.  Terminates when no tag is
    removed (or after ``max_rounds``).

    Parameters
    ----------
    tags:
        Tag ids of the parent node.
    embeddings:
        ``(n_tags_total, d)`` Poincaré tag embedding table ``T^P``.
    item_tags:
        ``(n_items, n_tags_total)`` matrix Ψ.
    k:
        Number of children K.
    delta:
        Score threshold δ.
    rng:
        Seed or generator.

    Returns
    -------
    (groups, group_scores, pushed_up):
        Final child tag groups, their per-tag scores, and the tag ids
        pushed up to the parent.
    """
    rng = ensure_rng(rng)
    tags = np.asarray(tags, dtype=np.int64)
    subset = tags.copy()
    pushed: list[int] = []
    groups: list[np.ndarray] = [subset]
    scores: list[np.ndarray] = [np.ones(len(subset))]

    for _ in range(max_rounds):
        if len(subset) < k:
            break
        labels, _ = poincare_kmeans(embeddings[subset], k, rng=rng)
        groups = [subset[labels == c] for c in range(labels.max() + 1)]
        scores = score_tags(item_tags, groups)
        keep_groups: list[np.ndarray] = []
        keep_scores: list[np.ndarray] = []
        removed_any = False
        for group, group_score in zip(groups, scores):
            keep = group_score >= delta
            if not keep.all():
                removed_any = True
                pushed.extend(int(t) for t in group[~keep])
            keep_groups.append(group[keep])
            keep_scores.append(group_score[keep])
        groups, scores = keep_groups, keep_scores
        new_subset = (
            np.concatenate(groups) if any(len(g) for g in groups) else np.array([], dtype=np.int64)
        )
        if not removed_any or len(new_subset) == len(subset):
            subset = new_subset
            break
        subset = new_subset

    kept = [(g, s) for g, s in zip(groups, scores) if len(g)]
    groups = [g for g, _ in kept]
    scores = [s for _, s in kept]
    return groups, scores, np.array(sorted(set(pushed)), dtype=np.int64)
