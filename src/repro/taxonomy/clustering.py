"""Poincaré k-means and the adaptive clustering of Algorithm 1.

K-means in the Poincaré ball assigns by hyperbolic distance and recomputes
centroids with the Einstein midpoint in Klein coordinates (the hyperbolic
analogue of the arithmetic mean), following Nickel & Kiela's clustering
usage cited by the paper [34].
"""

from __future__ import annotations

import numpy as np

from ..manifolds import PoincareBall, einstein_midpoint_np, klein_to_poincare_np, poincare_to_klein_np
from ..utils import ensure_rng
from .scoring import group_item_sets, score_tags

__all__ = ["poincare_kmeans", "adaptive_cluster"]

_BALL = PoincareBall()


def poincare_kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | int | None = 0,
    n_iter: int = 25,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster Poincaré-ball points into ``k`` groups.

    Parameters
    ----------
    points:
        ``(n, d)`` points inside the unit ball.
    k:
        Number of clusters; if ``n < k`` every point gets its own cluster.
    rng:
        Seed or generator for the k-means++-style initialisation.
    n_iter:
        Maximum Lloyd iterations.
    tol:
        Stop when centroids move less than this (Poincaré distance).

    Returns
    -------
    (assignments, centroids):
        ``(n,)`` int labels in ``[0, k)`` and ``(k, d)`` ball centroids.
    """
    rng = ensure_rng(rng)
    n = len(points)
    if n == 0:
        return np.array([], dtype=np.int64), np.zeros((0, points.shape[1]))
    k = min(k, n)

    # k-means++ seeding under the hyperbolic metric.
    centroids = [points[rng.integers(n)]]
    for _ in range(1, k):
        dists = np.min(
            np.stack([_BALL.dist_np(points, c[None, :]) for c in centroids]), axis=0
        )
        probs = dists**2
        total = probs.sum()
        if total <= 0:
            centroids.append(points[rng.integers(n)])
            continue
        centroids.append(points[rng.choice(n, p=probs / total)])
    centroids = np.stack(centroids)

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dist_matrix = _BALL.dist_matrix_np(points, centroids)  # (n, k)
        assignments = dist_matrix.argmin(axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            mask = assignments == c
            if not mask.any():
                # Reseed empty cluster at the point farthest from its centroid.
                far = dist_matrix.min(axis=1).argmax()
                new_centroids[c] = points[far]
                continue
            klein = poincare_to_klein_np(points[mask])
            mid = einstein_midpoint_np(klein, np.ones(mask.sum()))
            new_centroids[c] = _BALL.proj(klein_to_poincare_np(mid[None, :]))[0]
        shift = _BALL.dist_np(centroids, new_centroids).max()
        centroids = new_centroids
        if shift < tol:
            break
    return assignments, centroids


def adaptive_cluster(
    tags: np.ndarray,
    embeddings: np.ndarray,
    item_tags: np.ndarray,
    k: int,
    delta: float,
    rng: np.random.Generator | int | None = 0,
    max_rounds: int = 10,
) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
    """Algorithm 1: adaptive clustering with general-tag push-up.

    Iterates Poincaré k-means over the current tag subset, scores every tag
    in its group (Eq. 7), and removes tags scoring below δ — these are
    *general* tags that stay at the parent.  Terminates when no tag is
    removed (or after ``max_rounds``).

    Parameters
    ----------
    tags:
        Tag ids of the parent node.
    embeddings:
        ``(n_tags_total, d)`` Poincaré tag embedding table ``T^P``.
    item_tags:
        ``(n_items, n_tags_total)`` matrix Ψ.
    k:
        Number of children K.
    delta:
        Score threshold δ.
    rng:
        Seed or generator.

    Returns
    -------
    (groups, group_scores, pushed_up):
        Final child tag groups, their per-tag scores, and the tag ids
        pushed up to the parent.
    """
    rng = ensure_rng(rng)
    tags = np.asarray(tags, dtype=np.int64)
    subset = tags.copy()
    pushed: list[int] = []
    groups: list[np.ndarray] = [subset]
    scores: list[np.ndarray] = [np.ones(len(subset))]

    for _ in range(max_rounds):
        if len(subset) < k:
            break
        labels, _ = poincare_kmeans(embeddings[subset], k, rng=rng)
        groups = [subset[labels == c] for c in range(labels.max() + 1)]
        scores = score_tags(item_tags, groups)
        keep_groups: list[np.ndarray] = []
        keep_scores: list[np.ndarray] = []
        removed_any = False
        for group, group_score in zip(groups, scores):
            keep = group_score >= delta
            if not keep.all():
                removed_any = True
                pushed.extend(int(t) for t in group[~keep])
            keep_groups.append(group[keep])
            keep_scores.append(group_score[keep])
        groups, scores = keep_groups, keep_scores
        new_subset = (
            np.concatenate(groups) if any(len(g) for g in groups) else np.array([], dtype=np.int64)
        )
        if not removed_any or len(new_subset) == len(subset):
            subset = new_subset
            break
        subset = new_subset

    kept = [(g, s) for g, s in zip(groups, scores) if len(g)]
    groups = [g for g, _ in kept]
    scores = [s for _, s in kept]
    return groups, scores, np.array(sorted(set(pushed)), dtype=np.int64)
