"""Quantitative taxonomy-recovery metrics against a planted ground truth.

The paper evaluates constructed taxonomies qualitatively (Fig. 6, RQ4).
Because our synthetic datasets plant the true taxonomy, we can also score
recovery: ancestor-pair precision/recall/F1 and per-level clustering
agreement (NMI).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tree import Taxonomy

__all__ = ["RecoveryReport", "ancestor_pairs_from_parent", "ancestor_f1", "partition_nmi", "evaluate_recovery"]


def ancestor_pairs_from_parent(parent: np.ndarray) -> set[tuple[int, int]]:
    """All (ancestor, descendant) tag pairs implied by a parent array."""
    pairs: set[tuple[int, int]] = set()
    for t in range(len(parent)):
        cur = parent[t]
        while cur != -1:
            pairs.add((int(cur), t))
            cur = parent[cur]
    return pairs


def ancestor_f1(
    predicted: set[tuple[int, int]], truth: set[tuple[int, int]]
) -> tuple[float, float, float]:
    """Precision, recall and F1 of predicted ancestor pairs."""
    if not predicted and not truth:
        return 1.0, 1.0, 1.0
    hit = len(predicted & truth)
    precision = hit / len(predicted) if predicted else 0.0
    recall = hit / len(truth) if truth else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def _entropy(labels: np.ndarray) -> float:
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def partition_nmi(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Normalised mutual information between two labelings of the same tags."""
    if len(labels_a) != len(labels_b):
        raise ValueError("labelings must cover the same elements")
    n = len(labels_a)
    if n == 0:
        return 1.0
    ha, hb = _entropy(labels_a), _entropy(labels_b)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    mi = 0.0
    for a in np.unique(labels_a):
        mask_a = labels_a == a
        pa = mask_a.mean()
        for b in np.unique(labels_b):
            joint = (mask_a & (labels_b == b)).mean()
            if joint > 0:
                pb = (labels_b == b).mean()
                mi += joint * np.log(joint / (pa * pb))
    denom = np.sqrt(ha * hb)
    return float(mi / denom) if denom > 0 else 0.0


def _truth_level_labels(parent: np.ndarray, level: int) -> np.ndarray:
    """Ground-truth label of each tag: its ancestor at depth ``level`` (or itself)."""
    depths = np.zeros(len(parent), dtype=np.int64)
    for t in range(len(parent)):
        d, cur = 0, parent[t]
        while cur != -1:
            d += 1
            cur = parent[cur]
        depths[t] = d
    labels = np.arange(len(parent), dtype=np.int64)
    for t in range(len(parent)):
        cur = t
        while depths[cur] > level and parent[cur] != -1:
            cur = int(parent[cur])
        labels[t] = cur
    return labels


@dataclass
class RecoveryReport:
    """Taxonomy-recovery scores for one constructed tree."""

    ancestor_precision: float
    ancestor_recall: float
    ancestor_f1: float
    level1_nmi: float
    depth: int
    n_nodes: int

    def as_row(self) -> list[object]:
        """Render as one recovery-report row."""
        return [
            f"{self.ancestor_precision:.3f}",
            f"{self.ancestor_recall:.3f}",
            f"{self.ancestor_f1:.3f}",
            f"{self.level1_nmi:.3f}",
            self.depth,
            self.n_nodes,
        ]


def evaluate_recovery(taxonomy: Taxonomy, parent: np.ndarray) -> RecoveryReport:
    """Score a constructed taxonomy against the planted parent array."""
    predicted = taxonomy.ancestor_pairs()
    truth = ancestor_pairs_from_parent(parent)
    precision, recall, f1 = ancestor_f1(predicted, truth)

    # Level-1 clustering agreement: compare the top split's partition of
    # tags against the ground-truth top-level subtrees.
    level1 = taxonomy.level_partition(1)
    n_tags = taxonomy.n_tags
    constructed = np.full(n_tags, -1, dtype=np.int64)
    for c, members in enumerate(level1):
        constructed[members] = c
    covered = constructed >= 0
    if covered.any():
        truth_labels = _truth_level_labels(parent, level=0)
        nmi = partition_nmi(constructed[covered], truth_labels[covered])
    else:
        nmi = 0.0

    return RecoveryReport(
        ancestor_precision=precision,
        ancestor_recall=recall,
        ancestor_f1=f1,
        level1_nmi=nmi,
        depth=taxonomy.depth,
        n_nodes=taxonomy.n_nodes,
    )
