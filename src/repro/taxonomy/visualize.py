"""Dependency-free SVG rendering of Poincaré-disc embeddings.

Produces the paper's Fig. 3/Fig. 6-style pictures — tag points inside the
unit disc, coloured by taxonomy subtree, with parent-child edges — as a
standalone SVG string (no matplotlib required offline).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["poincare_disc_svg", "save_svg"]

_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def poincare_disc_svg(
    points: np.ndarray,
    labels: np.ndarray | None = None,
    edges: list[tuple[int, int]] | None = None,
    names: list[str] | None = None,
    size: int = 480,
    point_radius: float = 4.0,
) -> str:
    """Render 2-D Poincaré-ball points as an SVG document.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates with ``||p|| < 1``.
    labels:
        Optional integer group per point (colours cycle through a palette).
    edges:
        Optional point-index pairs drawn as straight chords (e.g.
        parent-child tag relations).
    names:
        Optional hover titles per point.
    size:
        Canvas size in pixels.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if np.linalg.norm(points, axis=1).max(initial=0.0) >= 1.0:
        raise ValueError("points must lie strictly inside the unit disc")

    center = size / 2.0
    radius = size / 2.0 - 4.0

    def to_px(p):
        return center + p[0] * radius, center - p[1] * radius

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<circle cx="{center}" cy="{center}" r="{radius}" fill="#fdfdfd" '
        f'stroke="#333" stroke-width="1.5"/>',
    ]
    if edges:
        for a, b in edges:
            xa, ya = to_px(points[a])
            xb, yb = to_px(points[b])
            parts.append(
                f'<line x1="{xa:.1f}" y1="{ya:.1f}" x2="{xb:.1f}" y2="{yb:.1f}" '
                f'stroke="#bbb" stroke-width="0.8"/>'
            )
    for i, p in enumerate(points):
        x, y = to_px(p)
        color = _PALETTE[int(labels[i]) % len(_PALETTE)] if labels is not None else _PALETTE[0]
        title = f"<title>{names[i]}</title>" if names else ""
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{point_radius}" fill="{color}" '
            f'fill-opacity="0.85" stroke="#222" stroke-width="0.4">{title}</circle>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | Path) -> None:
    """Write an SVG document to disk."""
    Path(path).write_text(svg)
