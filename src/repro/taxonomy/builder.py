"""Recursive top-down taxonomy construction (paper §IV-C, Fig. 4).

Starting from a root node containing every tag, each node is split into K
children by the adaptive clustering (Algorithm 1); general tags detected by
the push-up rule stay at the node, the rest descend.  Recursion stops when
a node is too small or the depth budget is exhausted.
"""

from __future__ import annotations

import numpy as np

from ..utils import ensure_rng
from .clustering import adaptive_cluster
from .scoring import score_tags
from .tree import Taxonomy, TaxonomyNode

__all__ = ["build_taxonomy"]


def build_taxonomy(
    embeddings: np.ndarray,
    item_tags: np.ndarray,
    k: int = 3,
    delta: float = 0.5,
    max_depth: int = 4,
    min_node_size: int = 4,
    rng: np.random.Generator | int | None = 0,
) -> Taxonomy:
    """Construct a tag taxonomy from Poincaré tag embeddings.

    Parameters
    ----------
    embeddings:
        ``(n_tags, d)`` Poincaré-ball tag embedding table ``T^P``.
    item_tags:
        ``(n_items, n_tags)`` item-tag matrix Ψ.
    k:
        Children per node (paper's K ∈ {2, 3, 4}).
    delta:
        General-tag threshold δ (paper's δ ∈ {0.25, 0.5, 0.75}).
    max_depth:
        Maximum node level.
    min_node_size:
        Nodes with fewer tags than this become leaves.
    rng:
        Seed or generator.

    Returns
    -------
    Taxonomy
        Tree whose nodes carry member tags, general tags and Eq.-7 scores
        (the weights of the Eq.-8 regulariser).
    """
    rng = ensure_rng(rng)
    n_tags = embeddings.shape[0]
    all_tags = np.arange(n_tags, dtype=np.int64)

    def node_scores(members: np.ndarray) -> np.ndarray:
        """Eq.-7 scores of a node's members treated as a single group."""
        if len(members) == 0:
            return np.array([], dtype=np.float64)
        return score_tags(item_tags, [members])[0]

    def split(members: np.ndarray, level: int) -> TaxonomyNode:
        node = TaxonomyNode(members=members, level=level, scores=node_scores(members))
        if level >= max_depth or len(members) < max(min_node_size, k + 1):
            node.general_tags = members.copy()
            return node
        groups, _, pushed = adaptive_cluster(
            members, embeddings, item_tags, k=k, delta=delta, rng=rng
        )
        if len(groups) < 2 and len(members) >= 2 * k:
            # Degenerate split: the push-up rule swallowed everything (all
            # scores below δ — typical when item-tag statistics are thin).
            # Fall back to the plain Poincaré k-means partition so the
            # hierarchy still materialises; no tag is marked general.
            from .clustering import poincare_kmeans

            labels, _ = poincare_kmeans(embeddings[members], k, rng=rng)
            groups = [members[labels == c] for c in range(labels.max() + 1)]
            groups = [g for g in groups if len(g)]
            pushed = np.array([], dtype=np.int64)
        if len(groups) < 2:
            node.general_tags = members.copy()
            return node
        node.general_tags = pushed
        covered = set(int(t) for t in pushed)
        for group in groups:
            covered.update(int(t) for t in group)
            node.children.append(split(group, level + 1))
        # Tags dropped by degenerate clusterings stay general at this node.
        missing = np.array(
            [int(t) for t in members if int(t) not in covered], dtype=np.int64
        )
        if len(missing):
            node.general_tags = np.concatenate([node.general_tags, missing])
        return node

    root = split(all_tags, level=0)
    return Taxonomy(root, n_tags=n_tags)
