"""Automated tag taxonomy construction (paper §IV-C)."""

from .builder import build_taxonomy
from .export import from_dict, load_json, save_json, to_dict, to_networkx
from .labeling import label_taxonomy, node_label
from .visualize import poincare_disc_svg, save_svg
from .clustering import adaptive_cluster, poincare_kmeans, poincare_kmeans_reference
from .metrics import (
    RecoveryReport,
    ancestor_f1,
    ancestor_pairs_from_parent,
    evaluate_recovery,
    partition_nmi,
)
from .regularizer import taxonomy_regularizer
from .scoring import argmax_tiebreak, bm25_rank, group_item_sets, score_tags
from .tree import Taxonomy, TaxonomyNode

__all__ = [
    "Taxonomy",
    "TaxonomyNode",
    "build_taxonomy",
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
    "to_networkx",
    "poincare_disc_svg",
    "node_label",
    "label_taxonomy",
    "save_svg",
    "poincare_kmeans",
    "poincare_kmeans_reference",
    "adaptive_cluster",
    "score_tags",
    "argmax_tiebreak",
    "bm25_rank",
    "group_item_sets",
    "taxonomy_regularizer",
    "evaluate_recovery",
    "RecoveryReport",
    "ancestor_f1",
    "ancestor_pairs_from_parent",
    "partition_nmi",
]
