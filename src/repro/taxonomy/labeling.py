"""Automatic node labelling for constructed taxonomies.

A taxonomy node is a *set* of tags; for display (the paper's Fig. 6 and
Table V) each node needs a headline concept.  The natural label is the
node's most representative tag: the general tag retained by the push-up
rule if one exists, otherwise the member with the highest Eq.-7 score.
"""

from __future__ import annotations

import numpy as np

from .scoring import argmax_tiebreak, score_tags
from .tree import Taxonomy, TaxonomyNode

__all__ = ["node_label", "label_taxonomy"]


def node_label(
    node: TaxonomyNode,
    item_tags: np.ndarray | None = None,
    tag_names: list[str] | None = None,
) -> str:
    """Headline concept for one node.

    Preference order: highest-scoring retained general tag → highest
    Eq.-7 member (recomputed against Ψ when provided and the node carries
    no scores) → first member.
    """
    candidates: np.ndarray
    scores: np.ndarray
    if len(node.general_tags):
        candidates = node.general_tags
        member_index = {int(t): i for i, t in enumerate(node.members)}
        if len(node.scores) == len(node.members):
            scores = np.array(
                [node.scores[member_index.get(int(t), 0)] for t in candidates]
            )
        else:
            scores = np.ones(len(candidates))
    elif len(node.members):
        candidates = node.members
        if len(node.scores) == len(node.members):
            scores = node.scores
        elif item_tags is not None:
            scores = score_tags(item_tags, [node.members])[0]
        else:
            scores = np.ones(len(candidates))
    else:
        return "(empty)"
    # (-score, tag id) tiebreak: equal-scoring candidates label by the
    # lowest tag id, not whichever happens to sit first in the array.
    best = int(candidates[argmax_tiebreak(scores, ids=candidates)])
    return tag_names[best] if tag_names else f"tag_{best}"


def label_taxonomy(
    taxonomy: Taxonomy,
    item_tags: np.ndarray | None = None,
    tag_names: list[str] | None = None,
) -> list[tuple[int, str, int]]:
    """Label every node; returns ``(level, label, member_count)`` rows in
    pre-order — ready for an outline rendering of the tree."""
    rows = []
    for node in taxonomy.nodes():
        rows.append((node.level, node_label(node, item_tags, tag_names), len(node.members)))
    return rows
