"""Taxonomy-aware regularisation loss L_reg (paper Eq. 8).

For every node ``G_k`` of the constructed taxonomy, member tags are pulled
toward the node's score-weighted centre:

    L_reg = Σ_{G_k} Σ_{t_i ∈ G_k} d_P(T_i, Σ_j s(t_j, G_k) T_j / Σ_l s(t_l, G_k))

Fine-grained tags appear in a node at every level along their path and are
therefore regularised more strongly than general tags retained near the
root — exactly the positive level/strength correlation the paper argues for.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..manifolds import PoincareBall
from .tree import Taxonomy

__all__ = ["taxonomy_regularizer"]

_BALL = PoincareBall()


def taxonomy_regularizer(tag_embeddings: Tensor, taxonomy: Taxonomy) -> Tensor:
    """Differentiable L_reg over the Poincaré tag table.

    Parameters
    ----------
    tag_embeddings:
        ``(n_tags, d)`` Poincaré tag embeddings ``T^P`` (requires grad).
    taxonomy:
        The currently constructed taxonomy; node ``scores`` act as the
        fixed weights of the centre (they are recomputed only when the
        taxonomy itself is rebuilt, matching the paper's alternation).

    Returns
    -------
    Tensor
        Scalar loss (mean over all (node, tag) incidences so λ is
        comparable across taxonomy shapes).
    """
    total: Tensor | None = None
    count = 0
    for node in taxonomy.nodes():
        members = node.members
        if len(members) < 2:
            continue
        if len(members) == taxonomy.n_tags:
            # Skip the root: pulling *every* tag toward one global centre
            # encodes no hierarchy and, worse, collapses the tag space when
            # the taxonomy is still degenerate early in training.
            continue
        weights = node.scores if len(node.scores) == len(members) else np.ones(len(members))
        w_sum = float(weights.sum())
        if w_sum <= 0:
            weights = np.ones(len(members))
            w_sum = float(len(members))
        member_emb = tag_embeddings.take_rows(members)  # (m, d)
        w = Tensor((weights / w_sum)[:, None])
        center = (member_emb * w).sum(axis=0)  # (d,)
        dists = _BALL.dist(member_emb, center.reshape(1, -1))
        node_loss = dists.sum()
        total = node_loss if total is None else total + node_loss
        count += len(members)
    if total is None:
        return Tensor(0.0)
    return total / max(count, 1)
