"""``python -m repro stream`` — streaming fold-in from the command line.

Subcommands:

``fold``
    Load a frozen artifact, ingest a ``repro.events/v1`` file, fold the
    deltas in and write the result as a new artifact::

        python -m repro stream fold models/cml.npz --events events.json --out models/cml_folded.npz

``replay``
    Run the staleness replay (metrics only, no timing) and print the
    per-window fold-in vs retrain vs frozen NDCG table::

        python -m repro stream replay --model cml --preset ciao --windows 2

``bench``
    The paired latency benchmark (``repro.bench --cases stream``)::

        python -m repro stream bench --quick --out benchmarks/results/BENCH_stream_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..backend import UnknownBackendError, activate_backend, available_backends
from ..utils import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Streaming fold-in: ingest events, fold into frozen artifacts, measure staleness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fold = sub.add_parser("fold", help="fold an event file into a frozen artifact")
    fold.add_argument("artifact", help="input repro.model/v1 .npz artifact")
    fold.add_argument("--events", required=True, help="repro.events/v1 JSON file")
    fold.add_argument("--out", required=True, help="output artifact path (.npz)")
    fold.add_argument("--reference", action="store_true",
                      help="use the pure-numpy reference solvers (differential debugging)")
    fold.add_argument("--backend", default=None, metavar="NAME",
                      help=f"compute backend {available_backends()}")

    replay = sub.add_parser("replay", help="staleness replay: fold-in vs retrain vs frozen")
    replay.add_argument("--model", default="CML", help="registry model (default: CML)")
    replay.add_argument("--preset", default="ciao", help="synthetic preset (default: ciao)")
    replay.add_argument("--scale", type=float, default=0.5)
    replay.add_argument("--windows", type=int, default=2)
    replay.add_argument("--epochs", type=int, default=30)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--out", default=None, help="write the replay summary as JSON")
    replay.add_argument("--backend", default=None, metavar="NAME",
                        help=f"compute backend {available_backends()}")

    bench = sub.add_parser("bench", help="paired fold-in vs retrain latency benchmark")
    bench.add_argument("--quick", action="store_true", help="CI smoke workloads")
    bench.add_argument("--out", default=None, help="result path (default: BENCH_stream.json)")
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--backend", default=None, metavar="NAME",
                       help=f"compute backend {available_backends()}")
    return parser


def _activate(name: str | None) -> int:
    if name is None:
        return 0
    try:
        activate_backend(name)
    except UnknownBackendError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _fold(args) -> int:
    from ..serve.artifact import load_artifact, save_artifact
    from .append import fold_into_artifact
    from .events import StreamState, read_events

    artifact = load_artifact(args.artifact)
    state = StreamState.from_artifact(artifact)
    report = state.ingest(read_events(args.events))
    print(
        f"ingested {report.accepted} event(s) ({report.duplicates} duplicate(s), "
        f"{len(report.new_users)} new user(s), {len(report.new_items)} new item(s))"
    )
    folded = fold_into_artifact(artifact, state, use_reference=args.reference)
    out = save_artifact(folded, args.out)
    stream = folded.meta["stream"]
    print(
        f"wrote {out} (generation {stream['generation']}, "
        f"{len(stream['folded_users'])} folded user(s), "
        f"{len(stream['folded_items'])} folded item(s))"
    )
    return 0


def _replay(args) -> int:
    from .staleness import StalenessConfig, replay

    config = StalenessConfig(
        model=args.model,
        preset=args.preset,
        scale=args.scale,
        n_windows=args.windows,
        epochs=args.epochs,
        seed=args.seed,
    )
    summary = replay(config)
    rows = []
    for record in summary["windows"]:
        rows.append(
            [
                str(record["window"]),
                str(record["events"]),
                f"{record['fold_in']['ndcg']:.4f}",
                f"{record['retrain']['ndcg']:.4f}",
                f"{record['frozen']['ndcg']:.4f}",
                f"{record['ratio']:.3f}",
            ]
        )
    print(
        render_table(
            ["window", "events", "fold-in NDCG@10", "retrain NDCG@10", "frozen NDCG@10", "ratio"],
            rows,
        )
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def _bench(args) -> int:
    from ..bench.cli import main as bench_main

    argv = ["--cases", "stream"]
    if args.quick:
        argv.append("--quick")
    if args.out:
        argv.extend(["--out", args.out])
    if args.repeats is not None:
        argv.extend(["--repeats", str(args.repeats)])
    return bench_main(argv)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    code = _activate(args.backend)
    if code:
        return code
    if args.command == "fold":
        return _fold(args)
    if args.command == "replay":
        return _replay(args)
    return _bench(args)
