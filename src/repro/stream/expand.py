"""Incremental taxonomy expansion: attach new tags without reconstruction.

The batch pipeline rebuilds the whole taxonomy from scratch every
``taxo_every`` epochs.  Online, a new tag arrives with a column of
item-tag evidence and must be *attached* to the live tree — the
HyperExpan setting (PAPERS.md), solved here with the paper's own
representativeness score instead of a learned matcher: at each node, the
candidate tag is tentatively appended to each child's tag set ``G_k``
and scored with ``s(t, G_k)`` (Eq. 7, :func:`~repro.taxonomy.scoring.score_tags`)
against the sibling groups; the tag descends into the best-scoring child
while the score clears the ``delta`` threshold, and is retained as a
*general* tag (the push-up rule) where it stops.

**Deterministic tiebreak.**  Candidate-parent selection uses the same
``(-score, id)`` order as ``rank_topk`` (PR 2): equal scores resolve to
the lowest child index.  :func:`argmax_tiebreak` is the shared primitive
— ``np.argmax`` alone resolves ties by *array position*, which silently
depends on child construction order (the latent instability this PR
fixes, regression-locked by ``tests/test_stream_attach.py``).

New tags also need embeddings for the regulariser and the next fold-in:
:func:`place_tag_embedding` drops the tag at the Einstein midpoint of
its terminal node's members (Klein model, backend-routed), mapped back
to the Poincaré ball and projected — honouring ``REPRO_CHECK_MANIFOLD=1``
containment checks.  The expanded taxonomy serialises through the
existing ``to_dict``/``from_dict``, so it travels in ``repro.ckpt/v1``
``extra_state`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend import get_backend
from ..taxonomy.scoring import argmax_tiebreak, score_tags
from ..taxonomy.tree import Taxonomy, TaxonomyNode

__all__ = ["AttachDecision", "argmax_tiebreak", "attach_tag", "attach_tags", "place_tag_embedding"]


@dataclass
class AttachDecision:
    """Provenance of one attached tag (golden-fixture serialisable).

    ``path`` holds the child index taken at each level (empty = retained
    at the root); ``score`` is the winning ``s(t, G_k)`` at the terminal
    hop (or the best rejected score when the tag stops above ``delta``'s
    reach); ``general`` marks push-up retention at an internal node.
    """

    tag: int
    path: list[int] = field(default_factory=list)
    score: float = 0.0
    level: int = 0
    general: bool = False

    def to_dict(self) -> dict:
        return {
            "tag": int(self.tag),
            "path": [int(i) for i in self.path],
            "score": float(self.score),
            "level": int(self.level),
            "general": bool(self.general),
        }


def _score_against_children(item_tags: np.ndarray, children: list[TaxonomyNode], tag: int) -> np.ndarray:
    """``s(tag, G_k ∪ {tag})`` for every candidate child ``k``."""
    base = [child.members for child in children]
    out = np.zeros(len(children), dtype=np.float64)
    for k in range(len(children)):
        groups = [
            np.append(members, tag) if j == k else members for j, members in enumerate(base)
        ]
        scores = score_tags(item_tags, groups)
        out[k] = float(scores[k][-1])  # the appended tag is the last entry
    return out


def _append_member(node: TaxonomyNode, tag: int, score: float) -> None:
    node.members = np.append(node.members, np.int64(tag))
    if len(node.scores) == len(node.members) - 1:
        node.scores = np.append(node.scores, float(score))


def attach_tag(
    taxonomy: Taxonomy,
    item_tags: np.ndarray,
    tag: int,
    delta: float = 0.0,
) -> AttachDecision:
    """Attach one tag to the live tree by top-down ``s(t, G_k)`` routing.

    Mutates ``taxonomy`` in place (members/scores along the path, the
    terminal node's ``general_tags`` when retained internally) and bumps
    ``taxonomy.n_tags`` to cover the tag id.  ``item_tags`` is the
    *extended* Ψ matrix whose columns already include the new tag.
    """
    tag = int(tag)
    if tag < 0 or tag >= item_tags.shape[1]:
        raise ValueError(f"tag {tag} outside the item-tag matrix ({item_tags.shape[1]} columns)")
    for node in taxonomy.nodes():
        if tag in node.members:
            raise ValueError(f"tag {tag} is already in the taxonomy")

    node = taxonomy.root
    decision = AttachDecision(tag=tag)
    score = 0.0
    while node.children:
        child_scores = _score_against_children(item_tags, node.children, tag)
        best = argmax_tiebreak(child_scores)
        if child_scores[best] < delta:
            decision.general = True
            score = float(child_scores[best])
            break
        score = float(child_scores[best])
        _append_member(node, tag, score)
        decision.path.append(best)
        node = node.children[best]

    _append_member(node, tag, score)
    if decision.general:
        node.general_tags = np.append(node.general_tags, np.int64(tag))
    decision.score = score
    decision.level = node.level
    taxonomy.n_tags = max(taxonomy.n_tags, tag + 1)
    return decision


def attach_tags(
    taxonomy: Taxonomy,
    item_tags: np.ndarray,
    tags,
    delta: float = 0.0,
) -> list[AttachDecision]:
    """Attach several tags in ascending id order (deterministic batch)."""
    return [
        attach_tag(taxonomy, item_tags, tag, delta=delta)
        for tag in sorted(int(t) for t in tags)
    ]


def place_tag_embedding(
    tag_emb: np.ndarray,
    member_ids: np.ndarray,
    ball=None,
) -> np.ndarray:
    """Embedding for a new tag: Einstein midpoint of its node's members.

    ``tag_emb`` holds Poincaré-ball rows for *existing* tags; the members
    are mapped to the Klein model, averaged with the gamma-weighted
    Einstein midpoint, and mapped back — the same aggregation TaxoRec
    uses for item-tag pooling, so the new point stays inside the ball by
    convexity.  Passing a :class:`~repro.manifolds.PoincareBall` adds the
    final boundary projection plus the ``REPRO_CHECK_MANIFOLD=1``
    containment check.
    """
    member_ids = np.asarray(member_ids, dtype=np.int64)
    if member_ids.size == 0:
        return np.zeros(tag_emb.shape[1])
    xp = get_backend()
    klein = xp.poincare_to_klein(tag_emb[member_ids])
    mid = xp.einstein_midpoint(klein, np.ones(len(member_ids)))
    point = xp.klein_to_poincare(mid[None, :])[0]
    if ball is not None:
        point = ball.proj(point)
        point = ball.check_point(point)
    return point
