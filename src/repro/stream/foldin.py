"""Fold-in solvers: new-user/new-item embeddings against frozen arrays.

Between full retrains, a new user is characterised only by the items they
interacted with.  Fold-in solves for an embedding that scores those items
highly *under the frozen score-fn*, holding every existing embedding
fixed — the production pattern motivated by "Scalable Hyperbolic
Recommender Systems" (ASOS, PAPERS.md).  Per score-fn family:

* **Metric family** (``neg_sq_euclid``, ``neg_sq_lorentz``) — the
  least-squares minimiser of Σᵢ ‖u − vᵢ‖² over the evidence items is
  their mean.  On the hyperboloid we solve in the tangent space at the
  origin: ``u = expmap0(mean(logmap0(vᵢ)))``, the same maps the models
  train with (routed through :func:`~repro.backend.get_backend`).
* **Inner-product family** (``dot``, ``dot_bias``, ``dot_aspect``) —
  ridge least-squares against target score 1 per evidence item:
  ``(VᵀV + λI) u = Vᵀ1``, where ``dot_bias`` shifts the targets by the
  frozen item biases and ``dot_aspect`` solves the concatenated
  ``[u | u_aspect]`` system against ``[v | w·v_aspect]``.
* **Two-channel family** (``two_channel_lorentz``, ``two_channel_euclid``,
  TaxoRec) — per-channel tangent-space mean; a new user's ``alpha``
  defaults to the median of the frozen alphas (an existing user keeps
  their own via the prior).
* ``dense`` artifacts carry no embeddings to solve for —
  :class:`FoldInUnsupported`, mirroring ``retrieval.ReductionUnsupported``.

**Prior blending.**  For an *existing* user, the frozen embedding is a
prior weighted by the number of baseline interactions it was trained on:
the tangent solve becomes a weighted mean ``(n₀·z₀ + Σ zᵢ)/(n₀ + n)``
and the ridge solve is centred on the prior.  With **zero new evidence
the prior is returned verbatim** (a copy) — so folding a user whose
events all duplicate training interactions is an exact no-op, the
contract ``tests/test_stream_foldin.py`` locks at 1e-10.

Every solver is routed through the backend seam; the pure-numpy
``*_reference`` twins replay the same expressions for the differential
suite and are exempt from the backend-discipline lint by name.
"""

from __future__ import annotations

import numpy as np

from ..backend import get_backend
from ..backend.constants import FOLDIN_RIDGE, MAX_TANH_ARG, MIN_NORM

__all__ = [
    "FoldInUnsupported",
    "foldable_score_fns",
    "fold_in_user",
    "fold_in_user_reference",
    "fold_in_item",
    "origin_rows",
]

_METRIC = ("neg_sq_euclid", "neg_sq_lorentz")
_DOT = ("dot", "dot_bias", "dot_aspect")
_TWO_CHANNEL = ("two_channel_lorentz", "two_channel_euclid")

#: Default ridge regulariser for the inner-product family solves.
RIDGE = FOLDIN_RIDGE


class FoldInUnsupported(Exception):
    """The score-fn has no per-user embedding to solve for.

    Carries the score-fn id and a human-readable reason; callers catch
    this and fall back to a full retrain instead of guessing.
    """

    def __init__(self, score_fn: str, reason: str):
        self.score_fn = score_fn
        self.reason = reason
        super().__init__(f"score_fn {score_fn!r} cannot be folded into: {reason}")


def foldable_score_fns() -> tuple[str, ...]:
    """Score-fn ids :func:`fold_in_user` / :func:`fold_in_item` accept."""
    return _METRIC + _DOT + _TWO_CHANNEL


def _require_foldable(score_fn: str) -> None:
    if score_fn not in foldable_score_fns():
        raise FoldInUnsupported(
            score_fn,
            "no per-user embedding (the artifact is a dense score matrix)"
            if score_fn == "dense"
            else f"not a registered fold-in family {sorted(foldable_score_fns())}",
        )


# ----------------------------------------------------------------------
# Family primitives
# ----------------------------------------------------------------------
def _tangent_mean(rows: np.ndarray, lorentz: bool, prior: np.ndarray | None, prior_weight: float) -> np.ndarray:
    """Weighted tangent-space mean, projected back with the exp-map."""
    xp = get_backend()
    logs = xp.lorentz_logmap0(rows) if lorentz else rows
    total = logs.sum(axis=0)
    weight = float(len(rows))
    if prior is not None and prior_weight > 0.0:
        z0 = xp.lorentz_logmap0(prior[None, :])[0] if lorentz else prior
        total = total + prior_weight * z0
        weight += prior_weight
    z = total / weight
    return xp.lorentz_expmap0(z[None, :])[0] if lorentz else z


def _tangent_mean_reference(rows, lorentz, prior, prior_weight):
    """Pure-numpy twin of :func:`_tangent_mean` (differential suite)."""
    if lorentz:
        spatial = rows[..., 1:]
        sp_norm = np.maximum(np.linalg.norm(spatial, axis=-1, keepdims=True), MIN_NORM)
        logs = np.arcsinh(sp_norm) * spatial / sp_norm
    else:
        logs = rows
    total = logs.sum(axis=0)
    weight = float(len(rows))
    if prior is not None and prior_weight > 0.0:
        if lorentz:
            sp = prior[1:]
            n0 = max(np.linalg.norm(sp), MIN_NORM)
            z0 = np.arcsinh(n0) * sp / n0
        else:
            z0 = prior
        total = total + prior_weight * z0
        weight += prior_weight
    z = total / weight
    if not lorentz:
        return z
    # replay lorentz_expmap0_np expression-for-expression (1-row batch)
    norm = np.sqrt(np.sum(z * z, axis=-1, keepdims=True) + MIN_NORM)
    clipped = np.minimum(norm, MAX_TANH_ARG)
    time = np.cosh(clipped)
    spatial = np.sinh(clipped) * z / norm
    return np.concatenate([time, spatial], axis=-1)


def _ridge_solve(design: np.ndarray, targets: np.ndarray, prior: np.ndarray | None, prior_weight: float, ridge: float) -> np.ndarray:
    """``(XᵀX + (λ + n₀)I) q = Xᵀt + n₀·q₀`` — prior-centred ridge LS."""
    xp = get_backend()
    gram = xp.matmul(design.T, design)
    rhs = xp.matmul(design.T, targets)
    reg = ridge + (prior_weight if prior is not None else 0.0)
    gram = gram + reg * np.eye(design.shape[1])
    if prior is not None and prior_weight > 0.0:
        rhs = rhs + prior_weight * prior
    return np.linalg.solve(gram, rhs)


def _ridge_solve_reference(design, targets, prior, prior_weight, ridge):
    """Pure-numpy twin of :func:`_ridge_solve`."""
    gram = design.T @ design
    rhs = design.T @ targets
    reg = ridge + (prior_weight if prior is not None else 0.0)
    gram = gram + reg * np.eye(design.shape[1])
    if prior is not None and prior_weight > 0.0:
        rhs = rhs + prior_weight * prior
    return np.linalg.solve(gram, rhs)


def _alpha_default(arrays: dict) -> float:
    """New-user alpha: the median of the frozen per-user alphas."""
    alpha = np.asarray(arrays["alpha"], dtype=np.float64)
    return float(np.median(alpha)) if alpha.size else 1.0


# ----------------------------------------------------------------------
# User fold-in
# ----------------------------------------------------------------------
def fold_in_user(
    score_fn: str,
    arrays: dict,
    item_ids: np.ndarray,
    prior: dict | None = None,
    prior_weight: float = 0.0,
    ridge: float = RIDGE,
) -> dict:
    """Solve one user's frozen-array rows from their evidence items.

    Parameters
    ----------
    score_fn, arrays:
        The frozen payload (``repro.model/v1`` semantics).
    item_ids:
        Sorted evidence item ids; must index the frozen item arrays.
    prior:
        The user's existing rows (``{"user": row}`` /
        ``{"user_ir": ..., "user_tg": ..., "alpha": ...}``) when folding
        an existing user; ``None`` for a brand-new one.
    prior_weight:
        Evidence weight of the prior — the user's baseline interaction
        count.  With ``item_ids`` empty and a prior, the prior is
        returned verbatim (copies).

    Returns a dict of user-side array names → new rows, e.g.
    ``{"user": (d,)}`` or ``{"user_ir": ..., "user_tg": ..., "alpha": float}``.
    """
    _require_foldable(score_fn)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if item_ids.size == 0:
        if prior is None:
            raise ValueError("fold_in_user needs evidence items or a prior")
        return {key: np.copy(value) if isinstance(value, np.ndarray) else value for key, value in prior.items()}

    if score_fn in _METRIC:
        rows = arrays["item"][item_ids]
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        u = _tangent_mean(rows, score_fn == "neg_sq_lorentz", u0, prior_weight)
        return {"user": u}

    if score_fn == "dot":
        design = arrays["item"][item_ids]
        targets = np.ones(len(item_ids))
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        return {"user": _ridge_solve(design, targets, u0, prior_weight, ridge)}

    if score_fn == "dot_bias":
        design = arrays["item"][item_ids]
        targets = 1.0 - arrays["item_bias"][item_ids]
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        return {"user": _ridge_solve(design, targets, u0, prior_weight, ridge)}

    if score_fn == "dot_aspect":
        weight = float(arrays["aspect_weight"])
        design = np.concatenate(
            [arrays["item"][item_ids], weight * arrays["item_aspect"][item_ids]], axis=1
        )
        targets = np.ones(len(item_ids))
        d = arrays["item"].shape[1]
        q0 = None
        if prior is not None:
            q0 = np.concatenate(
                [np.asarray(prior["user"], np.float64), np.asarray(prior["user_aspect"], np.float64)]
            )
        q = _ridge_solve(design, targets, q0, prior_weight, ridge)
        return {"user": q[:d], "user_aspect": q[d:]}

    # two-channel family (TaxoRec)
    lorentz = score_fn == "two_channel_lorentz"
    ir0 = None if prior is None else np.asarray(prior["user_ir"], dtype=np.float64)
    tg0 = None if prior is None else np.asarray(prior["user_tg"], dtype=np.float64)
    out = {
        "user_ir": _tangent_mean(arrays["item_ir"][item_ids], lorentz, ir0, prior_weight),
        "user_tg": _tangent_mean(arrays["item_tg"][item_ids], lorentz, tg0, prior_weight),
        "alpha": float(prior["alpha"]) if prior is not None else _alpha_default(arrays),
    }
    return out


def fold_in_user_reference(
    score_fn: str,
    arrays: dict,
    item_ids: np.ndarray,
    prior: dict | None = None,
    prior_weight: float = 0.0,
    ridge: float = RIDGE,
) -> dict:
    """Pure-numpy exact twin of :func:`fold_in_user` (never backend-routed)."""
    _require_foldable(score_fn)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if item_ids.size == 0:
        if prior is None:
            raise ValueError("fold_in_user needs evidence items or a prior")
        return {key: np.copy(value) if isinstance(value, np.ndarray) else value for key, value in prior.items()}

    if score_fn in _METRIC:
        rows = arrays["item"][item_ids]
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        return {"user": _tangent_mean_reference(rows, score_fn == "neg_sq_lorentz", u0, prior_weight)}

    if score_fn == "dot":
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        return {
            "user": _ridge_solve_reference(
                arrays["item"][item_ids], np.ones(len(item_ids)), u0, prior_weight, ridge
            )
        }

    if score_fn == "dot_bias":
        u0 = None if prior is None else np.asarray(prior["user"], dtype=np.float64)
        return {
            "user": _ridge_solve_reference(
                arrays["item"][item_ids],
                1.0 - arrays["item_bias"][item_ids],
                u0,
                prior_weight,
                ridge,
            )
        }

    if score_fn == "dot_aspect":
        weight = float(arrays["aspect_weight"])
        design = np.concatenate(
            [arrays["item"][item_ids], weight * arrays["item_aspect"][item_ids]], axis=1
        )
        d = arrays["item"].shape[1]
        q0 = None
        if prior is not None:
            q0 = np.concatenate(
                [np.asarray(prior["user"], np.float64), np.asarray(prior["user_aspect"], np.float64)]
            )
        q = _ridge_solve_reference(design, np.ones(len(item_ids)), q0, prior_weight, ridge)
        return {"user": q[:d], "user_aspect": q[d:]}

    lorentz = score_fn == "two_channel_lorentz"
    ir0 = None if prior is None else np.asarray(prior["user_ir"], dtype=np.float64)
    tg0 = None if prior is None else np.asarray(prior["user_tg"], dtype=np.float64)
    return {
        "user_ir": _tangent_mean_reference(arrays["item_ir"][item_ids], lorentz, ir0, prior_weight),
        "user_tg": _tangent_mean_reference(arrays["item_tg"][item_ids], lorentz, tg0, prior_weight),
        "alpha": float(prior["alpha"]) if prior is not None else _alpha_default(arrays),
    }


# ----------------------------------------------------------------------
# Item fold-in (symmetric: evidence is the users who touched the item)
# ----------------------------------------------------------------------
def fold_in_item(
    score_fn: str,
    arrays: dict,
    user_ids: np.ndarray,
    prior: dict | None = None,
    prior_weight: float = 0.0,
    ridge: float = RIDGE,
) -> dict:
    """Solve one item's frozen-array rows from the users who touched it.

    Mirrors :func:`fold_in_user`; ``dot_bias`` jointly solves the item
    vector and its bias via the augmented design ``[U | 1]``.  Returns a
    dict of item-side array names → new rows.
    """
    _require_foldable(score_fn)
    user_ids = np.asarray(user_ids, dtype=np.int64)
    if user_ids.size == 0:
        if prior is None:
            return origin_rows(score_fn, arrays, side="item")
        return {key: np.copy(value) if isinstance(value, np.ndarray) else value for key, value in prior.items()}

    if score_fn in _METRIC:
        rows = arrays["user"][user_ids]
        v0 = None if prior is None else np.asarray(prior["item"], dtype=np.float64)
        return {"item": _tangent_mean(rows, score_fn == "neg_sq_lorentz", v0, prior_weight)}

    if score_fn == "dot":
        u_rows = arrays["user"][user_ids]
        v0 = None if prior is None else np.asarray(prior["item"], dtype=np.float64)
        return {"item": _ridge_solve(u_rows, np.ones(len(user_ids)), v0, prior_weight, ridge)}

    if score_fn == "dot_bias":
        u_rows = arrays["user"][user_ids]
        design = np.concatenate([u_rows, np.ones((len(user_ids), 1))], axis=1)
        x0 = None
        if prior is not None:
            x0 = np.concatenate([np.asarray(prior["item"], np.float64), [float(prior["item_bias"])]])
        x = _ridge_solve(design, np.ones(len(user_ids)), x0, prior_weight, ridge)
        return {"item": x[:-1], "item_bias": float(x[-1])}

    if score_fn == "dot_aspect":
        weight = float(arrays["aspect_weight"])
        design = np.concatenate(
            [arrays["user"][user_ids], weight * arrays["user_aspect"][user_ids]], axis=1
        )
        d = arrays["user"].shape[1]
        x0 = None
        if prior is not None:
            x0 = np.concatenate(
                [np.asarray(prior["item"], np.float64), np.asarray(prior["item_aspect"], np.float64)]
            )
        x = _ridge_solve(design, np.ones(len(user_ids)), x0, prior_weight, ridge)
        return {"item": x[:d], "item_aspect": x[d:]}

    lorentz = score_fn == "two_channel_lorentz"
    ir0 = None if prior is None else np.asarray(prior["item_ir"], dtype=np.float64)
    tg0 = None if prior is None else np.asarray(prior["item_tg"], dtype=np.float64)
    return {
        "item_ir": _tangent_mean(arrays["user_ir"][user_ids], lorentz, ir0, prior_weight),
        "item_tg": _tangent_mean(arrays["user_tg"][user_ids], lorentz, tg0, prior_weight),
    }


# ----------------------------------------------------------------------
def origin_rows(score_fn: str, arrays: dict, side: str) -> dict:
    """Evidence-free placeholder rows (the manifold origin).

    Used for id-space gaps: appending item ``n+5`` forces rows for
    ``n…n+4`` to exist even without events.  Lorentz origin is
    ``[1, 0, …]``; Euclidean is zeros; biases are 0; a placeholder
    user's alpha is the frozen median.
    """
    _require_foldable(score_fn)

    def origin_like(template: np.ndarray) -> np.ndarray:
        row = np.zeros(template.shape[1])
        if score_fn in ("neg_sq_lorentz", "two_channel_lorentz"):
            row[0] = 1.0
        return row

    if score_fn in _TWO_CHANNEL:
        ir, tg = (("user_ir", "user_tg") if side == "user" else ("item_ir", "item_tg"))
        out = {ir: origin_like(arrays[ir]), tg: origin_like(arrays[tg])}
        if side == "user":
            out["alpha"] = _alpha_default(arrays)
        return out
    key = "user" if side == "user" else "item"
    out = {key: origin_like(arrays[key])}
    if score_fn == "dot_bias" and side == "item":
        out["item_bias"] = 0.0
    if score_fn == "dot_aspect":
        aspect = "user_aspect" if side == "user" else "item_aspect"
        out[aspect] = origin_like(arrays[aspect])
    return out
