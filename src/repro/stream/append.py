"""Appending fold-in results to a loaded ``repro.model/v1`` artifact.

:func:`fold_into_artifact` takes a frozen artifact plus a
:class:`~repro.stream.events.StreamState` and produces a *new* artifact:

* **New items first** — each item id beyond the artifact's ``n_items``
  gets a row solved from the frozen embeddings of the existing users who
  touched it (:func:`~repro.stream.foldin.fold_in_item`); id-space gaps
  are filled with origin rows.  Existing item rows stay frozen — fold-in
  updates the user side against a fixed catalogue (the ASOS pattern), so
  scores of untouched users never move.
* **Then users** — every pending user is solved against the (now
  extended) item arrays.  A new user is appended; an existing user's row
  is *replaced* by the prior-blended solve, where the prior weight is
  their baseline interaction count.  A user whose events were all
  duplicates has no pending delta and is untouched.
* The seen-CSR is extended with the union of baseline and evidence, so
  ``exclude_seen`` keeps masking everything the user ever touched.
* Provenance lands in ``meta["stream"]``:
  ``{"generation", "folded_users", "folded_items"}`` — surfaced by
  ``RecommenderService.stats()`` and the golden fixtures.

The result re-validates against the full ``repro.model/v1`` contract
before it is returned, and :func:`fold_into_service` pushes it through
the existing ``swap_artifact`` / cache-invalidate path — new users get
recommendations without a redeploy.
"""

from __future__ import annotations

import copy

import numpy as np

from ..serve.artifact import ModelArtifact, validate_model_artifact
from .events import StreamState
from .foldin import (
    RIDGE,
    FoldInUnsupported,
    fold_in_item,
    fold_in_user,
    fold_in_user_reference,
    foldable_score_fns,
    origin_rows,
)

__all__ = ["fold_into_artifact", "fold_into_service"]

_USER_SIDE = ("user", "user_aspect", "user_ir", "user_tg", "alpha")
_ITEM_SIDE = ("item", "item_aspect", "item_bias", "item_ir", "item_tg")


def _grow(arr: np.ndarray, rows: int) -> np.ndarray:
    """Copy ``arr`` with ``rows`` zero rows appended (1-d aware)."""
    if rows == 0:
        return np.copy(arr)
    pad = np.zeros((rows,) + arr.shape[1:], dtype=arr.dtype)
    return np.concatenate([arr, pad], axis=0)


def _apply(arrays: dict, index: int, solved: dict) -> None:
    for name, value in solved.items():
        arrays[name][index] = value


def fold_into_artifact(
    artifact: ModelArtifact,
    state: StreamState,
    ridge: float = RIDGE,
    use_reference: bool = False,
) -> ModelArtifact:
    """Fold a stream state's deltas into a frozen artifact.

    Returns a new, validated :class:`ModelArtifact`; the input artifact
    is never mutated.  ``use_reference=True`` routes every solve through
    the pure-numpy ``*_reference`` twins (differential suite).

    Raises :class:`~repro.stream.foldin.FoldInUnsupported` for ``dense``
    artifacts and ``ValueError`` if the folded result fails
    ``repro.model/v1`` validation.
    """
    score_fn = artifact.score_fn
    if score_fn not in foldable_score_fns():
        raise FoldInUnsupported(score_fn, "artifact carries no per-user embeddings")
    solve_user = fold_in_user_reference if use_reference else fold_in_user
    n_users, n_items = artifact.n_users, artifact.n_items
    new_items = state.new_items()
    new_users = state.new_users()
    out_n_items = int(max([n_items, *[i + 1 for i in new_items.tolist()]]))
    out_n_users = int(max([n_users, *[u + 1 for u in new_users.tolist()]]))

    arrays = dict(artifact.arrays)
    for name in _ITEM_SIDE:
        if name in arrays:
            arrays[name] = _grow(arrays[name], out_n_items - n_items)

    # -- items first: new rows solved from frozen *existing*-user rows --
    folded_items = []
    for item in range(n_items, out_n_items):
        users = state.users_of(item)
        users = users[users < n_users]
        if users.size:
            _apply(arrays, item, fold_in_item(score_fn, artifact.arrays, users, ridge=ridge))
            folded_items.append(item)
        else:
            _apply(arrays, item, origin_rows(score_fn, artifact.arrays, side="item"))

    # -- then users, against the extended item arrays -------------------
    for name in _USER_SIDE:
        if name in arrays:
            arrays[name] = _grow(arrays[name], out_n_users - n_users)
    for user in range(n_users, out_n_users):
        _apply(arrays, user, origin_rows(score_fn, artifact.arrays, side="user"))

    folded_users = []
    for user in state.pending_users().tolist():
        items = state.items_of(user)
        if user < n_users:
            prior = {
                name: (float(artifact.arrays[name][user]) if name == "alpha" else artifact.arrays[name][user])
                for name in _USER_SIDE
                if name in artifact.arrays
            }
            weight = float(artifact.seen_indptr[user + 1] - artifact.seen_indptr[user])
        else:
            prior, weight = None, 0.0
        _apply(arrays, user, solve_user(score_fn, arrays, items, prior, weight, ridge=ridge))
        folded_users.append(user)

    # -- seen-CSR: union of baseline and evidence -----------------------
    indptr = np.zeros(out_n_users + 1, dtype=np.int64)
    chunks = []
    for user in range(out_n_users):
        if user < n_users:
            base = artifact.seen_indices[artifact.seen_indptr[user] : artifact.seen_indptr[user + 1]]
        else:
            base = np.empty(0, dtype=np.int64)
        row = np.union1d(base, state.items_of(user)).astype(np.int64)
        chunks.append(row)
        indptr[user + 1] = indptr[user] + len(row)
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    meta = copy.deepcopy(artifact.meta)
    meta["dataset"]["n_users"] = out_n_users
    meta["dataset"]["n_items"] = out_n_items
    meta["arrays"] = {name: list(arr.shape) for name, arr in arrays.items()}
    prev = meta.get("stream", {})
    meta["stream"] = {
        "generation": int(prev.get("generation", 0)) + 1,
        "folded_users": sorted(folded_users),
        "folded_items": sorted(folded_items),
    }

    problems = validate_model_artifact(meta, arrays, indptr, indices)
    if problems:
        raise ValueError(f"folded artifact failed validation: {problems}")
    return ModelArtifact(meta, arrays, indptr, indices, tag_names=list(artifact.tag_names))


def fold_into_service(service, state: StreamState, ridge: float = RIDGE) -> ModelArtifact:
    """Fold deltas into a live service via the swap/invalidate path.

    Returns the folded artifact after ``service.swap_artifact`` has
    atomically flipped to it (old snapshot retired, caches invalidated).
    """
    folded = fold_into_artifact(service.artifact, state, ridge=ridge)
    service.swap_artifact(folded)
    return folded
