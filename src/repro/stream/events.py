"""Interaction-ingest layer: event batches over a frozen artifact.

The streaming path starts here: production traffic arrives as batches of
``(user, item, timestamp)`` interaction events against a *frozen* serving
artifact (``repro.model/v1``).  :class:`StreamState` accumulates those
events as per-user and per-item deltas relative to the artifact's
seen-CSR, with two contracts the Hypothesis suite
(``tests/test_stream_property.py``) locks:

* **Order-insensitive within a batch** — the state after ``ingest(batch)``
  is a pure function of the *set* of events in the batch, never of their
  order.  Deltas are kept as id-keyed sets and every read path returns
  sorted arrays, so downstream fold-in is deterministic.
* **Idempotent on duplicates** — an event already reflected in the
  artifact's seen-CSR, or already ingested earlier, is counted as a
  duplicate and changes nothing.  Folding in a user whose "new" events
  all duplicate training interactions therefore leaves the frozen
  embedding untouched (the exactness contract of
  ``tests/test_stream_foldin.py``).

Event files (``repro.events/v1``) are plain JSON documents so streams can
be committed as fixtures and replayed by the CLI / smoke scripts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "EVENTS_SCHEMA",
    "Event",
    "IngestReport",
    "StreamState",
    "read_events",
    "write_events",
]

EVENTS_SCHEMA = "repro.events/v1"


@dataclass(frozen=True)
class Event:
    """One interaction event.  ``user``/``item`` ids may exceed the frozen
    artifact's counts — that is what makes them *new* users/items."""

    user: int
    item: int
    ts: float = 0.0


@dataclass
class IngestReport:
    """What one :meth:`StreamState.ingest` call changed.

    ``accepted`` counts events that created a new ``(user, item)`` delta;
    ``duplicates`` counts events already present (in the artifact's
    seen-CSR or in earlier ingests).  ``new_users``/``new_items`` list ids
    first observed by this batch that lie beyond the frozen artifact's
    ``n_users``/``n_items``.
    """

    accepted: int = 0
    duplicates: int = 0
    new_users: list[int] = field(default_factory=list)
    new_items: list[int] = field(default_factory=list)


class StreamState:
    """Per-user/per-item interaction deltas over one frozen artifact.

    Parameters
    ----------
    n_users, n_items:
        The frozen artifact's counts; ids at or beyond them are new.
    seen_indptr, seen_indices:
        Optional baseline seen-CSR (the artifact's training interactions).
        Events already present there are duplicates, not deltas.
    """

    def __init__(
        self,
        n_users: int,
        n_items: int,
        seen_indptr: np.ndarray | None = None,
        seen_indices: np.ndarray | None = None,
    ):
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self._seen_indptr = None if seen_indptr is None else np.asarray(seen_indptr, np.int64)
        self._seen_indices = None if seen_indices is None else np.asarray(seen_indices, np.int64)
        self._user_delta: dict[int, set[int]] = {}
        self._item_delta: dict[int, set[int]] = {}
        self._timestamps: dict[tuple[int, int], float] = {}
        self.generation = 0

    @classmethod
    def from_artifact(cls, artifact) -> "StreamState":
        """State keyed to a loaded :class:`~repro.serve.artifact.ModelArtifact`."""
        return cls(
            artifact.n_users,
            artifact.n_items,
            artifact.seen_indptr,
            artifact.seen_indices,
        )

    # ------------------------------------------------------------------
    def _in_baseline(self, user: int, item: int) -> bool:
        if self._seen_indptr is None or not 0 <= user < self.n_users:
            return False
        row = self._seen_indices[self._seen_indptr[user] : self._seen_indptr[user + 1]]
        pos = int(np.searchsorted(row, item))
        return pos < len(row) and int(row[pos]) == item

    def ingest(self, events) -> IngestReport:
        """Fold one batch of events into the delta state.

        ``events`` is an iterable of :class:`Event`, ``(user, item)`` or
        ``(user, item, ts)`` tuples.  Returns an :class:`IngestReport`;
        bumps :attr:`generation` when the batch changed anything.
        """
        report = IngestReport()
        for event in events:
            if isinstance(event, Event):
                user, item, ts = event.user, event.item, event.ts
            else:
                user, item = int(event[0]), int(event[1])
                ts = float(event[2]) if len(event) > 2 else 0.0
            user, item = int(user), int(item)
            if user < 0 or item < 0:
                raise ValueError(f"event ids must be non-negative, got ({user}, {item})")
            delta = self._user_delta.get(user)
            if (delta is not None and item in delta) or self._in_baseline(user, item):
                report.duplicates += 1
                continue
            if user >= self.n_users and user not in self._user_delta:
                report.new_users.append(user)
            if item >= self.n_items and item not in self._item_delta:
                report.new_items.append(item)
            self._user_delta.setdefault(user, set()).add(item)
            self._item_delta.setdefault(item, set()).add(user)
            self._timestamps[(user, item)] = ts
            report.accepted += 1
        if report.accepted:
            self.generation += 1
        report.new_users.sort()
        report.new_items.sort()
        return report

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Accepted (non-duplicate) events held by the state."""
        return sum(len(items) for items in self._user_delta.values())

    def items_of(self, user: int) -> np.ndarray:
        """Sorted new item ids observed for one user."""
        return np.array(sorted(self._user_delta.get(int(user), ())), dtype=np.int64)

    def users_of(self, item: int) -> np.ndarray:
        """Sorted user ids observed interacting with one item."""
        return np.array(sorted(self._item_delta.get(int(item), ())), dtype=np.int64)

    def pending_users(self) -> np.ndarray:
        """Sorted ids of every user with at least one accepted event."""
        return np.array(sorted(self._user_delta), dtype=np.int64)

    def new_users(self) -> np.ndarray:
        """Sorted pending user ids beyond the artifact's ``n_users``."""
        return np.array(
            sorted(u for u in self._user_delta if u >= self.n_users), dtype=np.int64
        )

    def new_items(self) -> np.ndarray:
        """Sorted observed item ids beyond the artifact's ``n_items``."""
        return np.array(
            sorted(i for i in self._item_delta if i >= self.n_items), dtype=np.int64
        )

    def events(self) -> list[Event]:
        """The accepted events, sorted by ``(user, item)`` (deterministic)."""
        out = []
        for user in sorted(self._user_delta):
            for item in sorted(self._user_delta[user]):
                out.append(Event(user, item, self._timestamps.get((user, item), 0.0)))
        return out

    def __repr__(self) -> str:
        return (
            f"StreamState(events={self.n_events}, users={len(self._user_delta)}, "
            f"new_users={len(self.new_users())}, new_items={len(self.new_items())}, "
            f"generation={self.generation})"
        )


# ----------------------------------------------------------------------
# Event files (repro.events/v1)
# ----------------------------------------------------------------------
def write_events(events, path) -> Path:
    """Write events as a ``repro.events/v1`` JSON document."""
    rows = []
    for event in events:
        if isinstance(event, Event):
            rows.append({"user": int(event.user), "item": int(event.item), "ts": float(event.ts)})
        else:
            rows.append(
                {
                    "user": int(event[0]),
                    "item": int(event[1]),
                    "ts": float(event[2]) if len(event) > 2 else 0.0,
                }
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": EVENTS_SCHEMA, "events": rows}, indent=1) + "\n")
    return path


def read_events(path) -> list[Event]:
    """Read a ``repro.events/v1`` document back into :class:`Event` rows."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != EVENTS_SCHEMA:
        raise ValueError(
            f"{path} is not a {EVENTS_SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    return [
        Event(int(row["user"]), int(row["item"]), float(row.get("ts", 0.0)))
        for row in doc.get("events", [])
    ]
