"""``repro.stream`` — streaming fold-in and incremental taxonomy expansion.

The online half of ROADMAP item 3: everything between two full retrains.

* :mod:`~repro.stream.events` — interaction-ingest layer.
  :class:`StreamState` accumulates per-user/per-item deltas over a
  frozen artifact with order-insensitive, duplicate-idempotent batch
  semantics; ``repro.events/v1`` JSON files make streams committable.
* :mod:`~repro.stream.foldin` — per-score-fn solvers for new-user /
  new-item embeddings against the frozen arrays (tangent-space mean on
  the hyperboloid, ridge least-squares for inner-product models),
  backend-routed with pure-numpy ``*_reference`` twins.
* :mod:`~repro.stream.append` — :func:`fold_into_artifact` /
  :func:`fold_into_service`: fold deltas into a validated new
  ``repro.model/v1`` artifact and hot-swap it into a live service.
* :mod:`~repro.stream.expand` — attach new tags to the live taxonomy by
  ``s(t, G_k)`` routing (paper Eq. 7) with the deterministic
  ``(-score, id)`` tiebreak; Einstein-midpoint embedding placement.
* :mod:`~repro.stream.staleness` — the fold-in-vs-retrain replay
  harness behind ``repro.bench --cases stream`` and ``BENCH_stream.json``.

CLI: ``python -m repro stream {fold,replay,bench}`` and
``python -m repro serve --fold-in events.json``.
"""

from .append import fold_into_artifact, fold_into_service
from .events import EVENTS_SCHEMA, Event, IngestReport, StreamState, read_events, write_events
from .expand import AttachDecision, argmax_tiebreak, attach_tag, attach_tags, place_tag_embedding
from .foldin import (
    FoldInUnsupported,
    fold_in_item,
    fold_in_user,
    fold_in_user_reference,
    foldable_score_fns,
    origin_rows,
)
from .staleness import StalenessConfig, build_context, replay

__all__ = [
    "EVENTS_SCHEMA",
    "Event",
    "IngestReport",
    "StreamState",
    "read_events",
    "write_events",
    "FoldInUnsupported",
    "foldable_score_fns",
    "fold_in_user",
    "fold_in_user_reference",
    "fold_in_item",
    "origin_rows",
    "fold_into_artifact",
    "fold_into_service",
    "AttachDecision",
    "argmax_tiebreak",
    "attach_tag",
    "attach_tags",
    "place_tag_embedding",
    "StalenessConfig",
    "build_context",
    "replay",
]
