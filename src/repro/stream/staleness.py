"""Staleness harness: metric decay of fold-in vs periodic full retrain.

The question online serving keeps asking: *how stale can a frozen
artifact get before a retrain is worth it?*  This harness answers it by
replay:

1. A synthetic dataset is generated and a ``stream_frac`` slice of its
   users (those with enough history) is withheld from base training —
   their id rows exist but carry no interactions, so the base model
   leaves them cold.  The id space is preserved via ``dataset.subset``.
2. Each stream user's history is ordered by timestamp; the first
   ``evidence_frac`` becomes the *evidence pool*, replayed in
   ``n_windows`` cumulative windows, and the remainder is a fixed
   held-out evaluation set shared by every window and policy.
3. Per window, three policies score the stream users:

   * **fold-in** — ingest the window's events into a
     :class:`~repro.stream.events.StreamState` and fold them into the
     frozen base artifact (:func:`~repro.stream.append.fold_into_artifact`);
   * **retrain** — fit a fresh model on base + window evidence (the
     periodic full retrain fold-in is racing);
   * **frozen** — the untouched base artifact (the do-nothing floor).

   Each policy's NDCG@K against the held-out positives lands in the
   window record along with the fold-in : retrain ratio — the number the
   acceptance gate reads (``ratio ≥ 0.9`` on window 1).

``repro.bench``'s ``stream`` case set wraps :func:`fold_in_window` /
:func:`retrain_window` as the fast/reference pair of one
:class:`~repro.bench.harness.BenchCase` per window, so the committed
``BENCH_stream.json`` records the latency gap (fold-in ≥ 50× faster)
with the metric decay in the workload block — same schema, same tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.constants import DIV_EPS
from ..data import load_preset
from ..eval.metrics import ndcg_at_k, rank_topk, recall_at_k
from ..models import MODEL_REGISTRY, TrainConfig
from ..serve.artifact import ModelArtifact, artifact_from_model
from .append import fold_into_artifact
from .events import Event, StreamState

__all__ = [
    "StalenessConfig",
    "StalenessContext",
    "build_context",
    "fold_in_window",
    "retrain_window",
    "frozen_ndcg",
    "replay",
]


@dataclass
class StalenessConfig:
    """Knobs of the replay protocol."""

    model: str = "CML"
    preset: str = "ciao"
    scale: float = 0.5
    stream_frac: float = 0.15
    min_history: int = 8
    evidence_frac: float = 0.6
    n_windows: int = 2
    epochs: int = 30
    k: int = 10
    seed: int = 0

    def quick(self) -> "StalenessConfig":
        """CI-sized variant (same protocol, smaller everything)."""
        return StalenessConfig(
            model=self.model,
            preset=self.preset,
            scale=min(self.scale, 0.12),
            stream_frac=self.stream_frac,
            min_history=self.min_history,
            evidence_frac=self.evidence_frac,
            n_windows=self.n_windows,
            epochs=min(self.epochs, 2),
            k=self.k,
            seed=self.seed,
        )


@dataclass
class StalenessContext:
    """Everything the per-window policies share (built once)."""

    config: StalenessConfig
    dataset: "object"
    base_artifact: ModelArtifact
    stream_users: np.ndarray
    #: window → list of :class:`Event` (cumulative evidence).
    window_events: list[list[Event]]
    #: window → interaction mask over the full dataset (base + evidence).
    window_masks: list[np.ndarray]
    #: per stream user, the fixed held-out positives.
    eval_positives: list[np.ndarray] = field(default_factory=list)


def build_context(config: StalenessConfig) -> StalenessContext:
    """Generate the dataset, pick stream users, train the base model."""
    dataset = load_preset(config.preset, scale=config.scale, seed=config.seed)
    rng = np.random.default_rng(config.seed)

    counts = np.bincount(dataset.user_ids, minlength=dataset.n_users)
    eligible = np.nonzero(counts >= config.min_history)[0]
    n_stream = max(1, int(round(len(eligible) * config.stream_frac)))
    stream_users = np.sort(rng.choice(eligible, size=n_stream, replace=False))
    is_stream = np.zeros(dataset.n_users, dtype=bool)
    is_stream[stream_users] = True

    # Per-interaction temporal rank within each user's history.
    order = np.lexsort((dataset.timestamps, dataset.user_ids))
    rank = np.empty(dataset.n_interactions, dtype=np.int64)
    users_sorted = dataset.user_ids[order]
    boundaries = np.searchsorted(users_sorted, np.arange(dataset.n_users + 1))
    for u in range(dataset.n_users):
        lo, hi = boundaries[u], boundaries[u + 1]
        rank[order[lo:hi]] = np.arange(hi - lo)

    base_mask = ~is_stream[dataset.user_ids]
    evidence_mask = np.zeros(dataset.n_interactions, dtype=bool)
    window_of = np.full(dataset.n_interactions, -1, dtype=np.int64)
    eval_positives: list[np.ndarray] = []
    for u in stream_users.tolist():
        lo, hi = boundaries[u], boundaries[u + 1]
        idx = order[lo:hi]  # this user's interactions in time order
        n = len(idx)
        n_evidence = max(1, int(np.floor(n * config.evidence_frac)))
        evidence = idx[:n_evidence]
        evidence_mask[evidence] = True
        # Cumulative windows: window w covers the first (w+1)/W of evidence;
        # each interaction is stamped with the first window that sees it.
        for w in range(config.n_windows):
            take = max(1, int(np.ceil(n_evidence * (w + 1) / config.n_windows)))
            sel = evidence[:take]
            window_of[sel] = np.where(window_of[sel] < 0, w, window_of[sel])
        # Held-out positives exclude evidence items so no policy gets
        # credit for items another policy masks as seen.
        eval_positives.append(
            np.setdiff1d(dataset.item_ids[idx[n_evidence:]], dataset.item_ids[evidence])
        )

    base = dataset.subset(base_mask, name=f"{dataset.name}/stream-base")
    model = MODEL_REGISTRY[config.model](
        base, TrainConfig(epochs=config.epochs, seed=config.seed)
    )
    model.fit()
    base_artifact = artifact_from_model(model, source="staleness-base")

    window_events: list[list[Event]] = []
    window_masks: list[np.ndarray] = []
    for w in range(config.n_windows):
        in_window = evidence_mask & (window_of >= 0) & (window_of <= w)
        events = [
            Event(int(u), int(i), float(t))
            for u, i, t in zip(
                dataset.user_ids[in_window],
                dataset.item_ids[in_window],
                dataset.timestamps[in_window],
            )
        ]
        window_events.append(events)
        window_masks.append(base_mask | in_window)

    return StalenessContext(
        config=config,
        dataset=dataset,
        base_artifact=base_artifact,
        stream_users=stream_users,
        window_events=window_events,
        window_masks=window_masks,
        eval_positives=eval_positives,
    )


# ----------------------------------------------------------------------
# Per-window policies
# ----------------------------------------------------------------------
def _masked_ndcg(artifact: ModelArtifact, ctx: StalenessContext) -> dict:
    """NDCG@K / Recall@K of one artifact over the stream users.

    Seen masking uses the artifact's own seen-CSR (base interactions plus
    whatever evidence was folded in), mirroring the evaluator's
    ``exclude_seen`` protocol.
    """
    k = ctx.config.k
    users = ctx.stream_users
    scores = artifact.scorer().score_users(users)
    for row, user in zip(scores, users.tolist()):
        row[artifact.seen_items(user)] = -np.inf
    topk = rank_topk(scores, k)
    return {
        "ndcg": float(ndcg_at_k(topk, ctx.eval_positives, k)),
        "recall": float(recall_at_k(topk, ctx.eval_positives, k)),
    }


def fold_in_window(ctx: StalenessContext, window: int) -> tuple[ModelArtifact, dict]:
    """Policy 1: ingest the window's events and fold them into the base."""
    state = StreamState.from_artifact(ctx.base_artifact)
    state.ingest(ctx.window_events[window])
    folded = fold_into_artifact(ctx.base_artifact, state)
    return folded, _masked_ndcg(folded, ctx)


def retrain_window(ctx: StalenessContext, window: int) -> tuple[ModelArtifact, dict]:
    """Policy 2: full retrain on base + the window's evidence."""
    config = ctx.config
    train = ctx.dataset.subset(
        ctx.window_masks[window], name=f"{ctx.dataset.name}/stream-w{window}"
    )
    model = MODEL_REGISTRY[config.model](
        train, TrainConfig(epochs=config.epochs, seed=config.seed)
    )
    model.fit()
    artifact = artifact_from_model(model, source=f"staleness-retrain-w{window}")
    return artifact, _masked_ndcg(artifact, ctx)


def frozen_ndcg(ctx: StalenessContext) -> dict:
    """Policy 3: the untouched base artifact (the do-nothing floor)."""
    return _masked_ndcg(ctx.base_artifact, ctx)


def replay(config: StalenessConfig) -> dict:
    """Run every window once; returns the metric-decay summary.

    This is the metrics-only entry point (no timing) used by
    ``repro.train.experiment.run_staleness_experiment`` and the tests;
    the bench case set re-runs the same policies under the paired timer
    for the committed ``BENCH_stream.json``.
    """
    ctx = build_context(config)
    frozen = frozen_ndcg(ctx)
    windows = []
    for w in range(config.n_windows):
        _, fold = fold_in_window(ctx, w)
        _, retrain = retrain_window(ctx, w)
        windows.append(
            {
                "window": w,
                "events": len(ctx.window_events[w]),
                "fold_in": fold,
                "retrain": retrain,
                "frozen": frozen,
                "ratio": fold["ndcg"] / max(retrain["ndcg"], DIV_EPS),
            }
        )
    return {
        "config": {
            "model": config.model,
            "preset": config.preset,
            "scale": config.scale,
            "stream_frac": config.stream_frac,
            "evidence_frac": config.evidence_frac,
            "n_windows": config.n_windows,
            "epochs": config.epochs,
            "k": config.k,
            "seed": config.seed,
        },
        "n_stream_users": int(len(ctx.stream_users)),
        "windows": windows,
    }
