"""Shared syntactic heuristics for the numerics rules.

These helpers answer two questions about an expression subtree:

* does it *visibly* guard against a boundary (a ``clip``/``clamp``/
  ``maximum`` call, an ``eps`` keyword, or a name that mentions an epsilon
  constant)?
* does it *visibly* risk one (a subtraction, negation or division feeding a
  ``sqrt``/``log``/``arccosh``-style call)?

The analysis is purely syntactic with one level of local name resolution —
there is no type inference or interprocedural dataflow.  Bare names whose
assignment cannot be seen are treated as unknown and never flagged; the goal
is zero false positives at the cost of missing some true positives.
"""

from __future__ import annotations

import ast

__all__ = [
    "call_name",
    "is_guarded",
    "is_risky_argument",
    "is_norm_like",
    "local_assignments",
]

# Calls that bound their result away from the dangerous region.
GUARD_CALL_NAMES = frozenset(
    {
        "clip",
        "clamp",
        "maximum",
        "minimum",
        "abs",
        "exp",
        "cosh",
        "sigmoid",
        "softplus",
        "relu",
        "where",
        "max",
        "min",
    }
)

# Identifier fragments that signal an epsilon/tolerance constant is involved.
GUARD_NAME_FRAGMENTS = ("eps", "min_norm", "clamp", "clip", "safe", "tol", "guard")


def call_name(node: ast.Call) -> str:
    """The trailing identifier of a call: ``np.linalg.norm(x)`` -> ``norm``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _name_mentions_guard(identifier: str) -> bool:
    lowered = identifier.lower()
    return any(fragment in lowered for fragment in GUARD_NAME_FRAGMENTS)


def is_guarded(node: ast.AST) -> bool:
    """Whether the expression visibly bounds itself away from the boundary."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if call_name(sub) in GUARD_CALL_NAMES:
                return True
            # x.norm(..., eps=...) and friends: an eps keyword is a guard.
            if any(kw.arg and _name_mentions_guard(kw.arg) for kw in sub.keywords):
                return True
        elif isinstance(sub, ast.Name) and _name_mentions_guard(sub.id):
            return True
        elif isinstance(sub, ast.Attribute) and _name_mentions_guard(sub.attr):
            return True
    return False


def is_risky_argument(node: ast.AST) -> bool:
    """Whether the expression visibly crosses a domain boundary.

    Subtractions (``1 - ||x||^2``) and negations of non-literals (``-inner``)
    can leave the domain of ``sqrt``/``log``/``arccosh``; negative literals
    (``axis=-1``) and divisions by counts cannot, and are ignored.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Sub):
            return True
        if (
            isinstance(sub, ast.UnaryOp)
            and isinstance(sub.op, ast.USub)
            and not isinstance(sub.operand, ast.Constant)
        ):
            return True
    return False


def is_norm_like(node: ast.AST) -> bool:
    """Whether the expression is a vector-norm call (which can be zero).

    Matches ``np.linalg.norm(...)`` and ``.norm(...)`` method calls;
    ``np.sqrt`` of an arbitrary expression is deliberately excluded —
    ``scale / np.sqrt(dim)`` initialisers divide by a count, not a norm.
    """
    if not isinstance(node, ast.Call):
        return False
    return call_name(node) == "norm"


def local_assignments(func: ast.AST) -> dict[str, list[ast.AST]]:
    """Map simple ``name = expr`` assignments inside a function body.

    Multiple assignments to one name are all recorded; callers decide how to
    combine them (this module's users treat a name as guarded if *any* of its
    assignments is guarded, matching the ``x = norm(...); x = maximum(x, eps)``
    idiom).
    """
    table: dict[str, list[ast.AST]] = {}
    for sub in ast.walk(func):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if isinstance(target, ast.Name):
                table.setdefault(target.id, []).append(sub.value)
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            if isinstance(sub.target, ast.Name):
                table.setdefault(sub.target.id, []).append(sub.value)
    return table
