"""Command line front end: ``python -m repro.analysis [paths]``.

Exit codes: 0 — no unbaselined ``error``-severity findings (``warn``
findings never fail a run); 1 — unbaselined errors found; 2 — usage or
I/O error (unknown rule, missing path, bad format, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Sequence

from .baseline import Baseline, split_by_baseline
from .engine import analyze_paths
from .registry import all_project_rules, all_rules
from .reporting import REPORT_FORMATS, write_report

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Numerics-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=REPORT_FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings; matches are tolerated",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help="incremental cache file keyed by content hashes (off unless given)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the cross-module project rules (file rules only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split(csv: str) -> list[str]:
    return [part.strip() for part in csv.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None, stdout: IO[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.name} [{rule.severity}]: {rule.description}\n")
        for rule in all_project_rules():
            out.write(f"{rule.name} [{rule.severity}, project]: {rule.description}\n")
        return 0

    if args.write_baseline and not args.baseline:
        sys.stderr.write("repro.analysis: error: --write-baseline requires --baseline\n")
        return 2

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        violations = analyze_paths(
            paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            project=not args.no_project,
            cache_path=args.cache,
        )
    except (KeyError, FileNotFoundError) as exc:
        sys.stderr.write(f"repro.analysis: error: {exc}\n")
        return 2

    if args.write_baseline:
        Baseline().write(args.baseline, violations)
        out.write(
            f"repro.analysis: wrote {len(violations)} finding(s) to {args.baseline}\n"
        )
        return 0

    baselined = 0
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"repro.analysis: error: {exc}\n")
            return 2
        violations, grandfathered = split_by_baseline(violations, baseline)
        baselined = len(grandfathered)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            write_report(violations, handle, fmt=args.format, baselined=baselined)
        out.write(f"repro.analysis: report written to {args.out}\n")
    else:
        write_report(violations, out, fmt=args.format, baselined=baselined)
    return 1 if any(v.severity == "error" for v in violations) else 0
