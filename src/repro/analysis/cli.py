"""Command line front end: ``python -m repro.analysis [paths]``.

Exit codes: 0 — no violations; 1 — violations found; 2 — usage or I/O error
(unknown rule, missing path, bad format).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Sequence

from .engine import analyze_paths
from .registry import all_rules
from .reporting import write_report

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Numerics-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split(csv: str) -> list[str]:
    return [part.strip() for part in csv.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None, stdout: IO[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.name}: {rule.description}\n")
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        violations = analyze_paths(paths, select=_split(args.select), ignore=_split(args.ignore))
    except (KeyError, FileNotFoundError) as exc:
        sys.stderr.write(f"repro.analysis: error: {exc}\n")
        return 2
    write_report(violations, out, fmt=args.format)
    return 1 if violations else 0
