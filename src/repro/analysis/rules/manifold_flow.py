"""Manifold-safety rules: flow-sensitive point/tangent tracking.

A value produced by ``expmap*`` lives *on* the manifold (a point); one
produced by ``logmap*`` lives in a tangent space.  Feeding a point back
into ``expmap`` (or a tangent into ``logmap``) silently computes garbage —
the operations are numerically defined for either input, so nothing
crashes, the embedding just drifts.  Likewise combining a Lorentz-model
result with a Poincaré-model result in one expression mixes coordinates of
two different charts.

The tracker is function-local and deliberately conservative: tags come
only from direct manifold API calls and simple name assignments, ``if``
branches are merged by intersection, and loop-assigned names are dropped.
A name the tracker is unsure about carries no tag and is never flagged.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable, Optional

from ..registry import FileContext, Rule, Violation, register

__all__ = ["ManifoldDoubleMap", "MixedManifoldOp", "RedundantClamp"]

# kind: where the value lives.  family: which model's chart produced it.
_EXP_PREFIXES = ("expmap",)
_LOG_PREFIXES = ("logmap",)
_PROJ_PREFIXES = ("proj",)

_FAMILIES = ("lorentz", "poincare", "klein", "euclidean")

# Receiver identifiers that betray the family of a manifold API object.
_FAMILY_MARKERS = {
    "lorentz": "lorentz",
    "hyperboloid": "lorentz",
    "minkowski": "lorentz",
    "poincare": "poincare",
    "ball": "poincare",
    "klein": "klein",
}

_CLAMP_FUNCS = frozenset({"clip", "clamp", "minimum", "maximum"})


class Tag:
    """What the tracker knows about one value."""

    __slots__ = ("kind", "family")

    def __init__(self, kind: Optional[str] = None, family: Optional[str] = None):
        self.kind = kind  # "point" | "tangent" | None
        self.family = family  # one of _FAMILIES | None

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Tag)
            and self.kind == other.kind
            and self.family == other.family
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tag(kind={self.kind!r}, family={self.family!r})"


def _identifier_chain(node: ast.AST) -> list[str]:
    """Lower-cased identifiers of an attribute/name chain (``a.b.c``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr.lower())
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id.lower())
    elif isinstance(node, ast.Call):
        parts.extend(_identifier_chain(node.func))
    return parts


def _family_of_chain(parts: list[str]) -> Optional[str]:
    for part in parts:
        for marker, family in _FAMILY_MARKERS.items():
            if marker in part:
                return family
    return None


def _manifold_call_kind(node: ast.Call) -> Optional[tuple[str, Optional[str], str]]:
    """(result kind, family, api name) for a manifold API call, else None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        api = func.attr
        chain = _identifier_chain(func.value)
    elif isinstance(func, ast.Name):
        api = func.id
        chain = []
    else:
        return None
    lowered = api.lower()
    family = _family_of_chain(chain) or _family_of_chain([lowered])
    if lowered.startswith(_EXP_PREFIXES):
        return "point", family, api
    if lowered.startswith(_LOG_PREFIXES):
        return "tangent", family, api
    if lowered.startswith(_PROJ_PREFIXES) and ("tan" in lowered or "tangent" in lowered):
        return "tangent", family, api
    if lowered.startswith(_PROJ_PREFIXES):
        return "point", family, api
    return None


def _primary_argument(node: ast.Call) -> Optional[ast.AST]:
    """The manifold-valued argument of an API call.

    ``expmap(v)``/``logmap(p)`` take it first; the two-argument forms
    ``expmap(p, v)``/``logmap(p, q)`` carry the *moving* value second.
    Zero-anchored ``expmap0``/``logmap0`` always use the first argument.
    """
    if not node.args:
        return None
    name = node.func.attr if isinstance(node.func, ast.Attribute) else (
        node.func.id if isinstance(node.func, ast.Name) else ""
    )
    if name.lower().rstrip("0123456789_np").endswith(("expmap", "logmap")) and len(node.args) >= 2:
        if not name.lower().startswith(("expmap0", "logmap0")):
            return node.args[1]
    return node.args[0]


class _FlowTracker:
    """Per-function forward pass assigning :class:`Tag`s to local names."""

    def __init__(self) -> None:
        self.tags: dict[str, Tag] = {}

    # -- expression tagging -------------------------------------------
    def tag_of(self, node: ast.AST) -> Tag:
        if isinstance(node, ast.Name):
            return self.tags.get(node.id, Tag())
        if isinstance(node, ast.Call):
            info = _manifold_call_kind(node)
            if info is not None:
                kind, family, _ = info
                if family is None:
                    arg = _primary_argument(node)
                    if arg is not None:
                        family = self.tag_of(arg).family
                return Tag(kind, family)
            return Tag()
        # Tags do NOT propagate through arithmetic: ``p - q`` of two points
        # is a legitimate chord computation we cannot classify.
        return Tag()

    # -- statement walk -----------------------------------------------
    def process_assign(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tags[target.id] = self.tag_of(value)

    def merge_branches(self, before: dict[str, Tag], branches: list[dict[str, Tag]]) -> None:
        """Keep only tags every branch agrees on (intersection merge)."""
        merged: dict[str, Tag] = {}
        names = set(before)
        for branch in branches:
            names |= set(branch)
        for name in names:
            candidates = [branch.get(name, before.get(name)) for branch in branches]
            first = candidates[0]
            if first is not None and all(c == first for c in candidates[1:]):
                merged[name] = first
        self.tags = merged

    def drop_loop_targets(self, node: ast.AST) -> None:
        """Loop-carried names are unknowable to a single forward pass."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.tags.pop(name_node.id, None)
            elif isinstance(sub, ast.For):
                for name_node in ast.walk(sub.target):
                    if isinstance(name_node, ast.Name):
                        self.tags.pop(name_node.id, None)


def _in_manifold_scope(path: PurePosixPath) -> bool:
    parts = set(path.parts)
    return bool(parts & {"manifolds", "models", "taxonomy", "optim"})


class _FlowRule(Rule):
    """Shared walk: run the tracker over every function, emit per-call."""

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_manifold_scope(path)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tracker = _FlowTracker()
                self._walk_body(ctx, tracker, node.body, out)
        return out

    def _walk_body(self, ctx, tracker: _FlowTracker, body: list, out: list) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes get their own tracker
            if isinstance(stmt, (ast.For, ast.While)):
                tracker.drop_loop_targets(stmt)
                self._visit_exprs(ctx, tracker, stmt, out, shallow=True)
                continue
            if isinstance(stmt, ast.If):
                self._visit_node(ctx, tracker, stmt.test, out)
                before = dict(tracker.tags)
                branch_tags: list[dict[str, Tag]] = []
                for branch in (stmt.body, stmt.orelse):
                    tracker.tags = dict(before)
                    self._walk_body(ctx, tracker, branch, out)
                    branch_tags.append(tracker.tags)
                tracker.merge_branches(before, branch_tags)
                continue
            if isinstance(stmt, ast.Assign):
                self._visit_node(ctx, tracker, stmt.value, out)
                for target in stmt.targets:
                    tracker.process_assign(target, stmt.value)
                continue
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._visit_node(ctx, tracker, stmt.value, out)
                tracker.process_assign(stmt.target, stmt.value)
                continue
            self._visit_exprs(ctx, tracker, stmt, out, shallow=False)

    def _visit_exprs(self, ctx, tracker, stmt, out, shallow: bool) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            self._visit_node(ctx, tracker, node, out, walk=False)

    def _visit_node(self, ctx, tracker, node, out, walk: bool = True) -> None:
        nodes = ast.walk(node) if walk else [node]
        for sub in nodes:
            self.visit(ctx, tracker, sub, out)

    def visit(self, ctx, tracker: _FlowTracker, node: ast.AST, out: list) -> None:
        raise NotImplementedError


@register
class ManifoldDoubleMap(_FlowRule):
    """``expmap(expmap(...))`` / ``logmap(logmap(...))`` chains.

    A point goes through ``logmap`` to become a tangent and through
    ``expmap`` to come back; applying the same map twice means one chart
    transition was skipped or duplicated.  The argument's tag must be
    *known* for the rule to fire — untracked values pass silently.
    """

    name = "manifold-double-map"
    description = (
        "expmap applied to a value already on the manifold, or logmap applied "
        "to a tangent vector (one chart transition skipped or duplicated)"
    )

    def visit(self, ctx, tracker, node, out) -> None:
        if not isinstance(node, ast.Call):
            return
        info = _manifold_call_kind(node)
        if info is None:
            return
        kind, _, api = info
        if api.lower().startswith(_PROJ_PREFIXES):
            return  # projection is idempotent by design
        arg = _primary_argument(node)
        if arg is None:
            return
        arg_tag = tracker.tag_of(arg)
        if kind == "point" and arg_tag.kind == "point":
            out.append(
                ctx.violation(
                    self,
                    node,
                    f"{api}() applied to a value that is already a manifold "
                    "point; expmap expects a tangent vector",
                )
            )
        elif kind == "tangent" and arg_tag.kind == "tangent":
            out.append(
                ctx.violation(
                    self,
                    node,
                    f"{api}() applied to a tangent vector; logmap expects a "
                    "point on the manifold",
                )
            )


@register
class MixedManifoldOp(_FlowRule):
    """Lorentz and Poincaré coordinates combined in one expression.

    The models are isometric but their coordinates are not interchangeable;
    adding a hyperboloid point to a ball point is chart soup.  Fires only
    when *both* operands carry a known, conflicting family tag.
    """

    name = "mixed-manifold-op"
    description = (
        "arithmetic combining values from different manifold models "
        "(e.g. a Lorentz expmap result with a Poincaré one) without an "
        "explicit model-to-model conversion"
    )

    def visit(self, ctx, tracker, node, out) -> None:
        if not isinstance(node, ast.BinOp):
            return
        left = tracker.tag_of(node.left)
        right = tracker.tag_of(node.right)
        if (
            left.family is not None
            and right.family is not None
            and left.family != right.family
        ):
            out.append(
                ctx.violation(
                    self,
                    node,
                    f"operands live in different manifold models "
                    f"({left.family} vs {right.family}); convert through a "
                    "shared chart before combining them",
                )
            )


def _clamp_call_info(node: ast.Call) -> Optional[str]:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name if name in _CLAMP_FUNCS else None


@register
class RedundantClamp(Rule):
    """Clamping the output of an operation that is already clamped.

    ``clip(clip(x, ...), ...)`` (and ``clamp``/``minimum``/``maximum``
    nests with identical bounds semantics) usually means two call sites
    each added a guard defensively; the inner one wins and the outer one
    hides intent.  Only *directly nested* calls are flagged — a clamp of a
    name that was clamped earlier may be deliberate re-entry protection.
    """

    name = "redundant-clamp"
    description = (
        "clip/clamp applied directly to the result of another clip/clamp; "
        "the outer guard is dead or the bounds disagree silently"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_manifold_scope(path)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            outer = _clamp_call_info(node)
            if outer is None:
                continue
            receiver: list[ast.AST] = list(node.args)
            if isinstance(node.func, ast.Attribute):
                receiver.append(node.func.value)
            for arg in receiver:
                if isinstance(arg, ast.Call):
                    inner = _clamp_call_info(arg)
                    if inner is not None and self._same_direction(outer, inner):
                        yield ctx.violation(
                            self,
                            node,
                            f"{outer}() applied directly to a {inner}() result; "
                            "one of the two guards is redundant",
                        )

    @staticmethod
    def _same_direction(outer: str, inner: str) -> bool:
        """min-of-max (a floor then a ceiling) is a legitimate range clamp."""
        if {outer, inner} == {"minimum", "maximum"}:
            return False
        return True
