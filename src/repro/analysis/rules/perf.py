"""Hot-path performance lints (``warn`` severity — advisory, never gating).

The evaluation and serving paths dominate wall-clock time in this repo
(PR 2 measured 30-80x between looped and vectorized variants), so two
patterns are worth flagging there:

* a Python ``for`` loop iterating over ndarray rows where a vectorized
  formulation exists, and
* rebuilding an adjacency/normalisation structure inside a loop whose
  iterations cannot change it.

Both rules are scoped to the hot-path modules (``eval/``, ``serve/``,
``models/graph.py``) and exempt ``*_reference*`` functions — the looped
reference twins are *deliberately* scalar, that is their whole point.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from ..registry import FileContext, Rule, Violation, register

__all__ = ["NdarrayRowLoop", "LoopInvariantRebuild"]

# Calls whose result is an ndarray (provenance markers for loop targets).
_NP_PRODUCERS = frozenset(
    {"array", "zeros", "ones", "empty", "arange", "asarray", "stack", "vstack", "concatenate"}
)

# Callee names that build adjacency / normalisation structures from scratch.
_REBUILD_MARKERS = (
    "adjacency",
    "build_adj",
    "normalize_adj",
    "norm_adj",
    "degree_matrix",
    "csr_rows",
    "to_csr",
)


def _in_hot_path(path: PurePosixPath) -> bool:
    parts = set(path.parts)
    if parts & {"eval", "serve"}:
        return True
    return path.parts[-2:] == ("models", "graph.py")


def _is_reference_fn(name: str) -> bool:
    return "_reference" in name


def _call_tail(node: ast.AST) -> str:
    """Last identifier of a call's callee chain ('' when not a call)."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _np_rooted(node: ast.AST) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in {"np", "numpy"}


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(scope: ast.AST):
    """Nodes of one function body, not descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _ndarray_names(fn: ast.AST) -> set[str]:
    """Local names with visible ndarray provenance (np.* producers)."""
    names: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            if _np_rooted(call.func) and _call_tail(call) in _NP_PRODUCERS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


@register
class NdarrayRowLoop(Rule):
    """Python-level iteration over ndarray rows in a hot-path module.

    Flags ``for i in range(len(a))`` / ``for i in range(a.shape[0])`` and
    ``for row in a`` where ``a`` has visible numpy provenance, inside
    ``eval/``, ``serve/`` or ``models/graph.py``.  Batched 3-argument
    ``range(0, n, step)`` loops are *not* flagged — chunked iteration is the
    vectorized idiom, not a scalar loop.
    """

    name = "ndarray-row-loop"
    description = (
        "Python for-loop over ndarray rows in a hot-path module; vectorize "
        "or batch the operation (PR 2 measured 30-80x here)"
    )
    severity = "warn"

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_hot_path(path)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for fn in _functions(ctx.tree):
            if _is_reference_fn(fn.name):
                continue
            array_names = _ndarray_names(fn)
            for node in _own_nodes(fn):
                if not isinstance(node, ast.For):
                    continue
                reason = self._loop_reason(node.iter, array_names)
                if reason:
                    yield ctx.violation(
                        self,
                        node,
                        f"{reason} in {fn.name}(); vectorize the body or batch "
                        "the rows instead of a Python-level loop",
                    )

    def _loop_reason(self, iter_node: ast.AST, array_names: set[str]) -> str:
        if isinstance(iter_node, ast.Call) and _call_tail(iter_node) == "range":
            if len(iter_node.args) != 1:
                return ""  # batched range(0, n, step): the fast idiom
            arg = iter_node.args[0]
            if isinstance(arg, ast.Call) and _call_tail(arg) == "len":
                inner = arg.args[0] if arg.args else None
                if isinstance(inner, ast.Name) and inner.id in array_names:
                    return f"loop over range(len({inner.id}))"
            if (
                isinstance(arg, ast.Subscript)
                and isinstance(arg.value, ast.Attribute)
                and arg.value.attr == "shape"
            ):
                root = arg.value.value
                if isinstance(root, ast.Name) and root.id in array_names:
                    return f"loop over range({root.id}.shape[...])"
        elif isinstance(iter_node, ast.Name) and iter_node.id in array_names:
            return f"row-wise iteration over ndarray {iter_node.id!r}"
        return ""


@register
class LoopInvariantRebuild(Rule):
    """Adjacency/normalisation structures rebuilt inside a loop.

    A call whose name marks it as an adjacency or normalisation *builder*
    (``*adjacency*``, ``normalize_adj``, ``to_csr`` …) placed inside a
    ``for``/``while`` body, with no loop variable among its arguments, does
    identical work every iteration.  Hoist it (or cache it the way
    ``LightGCNPropagation.__init__`` pins its CSR rows).
    """

    name = "loop-invariant-rebuild"
    description = (
        "adjacency/normalisation builder called inside a loop with "
        "loop-invariant arguments; hoist it out or cache the result"
    )
    severity = "warn"

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_hot_path(path)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for fn in _functions(ctx.tree):
            if _is_reference_fn(fn.name):
                continue
            for loop in _own_nodes(fn):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                loop_names = self._loop_bound_names(loop)
                for node in ast.walk(loop):
                    if node is loop or not isinstance(node, ast.Call):
                        continue
                    tail = _call_tail(node).lower()
                    if not any(marker in tail for marker in _REBUILD_MARKERS):
                        continue
                    if self._uses_names(node, loop_names):
                        continue  # argument varies per iteration: not invariant
                    yield ctx.violation(
                        self,
                        node,
                        f"{_call_tail(node)}() rebuilt every iteration of the "
                        f"loop at line {loop.lineno}; its arguments are "
                        "loop-invariant — hoist or cache it",
                    )

    @staticmethod
    def _loop_bound_names(loop: ast.AST) -> set[str]:
        """Names (re)bound anywhere in the loop, including its target."""
        names: set[str] = set()
        if isinstance(loop, ast.For):
            for node in ast.walk(loop.target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                for node in ast.walk(sub.target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        return names

    @staticmethod
    def _uses_names(call: ast.Call, names: set[str]) -> bool:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in names:
                    return True
        return False
