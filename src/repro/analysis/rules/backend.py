"""Backend discipline: routed modules must not call numpy kernels directly.

The compute seam (``repro.backend``) only works if every hot-path module
actually goes through it: a stray ``np.cosh`` in ``repro.manifolds`` or
``repro.serve.scoring`` silently pins that call site to the reference
kernels and the ``--backend fused`` switch stops covering it.  This pack
keeps the seam honest — advisory (``warn``) severity, because shape and
bookkeeping numpy (``np.sum``, ``np.concatenate``, indexing helpers) is
fine; only the *kernel* surface the backend abstracts is flagged.

Exemptions mirror the architecture:

* ``repro.backend.*`` itself — the numpy reference backend IS the direct
  numpy code, extracted verbatim;
* ``repro.manifolds.constants`` — a re-export shim with no compute;
* functions whose name contains ``_reference`` — reference twins are
  deliberately backend-independent so the 1e-10 differential suites have
  a fixed point to compare every backend against.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from ..project import module_name_for_path
from ..registry import FileContext, Rule, Violation, register

# The kernel surface KernelBackend abstracts: transcendental elementwise
# chains, linear algebra, and the norm reductions the fused backend blocks
# over.  Structural numpy (sum/where/concatenate/clip/...) stays allowed.
_KERNEL_FUNCS = frozenset({
    "exp", "expm1", "log", "log1p", "sqrt",
    "tanh", "sinh", "cosh", "arccosh", "arcsinh", "arctanh",
    "matmul", "dot", "outer", "einsum", "inner", "tensordot",
    "norm",  # np.linalg.norm — backends expose ``norm`` with axis/keepdims
})

# Modules routed through the backend seam (exact names and prefixes).
_ROUTED_MODULES = frozenset({
    "repro.serve.scoring",
    "repro.autodiff.tensor",
    "repro.autodiff.ops",
    "repro.autodiff.functional",
})
_ROUTED_PREFIXES = ("repro.manifolds.", "repro.retrieval.", "repro.stream.")
_EXEMPT_MODULES = frozenset({"repro.manifolds.constants"})
_EXEMPT_PREFIXES = ("repro.backend",)


def _is_routed(module: str) -> bool:
    if module in _EXEMPT_MODULES or module.startswith(_EXEMPT_PREFIXES):
        return False
    return module in _ROUTED_MODULES or module.startswith(_ROUTED_PREFIXES)


def _np_kernel_name(func: ast.AST) -> str | None:
    """The kernel name for ``np.f``/``numpy.f``/``np.linalg.f`` callees."""
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    node = func.value
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name) and node.id in {"np", "numpy"}:
        return name if name in _KERNEL_FUNCS else None
    return None


def _reference_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of ``*_reference*`` functions (backend-independent twins)."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "_reference" in node.name:
                spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


@register
class BackendDiscipline(Rule):
    """Kernel-grade numpy calls in backend-routed modules must use the seam.

    Flags ``np.<kernel>``/``numpy.<kernel>``/``np.linalg.norm`` calls in
    ``repro.manifolds.*``, ``repro.retrieval.*``, ``repro.serve.scoring``
    and the autodiff op modules, where ``<kernel>`` is part of the
    surface ``KernelBackend`` abstracts (transcendentals,
    matmul/outer/einsum, norm).  Reference twins (``*_reference*``
    functions), ``repro.manifolds.constants`` and ``repro.backend.*``
    itself are exempt.
    """

    name = "backend-discipline"
    description = (
        "direct numpy kernel call in a backend-routed module; route through "
        "repro.backend.get_backend() so --backend/REPRO_BACKEND covers it"
    )
    severity = "warn"

    def applies_to(self, path: PurePosixPath) -> bool:
        return _is_routed(module_name_for_path(path))

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        reference = _reference_spans(ctx.tree)
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kernel = _np_kernel_name(node.func)
            if kernel is None:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in reference):
                continue
            violations.append(
                ctx.violation(
                    self,
                    node,
                    f"direct np.{kernel} call in backend-routed module; use "
                    f"get_backend().{'norm' if kernel == 'norm' else kernel} "
                    "(or a fused kernel) so backend selection covers this site",
                )
            )
        return violations
