"""Contract rules for the custom reverse-mode autodiff engine.

The tape in ``repro.autodiff`` records closures over forward values.  Two
invariants keep it honest:

* ``Tensor.data`` is mutated only by the optimisers (and the engine itself);
  anywhere else an in-place write silently corrupts recorded forward values
  and yields wrong gradients with no error.
* Every op that produces a graph node registers a gradient (the ``vjp``
  argument of ``Tensor._from_op``); a class-style op with ``forward`` must
  pair it with ``backward``/``vjp``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from ..registry import FileContext, Rule, Violation, register

# Directories whose job is to mutate parameter storage.
_SANCTIONED_PARTS = ("optim", "autodiff")


def _is_data_attribute(node: ast.AST) -> ast.Attribute | None:
    """Return the ``<expr>.data`` attribute behind a write target, if any."""
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr == "data":
        return target
    return None


@register
class InplaceTensorData(Rule):
    """Writes to ``.data`` outside ``optim/``/``autodiff/`` break the tape."""

    name = "inplace-tensor-data"
    description = (
        "assignment to a .data attribute outside optim/ and autodiff/ "
        "(in-place mutation corrupts recorded forward values on the tape)"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        # Tests construct tensor states directly; only library code is held
        # to the optimiser-mediated-update contract.  Fixture trees stay
        # lintable: they are the rules' own test data.
        parts = set(path.parts)
        if "tests" in parts and "fixtures" not in parts:
            return False
        return not any(part in _SANCTIONED_PARTS for part in path.parts)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = _is_data_attribute(target)
                if attr is not None:
                    yield ctx.violation(
                        self,
                        node,
                        "in-place write to .data outside optim/; route updates "
                        "through an optimiser or rebuild the Tensor",
                    )


@register
class MissingBackward(Rule):
    """Autodiff ops must register a gradient.

    Flags calls to ``Tensor._from_op`` that omit the ``vjp`` argument or pass
    a literal ``None``, and (inside ``autodiff/``) class-style ops that define
    ``forward`` without a ``backward``/``vjp`` method.
    """

    name = "missing-backward"
    description = (
        "autodiff op without a registered gradient (missing/None vjp in "
        "_from_op, or forward without backward)"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        in_autodiff = "autodiff" in ctx.path.parts
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_from_op(ctx, node)
            elif in_autodiff and isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_from_op(self, ctx, node: ast.Call) -> Iterable[Violation]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "_from_op"):
            return
        vjp: ast.AST | None = None
        if len(node.args) >= 3:
            vjp = node.args[2]
        else:
            for kw in node.keywords:
                if kw.arg == "vjp":
                    vjp = kw.value
        if vjp is None or (isinstance(vjp, ast.Constant) and vjp.value is None):
            yield ctx.violation(
                self,
                node,
                "_from_op call without a vjp: the op's output would detach "
                "from the tape and receive no gradient",
            )

    def _check_class(self, ctx, node: ast.ClassDef) -> Iterable[Violation]:
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "forward" in methods and not methods & {"backward", "vjp"}:
            yield ctx.violation(
                self,
                node,
                f"class {node.name} defines forward() without backward()/vjp(); "
                "register a gradient for the op",
            )
