"""Cross-module contract rules (project pass).

Three repo-wide invariants that no single file shows on its own:

* **frozen-scores-contract** — the serving export contract (PR 4): every
  model reachable from ``repro.models.registry.MODEL_REGISTRY`` must define
  or inherit ``frozen_scores``, and every ``frozen_scores`` implementation
  must name a score-fn id that ``repro.serve.scoring`` actually registers.
  An unregistered id only fails at export time, on the model that uses it.
* **reference-twin** — the differential-testing contract (PR 2): every
  public vectorized function with a pinned ``*_reference`` twin keeps an
  interface the twin can stand in for, and the twin is exercised by name in
  ``tests/test_vectorized_vs_reference.py``.
* **untracked-parameter** — the silent-corruption bug class shipped in
  PR 3: ``Parameter``s stored in containers that ``Module.state_dict``
  does not walk vanish from checkpoints without an error.  The rule reads
  the *project's own* ``Module.state_dict`` to learn which containers are
  reachable (the indexed list/tuple convention), then flags parameter
  storage outside it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..project import ClassInfo, ModuleInfo, ProjectContext
from ..registry import ProjectRule, Violation, register_project

_REGISTRY_SUFFIX = "models/registry.py"
_SCORING_SUFFIX = "serve/scoring.py"
_DIFF_TEST_NAME = "test_vectorized_vs_reference.py"


def _str_constants(node: ast.AST, func: ast.FunctionDef | None = None) -> list[str]:
    """All string literals an expression can evaluate to (best effort).

    Resolves constants, ``a if cond else b`` conditionals, and one level of
    local ``name = ...`` assignment inside ``func``.  Anything else yields
    nothing — unknown, never guessed.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        return _str_constants(node.body, func) + _str_constants(node.orelse, func)
    if isinstance(node, ast.Name) and func is not None:
        values: list[str] = []
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name) and target.id == node.id:
                    values.extend(_str_constants(sub.value))
        return values
    return []


def _score_fn_ids(method: ast.FunctionDef) -> list[tuple[ast.AST, list[str]]]:
    """(anchor node, resolvable ids) per ``score_fn`` entry returned."""
    out = []
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "score_fn"
                    and value is not None
                ):
                    out.append((value, _str_constants(value, method)))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "dict":
                for kw in node.keywords:
                    if kw.arg == "score_fn":
                        out.append((kw.value, _str_constants(kw.value, method)))
    return out


def _registered_score_ids(scoring: ModuleInfo) -> set[str]:
    """Score-fn ids registered in the scoring module (``_register("id", ...)``)."""
    ids: set[str] = set()
    for node in ast.walk(scoring.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name == "_register" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                ids.add(first.value)
        elif name == "SCORE_FNS":
            continue
    # Direct ``SCORE_FNS["id"] = fn`` assignments count too.
    for node in ast.walk(scoring.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "SCORE_FNS"
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    ids.add(target.slice.value)
    return ids


def _registry_entries(registry: ModuleInfo) -> Iterator[tuple[str, ast.AST]]:
    """(model name, value node) pairs of the ``MODEL_REGISTRY`` dict literal."""
    value = registry.assigns.get("MODEL_REGISTRY")
    if not isinstance(value, ast.Dict):
        return
    for key, entry in zip(value.keys, value.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key.value, entry


def _resolve_registry_class(
    project: ProjectContext, registry: ModuleInfo, entry: ast.AST
) -> ClassInfo | None:
    """Resolve a registry value (class name or local factory) to a class."""
    if not isinstance(entry, ast.Name):
        return None
    direct = project.resolve_class(entry.id)
    if direct is not None:
        return direct
    factory = registry.functions.get(entry.id)
    if factory is not None and isinstance(factory.returns, (ast.Name, ast.Attribute)):
        text = factory.returns.id if isinstance(factory.returns, ast.Name) else factory.returns.attr
        return project.resolve_class(text)
    return None


@register_project
class FrozenScoresContract(ProjectRule):
    """Registry models and ``repro.serve.scoring`` must stay in lock-step."""

    name = "frozen-scores-contract"
    description = (
        "registered model without a frozen_scores() serving contract, or a "
        "frozen_scores() naming a score-fn id repro.serve.scoring does not register"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        registry = project.find_module(_REGISTRY_SUFFIX)
        scoring = project.find_module(_SCORING_SUFFIX)
        if registry is None or scoring is None:
            return  # not a tree that carries the serving contract
        score_ids = _registered_score_ids(scoring)

        checked: set[int] = set()
        for model_name, entry in _registry_entries(registry):
            info = _resolve_registry_class(project, registry, entry)
            if info is None:
                continue  # opaque entry (lambda, import alias): never guess
            if project.find_method(info, "frozen_scores") is None:
                yield self.violation(
                    project,
                    registry,
                    entry,
                    f"registered model {model_name!r} ({info.name}) neither defines "
                    "nor inherits frozen_scores(); it cannot be exported by "
                    "repro.serve",
                )
            if id(info) in checked:
                continue
            checked.add(id(info))

        for infos in project.classes_by_name.values():
            for info in infos:
                method = info.methods.get("frozen_scores")
                if method is None:
                    continue
                for anchor, ids in _score_fn_ids(method):
                    for score_id in ids:
                        if score_id not in score_ids:
                            yield self.violation(
                                project,
                                info.module,
                                anchor,
                                f"{info.name}.frozen_scores() names score_fn "
                                f"{score_id!r}, which {scoring.name} does not "
                                "register; the export would be rejected at "
                                "serving time",
                            )


def _twin_candidates(reference_name: str) -> list[str]:
    """Fast-twin names a ``*_reference`` function may pin.

    ``f_reference`` → ``f``; ``f_reference_np`` → ``f_np`` and ``f`` (the
    fast path may be the Tensor version of an ``_np`` reference).
    """
    stripped = reference_name.replace("_reference", "")
    candidates = [stripped]
    if stripped.endswith("_np"):
        candidates.append(stripped[: -len("_np")])
    return candidates


def _signature_names(node: ast.FunctionDef) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg:
        names.append("*" + args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append("**" + args.kwarg.arg)
    return names


def _signature_compatible(fast: ast.FunctionDef, reference: ast.FunctionDef) -> bool:
    """The fast twin's signature must start with the reference's parameters.

    Extra *trailing, defaulted* parameters on the fast path (batching knobs
    like ``batch_users``) are allowed: every call the differential suite
    makes against the reference is then valid against the fast path too.
    """
    ref_names = _signature_names(reference)
    fast_names = _signature_names(fast)
    if fast_names[: len(ref_names)] != ref_names:
        return False
    extra = len(fast_names) - len(ref_names)
    if extra == 0:
        return True
    fast_args = fast.args
    defaults = len(fast_args.defaults) + sum(
        1 for d in fast_args.kw_defaults if d is not None
    )
    return defaults >= extra


@register_project
class ReferenceTwin(ProjectRule):
    """``*_reference`` twins must pair, match signatures, and be tested."""

    name = "reference-twin"
    description = (
        "a *_reference correctness anchor whose fast twin is missing, whose "
        "signature diverged, or which tests/test_vectorized_vs_reference.py "
        "never exercises"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        diff_test = None
        for module in project.modules.values():
            if module.path.name == _DIFF_TEST_NAME:
                diff_test = module
        diff_source = "\n".join(diff_test.lines) if diff_test is not None else None

        for module in project.modules.values():
            if module.path.name.startswith("test_"):
                continue
            scopes: list[tuple[dict[str, ast.FunctionDef], str]] = [
                (module.functions, "")
            ]
            for info in module.classes.values():
                scopes.append((info.methods, f"{info.name}."))
            for functions, prefix in scopes:
                for fn_name, node in functions.items():
                    if "_reference" not in fn_name or fn_name.startswith("_"):
                        continue
                    yield from self._check_pair(
                        project, module, functions, prefix, fn_name, node, diff_source
                    )

    def _check_pair(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        functions: dict[str, ast.FunctionDef],
        prefix: str,
        fn_name: str,
        node: ast.FunctionDef,
        diff_source: str | None,
    ) -> Iterator[Violation]:
        fast = None
        for candidate in _twin_candidates(fn_name):
            if candidate in functions:
                fast = functions[candidate]
                break
        if fast is None:
            yield self.violation(
                project,
                module,
                node,
                f"{prefix}{fn_name} has no fast twin "
                f"({' or '.join(_twin_candidates(fn_name))}) in the same scope; "
                "a dangling reference anchors nothing",
            )
            return
        if not _signature_compatible(fast, node):
            yield self.violation(
                project,
                module,
                node,
                f"{prefix}{fn_name} signature ({', '.join(_signature_names(node))}) "
                f"diverged from its fast twin {fast.name} "
                f"({', '.join(_signature_names(fast))}); the differential suite "
                "can no longer call them interchangeably",
            )
        if diff_source is not None and fn_name not in diff_source:
            yield self.violation(
                project,
                module,
                node,
                f"{prefix}{fn_name} is never exercised by "
                f"tests/{_DIFF_TEST_NAME}; an untested reference twin pins "
                "nothing",
            )


def _is_parameter_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    return name == "Parameter"


def _container_parameters(value: ast.AST) -> tuple[str, ast.AST] | None:
    """(container kind, offending node) when a literal holds ``Parameter``s.

    Kinds: ``list``/``tuple`` (reachable only under the indexed state_dict
    convention), ``dict``/``set`` (never reachable), ``nested`` (a
    list/tuple inside a list/tuple — deeper than the indexed walk goes).
    """
    if isinstance(value, (ast.List, ast.Tuple)):
        kind = "list" if isinstance(value, ast.List) else "tuple"
        for item in value.elts:
            if _is_parameter_call(item):
                return kind, item
            if isinstance(item, (ast.List, ast.Tuple)):
                for sub in ast.walk(item):
                    if _is_parameter_call(sub):
                        return "nested", sub
        return None
    if isinstance(value, (ast.ListComp,)):
        if _is_parameter_call(value.elt):
            return "list", value.elt
        return None
    if isinstance(value, ast.Dict):
        for item in value.values:
            if item is not None and _is_parameter_call(item):
                return "dict", item
        return None
    if isinstance(value, ast.DictComp):
        if _is_parameter_call(value.value):
            return "dict", value.value
        return None
    if isinstance(value, (ast.Set, ast.SetComp)):
        for sub in ast.walk(value):
            if _is_parameter_call(sub):
                return "set", sub
        return None
    return None


def _state_dict_walks_containers(project: ProjectContext) -> bool:
    """Whether the project's ``Module.state_dict`` handles list/tuple members.

    Looks for an ``isinstance(..., (list, tuple))`` test (or ``enumerate``
    over members) inside the ``state_dict`` body — the indexed-key
    convention this repo adopted after the PR 3 snapshot bug.  A project
    whose ``Module.state_dict`` lacks it (the PR 3-era code) makes even a
    flat list of Parameters invisible to checkpoints.
    """
    for info in project.classes_by_name.get("Module", []):
        method = info.methods.get("state_dict")
        if method is None:
            continue
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                second = node.args[1]
                names = set()
                if isinstance(second, ast.Tuple):
                    names = {e.id for e in second.elts if isinstance(e, ast.Name)}
                elif isinstance(second, ast.Name):
                    names = {second.id}
                if names & {"list", "tuple"}:
                    return True
        return False
    return False  # no Module.state_dict in view: assume the narrow walk


@register_project
class UntrackedParameter(ProjectRule):
    """Parameters must live where ``Module.state_dict`` can see them."""

    name = "untracked-parameter"
    description = (
        "Parameter stored in a container Module.state_dict does not walk; "
        "checkpoints silently drop it and best-epoch restores keep stale "
        "weights (the PR 3 snapshot bug class)"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        if not project.classes_by_name.get("Module"):
            return  # not a tree that carries the Module convention
        lists_reachable = _state_dict_walks_containers(project)
        for infos in project.classes_by_name.values():
            for info in infos:
                if info.name == "Module" or not project.is_subclass_of(info, "Module"):
                    continue
                yield from self._check_class(project, info, lists_reachable)

    def _check_class(
        self, project: ProjectContext, info: ClassInfo, lists_reachable: bool
    ) -> Iterator[Violation]:
        for attr, values in sorted(info.self_assigns.items()):
            for value in values:
                if value is None:
                    continue
                held = _container_parameters(value)
                if held is None:
                    continue
                kind, anchor = held
                if kind in ("list", "tuple") and lists_reachable:
                    continue  # indexed keys cover flat list/tuple members
                if kind in ("list", "tuple"):
                    detail = (
                        "this project's Module.state_dict does not walk "
                        "list/tuple attributes, so these Parameters never "
                        "reach a checkpoint"
                    )
                else:
                    detail = (
                        f"state_dict never walks {kind} containers, so these "
                        "Parameters never reach a checkpoint"
                    )
                yield self.violation(
                    project,
                    info.module,
                    anchor,
                    f"{info.name}.{attr} holds Parameter(s) inside a {kind}; {detail}",
                )
