"""Rule modules; importing this package registers every rule."""

from . import (  # noqa: F401
    autodiff_contracts,
    contracts,
    hygiene,
    manifold_flow,
    numerics,
    perf,
)
