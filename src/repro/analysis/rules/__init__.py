"""Rule modules; importing this package registers every rule."""

from . import autodiff_contracts, hygiene, numerics  # noqa: F401
