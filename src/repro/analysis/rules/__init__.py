"""Rule modules; importing this package registers every rule."""

from . import (  # noqa: F401
    autodiff_contracts,
    backend,
    contracts,
    hygiene,
    manifold_flow,
    numerics,
    perf,
)
