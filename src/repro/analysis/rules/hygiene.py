"""General library-hygiene rules: RNG discipline, exceptions, defaults, I/O."""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from ..registry import FileContext, Rule, Violation, register

# Constructors on np.random that produce an isolated, seedable generator.
_SANCTIONED_RANDOM_ATTRS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "SFC64"}
)

# Files whose whole point is terminal output.
_PRINT_OK_FILENAMES = frozenset({"cli.py", "__main__.py"})


@register
class GlobalRng(Rule):
    """Randomness must flow through an explicit ``np.random.Generator``.

    Module-level ``np.random.*`` calls (``seed``/``rand``/``shuffle``/...)
    share hidden global state, so two call sites silently decorrelate or
    couple runs; every paper table in this repo must be reproducible from a
    seed passed down explicitly (see ``repro.utils.rng.ensure_rng``).
    """

    name = "global-rng"
    description = (
        "call to the global np.random state; pass an np.random.Generator "
        "(repro.utils.rng.ensure_rng) instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in {"np", "numpy"}
            ):
                if func.attr == "RandomState" or func.attr not in _SANCTIONED_RANDOM_ATTRS:
                    yield ctx.violation(
                        self,
                        node,
                        f"np.random.{func.attr}() uses process-global RNG state; "
                        "accept and use an np.random.Generator",
                    )


@register
class BareExcept(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt and real bugs."""

    name = "bare-except"
    description = "bare except clause; catch a specific exception type"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.violation(
                    self,
                    node,
                    "bare except hides SystemExit/KeyboardInterrupt and NaN bugs; "
                    "name the exception type",
                )


@register
class MutableDefaultArg(Rule):
    """Mutable default arguments are shared across calls."""

    name = "mutable-default-arg"
    description = "mutable default argument (list/dict/set); default to None instead"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set"})

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.violation(
                        self,
                        default,
                        "mutable default argument is evaluated once and shared "
                        "across calls; use None and create inside",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False


@register
class PrintCall(Rule):
    """Library code logs through ``repro.utils.logging``, never ``print``."""

    name = "print-call"
    description = (
        "print() in library code; use repro.utils.logging.get_logger() "
        "(cli.py/__main__.py are exempt)"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        # scripts/ are terminal entry points: print is their interface.
        # Fixture trees stay lintable: they are the rules' own test data.
        parts = set(path.parts)
        if "scripts" in parts and "fixtures" not in parts:
            return False
        return path.name not in _PRINT_OK_FILENAMES

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.violation(
                    self,
                    node,
                    "print() bypasses the shared logger; use "
                    "repro.utils.logging.get_logger()",
                )
