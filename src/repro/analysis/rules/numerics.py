"""Numerics rules: boundary-operation clamping and epsilon centralisation.

These rules encode the failure modes reported for hyperbolic recommenders
(HyperML; Mirvakhabova et al.): unclamped ``sqrt``/``arcosh``/``log``/division
near the manifold boundary is the dominant source of NaN divergence, and
ad-hoc epsilon literals drift out of sync between the modules that share a
boundary.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from ..guards import (
    call_name,
    is_guarded,
    is_norm_like,
    is_risky_argument,
    local_assignments,
)
from ..registry import FileContext, Rule, Violation, register

# numpy functions whose domain boundary bites in hyperbolic geometry.
_BOUNDARY_NP_FUNCS = frozenset({"sqrt", "log", "arccosh", "arctanh"})
# Tensor methods with the same hazard.  ``arcosh``/``artanh`` are *not*
# listed: repro.autodiff.Tensor clips their inputs internally by contract.
_BOUNDARY_TENSOR_METHODS = frozenset({"sqrt", "log"})

# Epsilon literals at or below this magnitude are guard constants, not model
# hyper-parameters, and belong in repro/backend/constants.py.
_EPSILON_THRESHOLD = 1e-5  # repro-lint: disable=magic-epsilon

# The canonical home of guard epsilons is repro/backend/constants.py (the
# bottom of the import stack); repro/manifolds/constants.py survives as a
# re-export shim and stays exempt for any constants it may still define.
_CONSTANTS_FILES = frozenset({("backend", "constants.py"), ("manifolds", "constants.py")})


def _in_numerics_scope(path: PurePosixPath) -> bool:
    parts = set(path.parts)
    return "manifolds" in parts or "models" in parts


def _is_np_attr(func: ast.AST) -> bool:
    """True for ``np.f``, ``numpy.f`` and ``np.linalg.f`` style callees."""
    node = func
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in {"np", "numpy"}


@register
class UnclampedBoundaryOp(Rule):
    """Boundary-crossing math must be clamped before sqrt/log/arcosh/division.

    Flags, inside ``manifolds/`` and ``models/``:

    * ``np.sqrt/np.log/np.arccosh/np.arctanh`` (and Tensor ``.sqrt()``/
      ``.log()``) whose argument visibly contains a subtraction, negation or
      division and no ``clip``/``clamp``/``maximum``/epsilon guard;
    * division whose denominator is a vector norm (``np.linalg.norm``,
      ``.norm()``, ``np.sqrt(...)``) that is not floored by a guard —
      including one level of local name resolution, so
      ``n = np.linalg.norm(x); y = x / n`` is caught.
    """

    name = "unclamped-boundary-op"
    description = (
        "sqrt/log/arcosh/artanh or division on a boundary-crossing expression "
        "without a clamp/clip/eps guard (NaN risk near the manifold boundary)"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_numerics_scope(path)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: list[Violation] = []
        scopes: list[ast.AST] = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            assigns = local_assignments(scope)
            for node in self._scope_nodes(scope):
                self._check_node(ctx, node, assigns, violations)
        return self._dedup(violations)

    @staticmethod
    def _scope_nodes(scope: ast.AST):
        """Yield the nodes of one scope, not descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    def _check_node(self, ctx, node, assigns, out: list[Violation]) -> None:
        if isinstance(node, ast.Call):
            self._check_call(ctx, node, out)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            self._check_division(ctx, node, node.right, assigns, out)
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            self._check_division(ctx, node, node.value, assigns, out)

    def _check_call(self, ctx, node: ast.Call, out: list[Violation]) -> None:
        func = node.func
        name = call_name(node)
        if not node.args:
            target = None
        else:
            target = node.args[0]
        if _is_np_attr(func) and name in _BOUNDARY_NP_FUNCS and target is not None:
            if is_risky_argument(target) and not is_guarded(target):
                out.append(
                    ctx.violation(
                        self,
                        node,
                        f"np.{name}() argument crosses a domain boundary without a "
                        "clamp/clip/eps guard",
                    )
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _BOUNDARY_TENSOR_METHODS
            and not node.args
            and not _is_np_attr(func)
        ):
            receiver = func.value
            if is_risky_argument(receiver) and not is_guarded(receiver):
                out.append(
                    ctx.violation(
                        self,
                        node,
                        f".{func.attr}() receiver crosses a domain boundary without a "
                        "clamp/clip/eps guard",
                    )
                )

    def _check_division(self, ctx, node, denominator, assigns, out: list[Violation]) -> None:
        candidates: list[ast.AST]
        if isinstance(denominator, ast.Name):
            candidates = assigns.get(denominator.id, [])
            if any(is_guarded(rhs) for rhs in candidates):
                return
        else:
            candidates = [denominator]
        for rhs in candidates:
            if is_norm_like(rhs) and not is_guarded(rhs):
                out.append(
                    ctx.violation(
                        self,
                        node,
                        "division by a vector norm that is not floored "
                        "(use np.maximum(norm, MIN_NORM) or .norm(eps=...))",
                    )
                )
                return

    @staticmethod
    def _dedup(violations: list[Violation]) -> list[Violation]:
        seen: set[tuple[int, int, str]] = set()
        unique = []
        for v in violations:
            key = (v.line, v.col, v.message)
            if key not in seen:
                seen.add(key)
                unique.append(v)
        return unique


@register
class MagicEpsilon(Rule):
    """Tiny guard literals belong in ``repro/backend/constants.py``.

    Flags float literals with ``0 < |value| <= 1e-5`` anywhere except the
    central constants module.  Default values in function signatures are
    exempt: those are documented, caller-overridable tolerances rather than
    hidden guards.
    """

    name = "magic-epsilon"
    description = (
        "numeric guard literal (|x| <= 1e-5) outside repro/backend/constants.py; "
        "import the named constant instead"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        # Test tolerances and script knobs are assertion precision choices,
        # not hidden numerical guards; only library code is held to this.
        # Fixture trees stay lintable: they are the rules' own test data.
        parts = set(path.parts)
        if ({"tests", "scripts"} & parts) and "fixtures" not in parts:
            return False
        return path.parts[-2:] not in _CONSTANTS_FILES

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        exempt = self._signature_default_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value == 0 or abs(value) > _EPSILON_THRESHOLD:
                continue
            if id(node) in exempt:
                continue
            yield ctx.violation(
                self,
                node,
                f"magic epsilon {value!r}; define it in repro/backend/constants.py "
                "and import the named constant",
            )

    @staticmethod
    def _signature_default_nodes(tree) -> set[int]:
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    for sub in ast.walk(default):
                        exempt.add(id(sub))
        return exempt
