"""Content-hash incremental cache for the lint walk.

The cache keys each file's post-suppression findings by a SHA-256 of its
raw bytes plus a signature of the active rule set, and the whole-project
pass by the combined hash of every analysed file.  A warm re-run over an
unchanged tree therefore only hashes bytes — no tokenising, no parsing, no
rule dispatch — which is what keeps the self-lint gate fast enough to run
on every push (``tests/test_analysis_incremental.py`` asserts the speedup).

The format is a private implementation detail: any schema or rule change
bumps :data:`CACHE_VERSION` and silently invalidates old files.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .registry import Violation

__all__ = ["CACHE_VERSION", "LintCache", "file_digest", "ruleset_signature"]

CACHE_VERSION = 2


def file_digest(data: bytes) -> str:
    """Content hash of one file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


def ruleset_signature(rule_names: list[str], select, ignore) -> str:
    """Hash of everything that changes findings besides file content."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "rules": sorted(rule_names),
            "select": sorted(select or []),
            "ignore": sorted(ignore or []),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Load/store per-file and project-pass findings keyed by content hashes."""

    def __init__(self, path: str | Path, signature: str):
        self.path = Path(path)
        self.signature = signature
        self._files: dict[str, dict] = {}
        self._project: dict = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable/corrupt cache: start cold
        if payload.get("signature") != self.signature:
            return  # rule set changed: every entry is stale
        self._files = payload.get("files", {})
        self._project = payload.get("project", {})

    # ------------------------------------------------------------------
    # Per-file entries
    # ------------------------------------------------------------------
    def get_file(self, path: str, digest: str) -> list[Violation] | None:
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        return [Violation.from_dict(v) for v in entry["violations"]]

    def put_file(self, path: str, digest: str, violations: list[Violation]) -> None:
        self._files[path] = {
            "digest": digest,
            "violations": [v.to_dict() for v in violations],
        }
        self._dirty = True

    # ------------------------------------------------------------------
    # Project pass
    # ------------------------------------------------------------------
    @staticmethod
    def project_key(per_file_digests: dict[str, str]) -> str:
        payload = json.dumps(sorted(per_file_digests.items()))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def get_project(self, key: str) -> list[Violation] | None:
        if self._project.get("key") != key:
            return None
        return [Violation.from_dict(v) for v in self._project["violations"]]

    def put_project(self, key: str, violations: list[Violation]) -> None:
        self._project = {"key": key, "violations": [v.to_dict() for v in violations]}
        self._dirty = True

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist (atomically enough for a cache: best-effort, never raises)."""
        if not self._dirty:
            return
        payload = {
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # a cache that fails to persist only costs the next run time
