"""Rule base classes and the global rule registries.

Two kinds of checks coexist:

* **File rules** — subclasses of :class:`Rule` registered with
  :func:`register`; each sees one parsed file (:class:`FileContext`) at a
  time.
* **Project rules** — subclasses of :class:`ProjectRule` registered with
  :func:`register_project`; each sees the whole-program
  :class:`~repro.analysis.project.ProjectContext` built from every analysed
  file in one pass, and can therefore check cross-module contracts (the
  serving export contract, reference-twin pairing, parameter-container
  reachability).

Both kinds share one flat name space: suppression comments and the CLI
``--select``/``--ignore`` flags address either kind by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable, Iterator, Type

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "get_rule",
    "known_rule_names",
    "SEVERITIES",
]

# Every finding carries one of these; ``error`` findings gate CI, ``warn``
# findings are advisory (reported, never an exit-code failure).
SEVERITIES = ("error", "warn")


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: rule: message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    snippet: str = ""  # stripped source line, anchors baseline fingerprints

    def format(self) -> str:
        """Render in the canonical single-line text form."""
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}:{tag} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the reporter and the cache)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Violation":
        """Inverse of :meth:`to_dict` (tolerates missing new fields)."""
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
            severity=payload.get("severity", "error"),
            snippet=payload.get("snippet", ""),
        )


@dataclass
class FileContext:
    """Everything a file rule may inspect about one source file."""

    path: PurePosixPath
    source: str
    tree: object  # ast.Module
    lines: list[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        """The stripped source text of one 1-indexed line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, rule: "Rule", node, message: str) -> Violation:
        """Build a :class:`Violation` anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        return Violation(
            rule=rule.name,
            path=str(self.path),
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=rule.severity,
            snippet=self.line_text(line),
        )


class Rule:
    """A single named check run over one parsed file at a time."""

    name: str = "abstract-rule"
    description: str = ""
    severity: str = "error"

    def applies_to(self, path: PurePosixPath) -> bool:
        """Whether this rule should run on ``path`` (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``."""
        raise NotImplementedError


class ProjectRule:
    """A single named check run once over the whole analysed project."""

    name: str = "abstract-project-rule"
    description: str = ""
    severity: str = "error"

    def check_project(self, project) -> Iterable[Violation]:
        """Yield violations found in a ``ProjectContext``."""
        raise NotImplementedError

    def violation(self, project, module, node, message: str) -> Violation:
        """Build a :class:`Violation` anchored at a node of one module."""
        line = getattr(node, "lineno", 1)
        return Violation(
            rule=self.name,
            path=str(module.path),
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
            snippet=module.line_text(line),
        )


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a file rule (by its ``name``) to the registry."""
    instance = cls()
    if instance.name in _REGISTRY or instance.name in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the project registry."""
    instance = cls()
    if instance.name in _REGISTRY or instance.name in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _PROJECT_REGISTRY[instance.name] = instance
    return cls


def _load_rules() -> None:
    from . import rules as _rules  # noqa: F401  (import registers the rules)


def all_rules() -> Iterator[Rule]:
    """All registered file rules, sorted by name for stable output."""
    _load_rules()
    return iter(sorted(_REGISTRY.values(), key=lambda r: r.name))


def all_project_rules() -> Iterator[ProjectRule]:
    """All registered project rules, sorted by name for stable output."""
    _load_rules()
    return iter(sorted(_PROJECT_REGISTRY.values(), key=lambda r: r.name))


def get_rule(name: str) -> Rule | ProjectRule:
    """Look up one rule by name (raises ``KeyError`` for unknown names)."""
    _load_rules()
    if name in _REGISTRY:
        return _REGISTRY[name]
    return _PROJECT_REGISTRY[name]


# Pseudo-rules the engine emits itself; valid targets for suppression.
_PSEUDO_RULES = frozenset({"syntax-error", "bad-suppression"})


def known_rule_names() -> frozenset[str]:
    """Every addressable rule name: file rules, project rules, pseudo-rules."""
    _load_rules()
    return frozenset(_REGISTRY) | frozenset(_PROJECT_REGISTRY) | _PSEUDO_RULES
