"""Rule base class and the global rule registry.

Every lint rule is a subclass of :class:`Rule` registered with the
:func:`register` decorator.  The engine instantiates each registered rule
once per process and asks it to check every file whose path passes
:meth:`Rule.applies_to`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable, Iterator, Type

__all__ = ["Violation", "FileContext", "Rule", "register", "all_rules", "get_rule"]


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: rule: message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render in the canonical single-line text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: PurePosixPath
    source: str
    tree: object  # ast.Module
    lines: list[str] = field(default_factory=list)

    def violation(self, rule: "Rule", node, message: str) -> Violation:
        """Build a :class:`Violation` anchored at an AST node."""
        return Violation(
            rule=rule.name,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """A single named check run over a parsed file."""

    name: str = "abstract-rule"
    description: str = ""

    def applies_to(self, path: PurePosixPath) -> bool:
        """Whether this rule should run on ``path`` (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by its ``name``) to the registry."""
    instance = cls()
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def all_rules() -> Iterator[Rule]:
    """All registered rules, sorted by name for stable output."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return iter(sorted(_REGISTRY.values(), key=lambda r: r.name))


def get_rule(name: str) -> Rule:
    """Look up one rule by name (raises ``KeyError`` for unknown names)."""
    from . import rules as _rules  # noqa: F401

    return _REGISTRY[name]
