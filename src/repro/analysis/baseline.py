"""Committed baseline of grandfathered findings.

A baseline lets the gate demand "no *new* error-severity findings" while a
known backlog is burned down: findings whose fingerprint appears in the
committed baseline file are reported separately and never fail the run.

Fingerprints are line-number-independent — ``sha256(path :: rule ::
stripped source line)`` plus an occurrence index for repeated identical
lines — so unrelated edits above a grandfathered finding do not un-baseline
it, while any change to the offending line itself surfaces the finding
again.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from .registry import Violation

__all__ = ["Baseline", "fingerprint", "split_by_baseline"]

_FORMAT_VERSION = 1


def fingerprint(violation: Violation, occurrence: int = 0) -> str:
    """Stable id for one finding; ``occurrence`` disambiguates repeats."""
    payload = f"{violation.path}::{violation.rule}::{violation.snippet}::{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _fingerprints(violations: Sequence[Violation]) -> list[str]:
    """Fingerprints in order, numbering repeated (path, rule, snippet) keys."""
    counts: dict[tuple[str, str, str], int] = {}
    out = []
    for v in violations:
        key = (v.path, v.rule, v.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(fingerprint(v, occurrence))
    return out


class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    def __init__(self, entries: dict[str, dict] | None = None):
        self.entries = entries or {}

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (missing file → empty baseline)."""
        file_path = Path(path)
        if not file_path.is_file():
            return cls()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        return cls(payload.get("entries", {}))

    def write(self, path: str | Path, violations: Sequence[Violation]) -> None:
        """Replace the baseline with the given findings (sorted, stable)."""
        entries = {}
        for v, fp in zip(violations, _fingerprints(violations)):
            entries[fp] = {
                "rule": v.rule,
                "path": v.path,
                "severity": v.severity,
                "message": v.message,
            }
        payload = {"version": _FORMAT_VERSION, "entries": dict(sorted(entries.items()))}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> tuple[list[Violation], list[Violation]]:
    """Partition findings into (new, grandfathered) against a baseline."""
    new: list[Violation] = []
    old: list[Violation] = []
    for v, fp in zip(violations, _fingerprints(violations)):
        (old if fp in baseline.entries else new).append(v)
    return new, old
