"""Text, JSON and SARIF reporters for lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Sequence

from .registry import Violation, all_project_rules, all_rules

__all__ = ["render_text", "render_json", "render_sarif", "write_report", "REPORT_FORMATS"]

REPORT_FORMATS = ("text", "json", "sarif")

_SARIF_LEVELS = {"error": "error", "warn": "warning"}


def _severity_counts(violations: Sequence[Violation]) -> tuple[int, int]:
    errors = sum(1 for v in violations if v.severity == "error")
    return errors, len(violations) - errors


def render_text(violations: Sequence[Violation], baselined: int = 0) -> str:
    """One ``path:line:col: rule: message`` line per finding plus a summary."""
    suffix = f" ({baselined} baselined finding(s) not shown)" if baselined else ""
    if not violations:
        return f"repro.analysis: no violations{suffix}\n"
    lines = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    breakdown = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
    errors, warnings = _severity_counts(violations)
    lines.append(
        f"repro.analysis: {len(violations)} violation(s) "
        f"[{errors} error(s), {warnings} warning(s)] ({breakdown}){suffix}"
    )
    return "\n".join(lines) + "\n"


def render_json(violations: Sequence[Violation], baselined: int = 0) -> str:
    """Machine-readable report: findings plus per-rule and severity counts."""
    errors, warnings = _severity_counts(violations)
    payload = {
        "violations": [v.to_dict() for v in violations],
        "counts": dict(sorted(Counter(v.rule for v in violations).items())),
        "total": len(violations),
        "errors": errors,
        "warnings": warnings,
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(violations: Sequence[Violation], baselined: int = 0) -> str:
    """SARIF 2.1.0 report (the format CI code-scanning uploads consume)."""
    rule_meta = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description or rule.name},
            "defaultConfiguration": {"level": _SARIF_LEVELS.get(rule.severity, "error")},
        }
        for rule in list(all_rules()) + list(all_project_rules())
    ]
    results = [
        {
            "ruleId": v.rule,
            "level": _SARIF_LEVELS.get(v.severity, "error"),
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {"startLine": v.line, "startColumn": v.col},
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/docs/ANALYSIS.md",
                        "rules": sorted(rule_meta, key=lambda r: r["id"]),
                    }
                },
                "results": results,
                "properties": {"baselined": baselined},
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def write_report(
    violations: Sequence[Violation],
    stream: IO[str],
    fmt: str = "text",
    baselined: int = 0,
) -> None:
    """Render ``violations`` to ``stream`` in the requested format."""
    if fmt == "json":
        stream.write(render_json(violations, baselined))
    elif fmt == "sarif":
        stream.write(render_sarif(violations, baselined))
    elif fmt == "text":
        stream.write(render_text(violations, baselined))
    else:
        raise ValueError(
            f"unknown report format {fmt!r} (expected one of {', '.join(REPORT_FORMATS)})"
        )
