"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Sequence

from .registry import Violation

__all__ = ["render_text", "render_json", "write_report"]


def render_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: rule: message`` line per finding plus a summary."""
    if not violations:
        return "repro.analysis: no violations\n"
    lines = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    breakdown = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
    lines.append(f"repro.analysis: {len(violations)} violation(s) ({breakdown})")
    return "\n".join(lines) + "\n"


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report: findings list plus per-rule counts."""
    payload = {
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
        "counts": dict(sorted(Counter(v.rule for v in violations).items())),
        "total": len(violations),
    }
    return json.dumps(payload, indent=2) + "\n"


def write_report(violations: Sequence[Violation], stream: IO[str], fmt: str = "text") -> None:
    """Render ``violations`` to ``stream`` in the requested format."""
    if fmt == "json":
        stream.write(render_json(violations))
    elif fmt == "text":
        stream.write(render_text(violations))
    else:
        raise ValueError(f"unknown report format {fmt!r} (expected 'text' or 'json')")
