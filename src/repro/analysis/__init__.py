"""Numerics-aware static analysis for the repro codebase.

An AST-based lint engine with codebase-specific rules at two levels:
per-file checks (manifold boundary clamping, epsilon centralisation,
autodiff tape contracts, manifold point/tangent flow, hot-path perf lints,
library hygiene) and whole-program checks run over a
:class:`~repro.analysis.project.ProjectContext` built from every analysed
AST in one pass (the serving export contract, reference-twin pairing, the
parameter-container ``state_dict`` reachability contract).  Run it with
``python -m repro.analysis [paths]`` or through the :func:`analyze_paths`
API; ``tests/test_analysis_self.py`` keeps the repo violation-free under
pytest.  See ``docs/ANALYSIS.md`` for the full rule catalog.
"""

from .baseline import Baseline, fingerprint, split_by_baseline
from .cache import LintCache
from .engine import Suppressions, analyze_file, analyze_paths, analyze_source, iter_python_files
from .project import ProjectContext
from .registry import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_project_rules,
    all_rules,
    get_rule,
    known_rule_names,
)
from .reporting import render_json, render_sarif, render_text, write_report

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "FileContext",
    "ProjectContext",
    "Suppressions",
    "Baseline",
    "LintCache",
    "all_rules",
    "all_project_rules",
    "get_rule",
    "known_rule_names",
    "fingerprint",
    "split_by_baseline",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "render_text",
    "render_json",
    "render_sarif",
    "write_report",
]
