"""Numerics-aware static analysis for the repro codebase.

An AST-based lint engine with codebase-specific rules: manifold boundary
clamping, epsilon centralisation, autodiff tape contracts and library
hygiene.  Run it with ``python -m repro.analysis [paths]`` or through the
:func:`analyze_paths` API; ``tests/test_analysis_self.py`` keeps the repo
violation-free under pytest.  See ``docs/ANALYSIS.md``.
"""

from .engine import Suppressions, analyze_file, analyze_paths, analyze_source, iter_python_files
from .registry import FileContext, Rule, Violation, all_rules, get_rule
from .reporting import render_json, render_text, write_report

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "Suppressions",
    "all_rules",
    "get_rule",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "render_text",
    "render_json",
    "write_report",
]
