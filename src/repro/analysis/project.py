"""Whole-program context for cross-module (project) rules.

:class:`ProjectContext` is built from every analysed file's AST in one pass
and gives project rules three views the per-file engine cannot offer:

* a **symbol table** — per module, the top-level classes, functions and
  assignments, addressable by dotted module name;
* an **import graph** — which project modules each module imports, so a
  rule can follow a name from its use site to its definition;
* a **class/attribute index** — every class with its bases, methods and
  ``self.<attr> = ...`` assignments, plus a project-local MRO walk
  (:meth:`ProjectContext.iter_mro` / :meth:`ProjectContext.find_method`).

The analysis is name-based, not import-system-based: classes are resolved
by their (usually unique) name across the project, which matches how this
codebase is laid out and keeps the pass dependency-free and fast.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

__all__ = ["ClassInfo", "ModuleInfo", "ProjectContext"]

# Path components that anchor the dotted module name: everything after the
# last occurrence of one of these is the module path.
_ROOT_MARKERS = ("src",)


def module_name_for_path(path: PurePosixPath) -> str:
    """Dotted module name for a file path (``src/repro/a/b.py`` → ``repro.a.b``)."""
    parts = list(path.parts)
    for marker in _ROOT_MARKERS:
        if marker in parts:
            parts = parts[len(parts) - parts[::-1].index(marker):]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ClassInfo:
    """One class definition: bases, methods and instance attributes."""

    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    # attribute name -> list of `self.<attr> = <value>` value nodes.
    self_assigns: dict[str, list[ast.AST]] = field(default_factory=dict)

    @property
    def path(self) -> str:
        return str(self.module.path)


@dataclass
class ModuleInfo:
    """One parsed file: tree, top-level symbols and imports."""

    path: PurePosixPath
    name: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    assigns: dict[str, ast.AST] = field(default_factory=dict)
    imports: set[str] = field(default_factory=set)  # dotted module names

    def line_text(self, lineno: int) -> str:
        """The stripped source text of one 1-indexed line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _attr_chain(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains as text ('' for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _index_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node, module=module)
    for base in node.bases:
        text = _attr_chain(base)
        if text:
            info.base_names.append(text)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item
            for sub in ast.walk(item):
                targets: list[ast.AST] = []
                value: ast.AST | None = None
                if isinstance(sub, ast.Assign):
                    targets, value = list(sub.targets), sub.value
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)) and getattr(
                    sub, "value", None
                ) is not None:
                    targets, value = [sub.target], sub.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.self_assigns.setdefault(target.attr, []).append(value)
    return info


class ProjectContext:
    """Symbol table, import graph and class index over a set of parsed files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # keyed by posix path string
        self.classes_by_name: dict[str, list[ClassInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, files: list[tuple[PurePosixPath, str, ast.Module]]
    ) -> "ProjectContext":
        """Index ``(path, source, tree)`` triples in one pass."""
        project = cls()
        for path, source, tree in files:
            project.add_file(path, source, tree)
        return project

    def add_file(self, path: PurePosixPath, source: str, tree: ast.Module) -> None:
        module = ModuleInfo(
            path=path,
            name=module_name_for_path(path),
            tree=tree,
            lines=source.splitlines(),
        )
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                info = _index_class(node, module)
                module.classes[node.name] = info
                self.classes_by_name.setdefault(node.name, []).append(info)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module.assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None:
                    module.assigns[node.target.id] = node.value
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                module.imports.add(node.module)
        self.modules[str(path)] = module

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_module(self, suffix: str) -> ModuleInfo | None:
        """The unique module whose path ends with ``suffix`` (None if not one)."""
        matches = [m for p, m in self.modules.items() if p.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def resolve_class(self, name: str) -> ClassInfo | None:
        """The unique project class with ``name`` (None if absent/ambiguous)."""
        simple = name.rsplit(".", 1)[-1]
        matches = self.classes_by_name.get(simple, [])
        return matches[0] if len(matches) == 1 else None

    def iter_mro(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its project-resolvable ancestors, nearest first.

        Bases defined outside the analysed files terminate the walk on that
        branch; diamond repeats are visited once.
        """
        seen: set[int] = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            yield current
            for base in current.base_names:
                resolved = self.resolve_class(base)
                if resolved is not None:
                    stack.append(resolved)

    def find_method(self, info: ClassInfo, name: str) -> tuple[ClassInfo, ast.FunctionDef] | None:
        """Resolve a method through the project-local MRO (nearest definition)."""
        for ancestor in self.iter_mro(info):
            if name in ancestor.methods:
                return ancestor, ancestor.methods[name]
        return None

    def is_subclass_of(self, info: ClassInfo, base_name: str) -> bool:
        """Whether the class transitively names ``base_name`` as an ancestor.

        Matches both project-resolved ancestors and unresolved base-name
        text (``repro.autodiff.Module`` counts as ``Module``).
        """
        for ancestor in self.iter_mro(info):
            if ancestor.name == base_name:
                return True
            for base in ancestor.base_names:
                if base.rsplit(".", 1)[-1] == base_name:
                    return True
        return False
