"""File walking, suppression parsing and rule dispatch.

The engine parses each file once, extracts ``# repro-lint:`` suppression
comments with :mod:`tokenize`, runs every applicable registered rule over the
AST and filters the findings through the suppressions.

Suppression syntax
------------------
* Trailing comment on the offending line::

      y = x / norm  # repro-lint: disable=unclamped-boundary-op

* Standalone comment line — disables the rules for the whole file::

      # repro-lint: disable=magic-epsilon

* ``disable=all`` disables every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .registry import FileContext, Rule, Violation, all_rules

__all__ = ["Suppressions", "analyze_source", "analyze_file", "analyze_paths", "iter_python_files"]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w\-,\s]+)")


@dataclass
class Suppressions:
    """Per-file and per-line rule suppressions parsed from comments."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Extract suppressions from ``# repro-lint: disable=...`` comments."""
        supp = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return supp
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            standalone = tok.line[: tok.start[1]].strip() == ""
            if standalone:
                supp.file_level |= names
            else:
                supp.by_line.setdefault(tok.start[0], set()).update(names)
        return supp

    def allows(self, violation: Violation) -> bool:
        """Whether the violation survives (is *not* suppressed)."""
        if "all" in self.file_level or violation.rule in self.file_level:
            return False
        line_rules = self.by_line.get(violation.line, ())
        return "all" not in line_rules and violation.rule not in line_rules


def _select_rules(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
) -> list[Rule]:
    rules = list(all_rules())
    known = {rule.name for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(f"unknown rule {requested!r}; known rules: {sorted(known)}")
    if select:
        rules = [rule for rule in rules if rule.name in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.name not in set(ignore)]
    return rules


def analyze_source(
    source: str,
    path: str | PurePosixPath = "<string>",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the configured rules over one source string."""
    posix = PurePosixPath(str(path).replace("\\", "/"))
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule="syntax-error",
                path=str(posix),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = Suppressions.from_source(source)
    ctx = FileContext(path=posix, source=source, tree=tree, lines=source.splitlines())
    found: list[Violation] = []
    for rule in _select_rules(select, ignore):
        if not rule.applies_to(posix):
            continue
        for violation in rule.check(ctx):
            if suppressions.allows(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def analyze_file(
    path: str | Path,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the configured rules over one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return analyze_source(source, file_path.as_posix(), select=select, ignore=ignore)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            collected.update(p.rglob("*.py"))
        elif p.suffix == ".py" and p.exists():
            collected.add(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
    return sorted(collected)


def analyze_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the configured rules over files and directory trees."""
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        found.extend(analyze_file(file_path, select=select, ignore=ignore))
    return found
