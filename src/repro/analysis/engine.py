"""File walking, suppression parsing, rule dispatch and the project pass.

The engine parses each file once, extracts ``# repro-lint:`` suppression
comments with :mod:`tokenize`, runs every applicable registered file rule
over the AST and filters the findings through the suppressions.  When a
whole tree is analysed (:func:`analyze_paths`), a
:class:`~repro.analysis.project.ProjectContext` is additionally built from
all ASTs in one pass and the registered project rules run over it, so
cross-module contracts (serving exports, reference twins, parameter
containers) are checked too.

Suppression syntax
------------------
* Trailing comment on the offending line::

      y = x / norm  # repro-lint: disable=unclamped-boundary-op

* Standalone comment line — disables the rules for the whole file::

      # repro-lint: disable=magic-epsilon

* ``disable=all`` disables every rule.

Naming a rule that does not exist is itself a finding
(``bad-suppression``): a typo in a suppression must not silently re-enable
nothing and mask nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .cache import LintCache, file_digest, ruleset_signature
from .project import ProjectContext
from .registry import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_project_rules,
    all_rules,
    known_rule_names,
)

__all__ = [
    "Suppressions",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w\-,\s]+)")

# Directory names never walked by iter_python_files: lint fixtures are
# deliberately-violating test data, caches are generated artifacts.
_SKIP_DIR_NAMES = frozenset({"fixtures", "__pycache__"})


@dataclass
class Suppressions:
    """Per-file and per-line rule suppressions parsed from comments."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    # (line, col, name) of every suppression mention, for validation.
    mentions: list[tuple[int, int, str]] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Extract suppressions from ``# repro-lint: disable=...`` comments."""
        supp = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return supp
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            standalone = tok.line[: tok.start[1]].strip() == ""
            if standalone:
                supp.file_level |= names
            else:
                supp.by_line.setdefault(tok.start[0], set()).update(names)
            for name in sorted(names):
                supp.mentions.append((tok.start[0], tok.start[1] + 1, name))
        return supp

    def allows(self, violation: Violation) -> bool:
        """Whether the violation survives (is *not* suppressed).

        File-level suppressions take precedence over line-level ones: a
        standalone ``disable=<rule>`` masks the rule everywhere in the file
        regardless of what individual lines say.
        """
        if "all" in self.file_level or violation.rule in self.file_level:
            return False
        line_rules = self.by_line.get(violation.line, ())
        return "all" not in line_rules and violation.rule not in line_rules


def _validate_suppressions(
    supp: Suppressions,
    path: PurePosixPath,
    lines: list[str],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[Violation]:
    """``bad-suppression`` findings for rule names that do not exist."""
    if (select and "bad-suppression" not in select) or (
        ignore and "bad-suppression" in ignore
    ):
        return []
    known = known_rule_names()
    out = []
    for line, col, name in supp.mentions:
        if name == "all" or name in known:
            continue
        snippet = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        out.append(
            Violation(
                rule="bad-suppression",
                path=str(path),
                line=line,
                col=col,
                message=f"suppression names unknown rule {name!r}; it masks nothing "
                "(fix the typo or drop it)",
                snippet=snippet,
            )
        )
    return out


def _select_rules(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
) -> tuple[list[Rule], list[ProjectRule]]:
    rules = list(all_rules())
    project_rules = list(all_project_rules())
    known = known_rule_names()
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(f"unknown rule {requested!r}; known rules: {sorted(known)}")
    if select:
        chosen = set(select)
        rules = [rule for rule in rules if rule.name in chosen]
        project_rules = [rule for rule in project_rules if rule.name in chosen]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.name not in dropped]
        project_rules = [rule for rule in project_rules if rule.name not in dropped]
    return rules, project_rules


def _sort(violations: list[Violation]) -> list[Violation]:
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _syntax_violation(posix: PurePosixPath, exc: SyntaxError, lines: list[str]) -> Violation:
    line = exc.lineno or 1
    return Violation(
        rule="syntax-error",
        path=str(posix),
        line=line,
        col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
        message=f"file does not parse: {exc.msg}",
        snippet=lines[line - 1].strip() if 1 <= line <= len(lines) else "",
    )


def _analyze_one(
    source: str,
    posix: PurePosixPath,
    rules: list[Rule],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> tuple[list[Violation], ast.Module | None, Suppressions]:
    """Findings + parse products for one file (tree is None on syntax error)."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_syntax_violation(posix, exc, lines)], None, Suppressions()
    suppressions = Suppressions.from_source(source)
    found = [
        v
        for v in _validate_suppressions(suppressions, posix, lines, select, ignore)
        if suppressions.allows(v)
    ]
    ctx = FileContext(path=posix, source=source, tree=tree, lines=lines)
    for rule in rules:
        if not rule.applies_to(posix):
            continue
        for violation in rule.check(ctx):
            if suppressions.allows(violation):
                found.append(violation)
    return _sort(found), tree, suppressions


def analyze_source(
    source: str,
    path: str | PurePosixPath = "<string>",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the configured file rules over one source string."""
    posix = PurePosixPath(str(path).replace("\\", "/"))
    rules, _ = _select_rules(select, ignore)
    found, _, _ = _analyze_one(source, posix, rules, select, ignore)
    return found


def _decode(data: bytes, posix: PurePosixPath) -> tuple[str | None, Violation | None]:
    """Decode file bytes honouring BOMs and PEP 263 coding declarations."""
    try:
        encoding, _ = tokenize.detect_encoding(io.BytesIO(data).readline)
        return data.decode(encoding), None
    except (SyntaxError, UnicodeDecodeError, LookupError) as exc:
        return None, Violation(
            rule="syntax-error",
            path=str(posix),
            line=1,
            col=1,
            message=f"file cannot be decoded: {exc}",
        )


def analyze_file(
    path: str | Path,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the configured file rules over one file on disk."""
    file_path = Path(path)
    posix = PurePosixPath(file_path.as_posix())
    source, decode_error = _decode(file_path.read_bytes(), posix)
    if decode_error is not None:
        _select_rules(select, ignore)  # still validate the requested names
        return [decode_error]
    return analyze_source(source, file_path.as_posix(), select=select, ignore=ignore)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files.

    Directory walks skip ``fixtures`` trees (deliberately-violating lint
    test data), ``__pycache__`` and hidden directories; explicitly named
    files are always accepted.
    """
    collected: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for candidate in p.rglob("*.py"):
                relative = candidate.relative_to(p)
                parts = relative.parts[:-1]
                if any(part in _SKIP_DIR_NAMES or part.startswith(".") for part in parts):
                    continue
                collected.add(candidate)
        elif p.suffix == ".py" and p.exists():
            collected.add(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
    return sorted(collected)


def analyze_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    project: bool = True,
    cache_path: str | Path | None = None,
) -> list[Violation]:
    """Run file rules over a tree, then the project rules over all its ASTs.

    ``cache_path`` enables the incremental cache: per-file findings are
    keyed by content hash, the project pass by the combined hash of every
    analysed file, so warm re-runs of an unchanged tree skip parsing and
    rule dispatch entirely.
    """
    rules, project_rules = _select_rules(select, ignore)
    files = iter_python_files(paths)
    cache = None
    if cache_path is not None:
        signature = ruleset_signature(
            [r.name for r in rules] + [r.name for r in project_rules], select, ignore
        )
        cache = LintCache(cache_path, signature)

    digests: dict[str, str] = {}
    raw: dict[str, bytes] = {}
    per_file: dict[str, list[Violation]] = {}
    parsed: dict[str, tuple[ast.Module | None, Suppressions, str]] = {}

    for file_path in files:
        posix_str = file_path.as_posix()
        data = file_path.read_bytes()
        digest = file_digest(data)
        digests[posix_str] = digest
        raw[posix_str] = data
        cached = cache.get_file(posix_str, digest) if cache is not None else None
        if cached is not None:
            per_file[posix_str] = cached
            continue
        found = _parse_and_check(posix_str, data, rules, select, ignore, parsed)
        per_file[posix_str] = found
        if cache is not None:
            cache.put_file(posix_str, digest, found)

    found: list[Violation] = [v for path in sorted(per_file) for v in per_file[path]]

    if project and project_rules:
        key = LintCache.project_key(digests)
        cached = cache.get_project(key) if cache is not None else None
        if cached is not None:
            found.extend(cached)
        else:
            project_found = _run_project_rules(
                project_rules, files, raw, parsed, select, ignore
            )
            found.extend(project_found)
            if cache is not None:
                cache.put_project(key, project_found)
    if cache is not None:
        cache.save()
    return _sort(found)


def _parse_and_check(
    posix_str: str,
    data: bytes,
    rules: list[Rule],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
    parsed: dict,
) -> list[Violation]:
    """Decode + parse + file rules for one file, recording parse products."""
    posix = PurePosixPath(posix_str)
    source, decode_error = _decode(data, posix)
    if decode_error is not None:
        parsed[posix_str] = (None, Suppressions(), "")
        return [decode_error]
    found, tree, suppressions = _analyze_one(source, posix, rules, select, ignore)
    parsed[posix_str] = (tree, suppressions, source)
    return found


def _run_project_rules(
    project_rules: list[ProjectRule],
    files: list[Path],
    raw: dict[str, bytes],
    parsed: dict,
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[Violation]:
    """Build the ProjectContext (parsing cache-hit files too) and run rules."""
    triples = []
    suppressions_by_path: dict[str, Suppressions] = {}
    for file_path in files:
        posix_str = file_path.as_posix()
        if posix_str not in parsed:
            # File-rule findings came from the cache; the project pass still
            # needs the AST, so decode and parse (but skip the file rules).
            posix = PurePosixPath(posix_str)
            source, decode_error = _decode(raw[posix_str], posix)
            if decode_error is not None:
                parsed[posix_str] = (None, Suppressions(), "")
            else:
                try:
                    tree = ast.parse(source)
                except SyntaxError:
                    tree = None
                parsed[posix_str] = (tree, Suppressions.from_source(source), source)
        tree, suppressions, source = parsed[posix_str]
        suppressions_by_path[posix_str] = suppressions
        if tree is not None:
            triples.append((PurePosixPath(posix_str), source, tree))
    context = ProjectContext.build(triples)
    found: list[Violation] = []
    for rule in project_rules:
        for violation in rule.check_project(context):
            supp = suppressions_by_path.get(violation.path)
            if supp is None or supp.allows(violation):
                found.append(violation)
    return _sort(found)
