"""Temporal per-user train/validation/test splitting (paper §V-A2).

For each user the first 60% of interactions (by timestamp) train, the next
20% validate, and the last 20% test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import InteractionDataset

__all__ = ["Split", "temporal_split"]


@dataclass
class Split:
    """Train/validation/test views over one dataset."""

    train: InteractionDataset
    valid: InteractionDataset
    test: InteractionDataset

    def __repr__(self) -> str:
        return (
            f"Split(train={self.train.n_interactions}, "
            f"valid={self.valid.n_interactions}, test={self.test.n_interactions})"
        )


def temporal_split(
    dataset: InteractionDataset,
    train_frac: float = 0.6,
    valid_frac: float = 0.2,
) -> Split:
    """Split each user's history by time into train/valid/test.

    Guarantees at least one training interaction per user with history; a
    user with fewer than 3 interactions contributes everything to train.
    """
    if not 0.0 < train_frac < 1.0 or not 0.0 <= valid_frac < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if train_frac + valid_frac >= 1.0:
        raise ValueError("train_frac + valid_frac must leave room for test")

    order = np.lexsort((dataset.timestamps, dataset.user_ids))
    users_sorted = dataset.user_ids[order]
    boundaries = np.searchsorted(users_sorted, np.arange(dataset.n_users + 1))

    assign = np.zeros(dataset.n_interactions, dtype=np.int8)  # 0=train 1=valid 2=test
    for u in range(dataset.n_users):
        lo, hi = boundaries[u], boundaries[u + 1]
        n = hi - lo
        if n == 0:
            continue
        if n < 3:
            continue  # all train
        n_train = max(int(np.floor(n * train_frac)), 1)
        n_valid = max(int(np.floor(n * valid_frac)), 1)
        if n_train + n_valid >= n:
            n_valid = max(n - n_train - 1, 0)
        assign[order[lo + n_train : lo + n_train + n_valid]] = 1
        assign[order[lo + n_train + n_valid : hi]] = 2

    return Split(
        train=dataset.subset(assign == 0, name=f"{dataset.name}/train"),
        valid=dataset.subset(assign == 1, name=f"{dataset.name}/valid"),
        test=dataset.subset(assign == 2, name=f"{dataset.name}/test"),
    )
