"""Core dataset container: users × items implicit feedback plus item tags.

Mirrors the paper's setting (§III-A): an implicit-feedback matrix **X**
(here stored as coordinate arrays with timestamps, since the evaluation
protocol splits temporally) and an item-tag attribute matrix **A** with
``A[v, t] = 1`` iff item ``v`` carries tag ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

__all__ = ["InteractionDataset"]


@dataclass
class InteractionDataset:
    """Implicit-feedback interactions with item tags and optional planted truth.

    Parameters
    ----------
    n_users, n_items, n_tags:
        Entity counts.
    user_ids, item_ids, timestamps:
        Parallel ``(n_interactions,)`` arrays; one row per implicit-feedback
        event.  Timestamps need only be ordered within each user.
    item_tags:
        ``(n_items, n_tags)`` binary attribute matrix **A** (dense float64;
        tag vocabularies here are small enough that dense wins).
    tag_names:
        Human-readable tag strings (used by the case studies, Table V).
    tag_parent:
        Optional planted ground-truth taxonomy as a parent array:
        ``tag_parent[t]`` is tag ``t``'s parent or -1 for top-level tags.
        Only synthetic datasets carry this; it is never shown to models.
    name:
        Dataset identifier (e.g. ``"ciao"``).
    """

    n_users: int
    n_items: int
    n_tags: int
    user_ids: np.ndarray
    item_ids: np.ndarray
    timestamps: np.ndarray
    item_tags: np.ndarray
    tag_names: list[str] = field(default_factory=list)
    tag_parent: np.ndarray | None = None
    name: str = "dataset"

    def __post_init__(self):
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        self.item_ids = np.asarray(self.item_ids, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.item_tags = np.asarray(self.item_tags, dtype=np.float64)
        if not (len(self.user_ids) == len(self.item_ids) == len(self.timestamps)):
            raise ValueError("interaction arrays must have equal length")
        if self.item_tags.shape != (self.n_items, self.n_tags):
            raise ValueError(
                f"item_tags shape {self.item_tags.shape} != {(self.n_items, self.n_tags)}"
            )
        if len(self.user_ids) and (
            self.user_ids.min() < 0 or self.user_ids.max() >= self.n_users
        ):
            raise ValueError("user id out of range")
        if len(self.item_ids) and (
            self.item_ids.min() < 0 or self.item_ids.max() >= self.n_items
        ):
            raise ValueError("item id out of range")
        if not self.tag_names:
            self.tag_names = [f"tag_{t}" for t in range(self.n_tags)]

    # ------------------------------------------------------------------
    @property
    def n_interactions(self) -> int:
        """Number of implicit-feedback events."""
        return len(self.user_ids)

    @property
    def density(self) -> float:
        """Interaction density, as reported in Table I."""
        return self.n_interactions / float(self.n_users * self.n_items)

    def interaction_matrix(self) -> sparse.csr_matrix:
        """Binary user×item CSR matrix **X** (duplicates collapse to 1)."""
        data = np.ones(self.n_interactions, dtype=np.float64)
        mat = sparse.csr_matrix(
            (data, (self.user_ids, self.item_ids)), shape=(self.n_users, self.n_items)
        )
        # scipy CSR payload, not an autodiff Tensor — no tape to corrupt.
        mat.data[:] = 1.0  # repro-lint: disable=inplace-tensor-data
        return mat

    def items_of_user(self) -> list[np.ndarray]:
        """Per-user arrays of interacted item ids, in timestamp order."""
        order = np.lexsort((self.timestamps, self.user_ids))
        users = self.user_ids[order]
        items = self.item_ids[order]
        boundaries = np.searchsorted(users, np.arange(self.n_users + 1))
        return [items[boundaries[u] : boundaries[u + 1]] for u in range(self.n_users)]

    def tags_of_item(self, item: int) -> np.ndarray:
        """Tag ids attached to ``item``."""
        return np.nonzero(self.item_tags[item])[0]

    def subset(self, mask: np.ndarray, name: str | None = None) -> "InteractionDataset":
        """New dataset keeping only the interactions selected by ``mask``."""
        return InteractionDataset(
            n_users=self.n_users,
            n_items=self.n_items,
            n_tags=self.n_tags,
            user_ids=self.user_ids[mask],
            item_ids=self.item_ids[mask],
            timestamps=self.timestamps[mask],
            item_tags=self.item_tags,
            tag_names=self.tag_names,
            tag_parent=self.tag_parent,
            name=name or self.name,
        )

    def __repr__(self) -> str:
        return (
            f"InteractionDataset(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, interactions={self.n_interactions}, "
            f"tags={self.n_tags}, density={self.density:.4%})"
        )
