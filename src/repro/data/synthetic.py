"""Taxonomy-planted synthetic datasets standing in for Ciao/Amazon/Yelp.

The paper evaluates on four public dumps that are unavailable offline, so we
generate data from the *causal model the paper assumes*: a ground-truth tag
taxonomy exists; items carry a leaf tag plus (noisily) its ancestors; users
prefer coherent subtrees of the taxonomy; interactions mix that tag-driven
preference with tag-irrelevant (collaborative/social) behaviour and
popularity bias.  Because the generator plants the taxonomy explicitly, the
reproduction can additionally *score* taxonomy recovery (the paper's Fig. 6
is qualitative only).

Four presets mirror Table I's relative shape — tag vocabulary growing
28 → ~1138-scaled, density shrinking 0.23% → 0.05%-scaled — at CPU-friendly
sizes.  Absolute sizes are scaled down ~30×; every claim we reproduce is
relative (model orderings, where gains concentrate), which the generator's
control knobs exercise directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import ensure_rng
from .dataset import InteractionDataset

__all__ = ["SyntheticConfig", "generate", "load_preset", "PRESETS", "PRESET_NAMES"]


@dataclass
class SyntheticConfig:
    """Knobs of the generative model.

    Parameters
    ----------
    n_users, n_items:
        Entity counts.
    branching:
        Children per taxonomy node, per level (length = depth).  The tag
        vocabulary is every node of the resulting tree except the virtual
        root, so ``n_tags = sum(prod(branching[:l]))``.
    ancestor_keep_prob:
        Probability that each ancestor of an item's leaf tag is also
        attached to the item (models partial tagging: *Hand Roll* may carry
        ``<Sushi>`` but miss ``<Asian food>``).
    noise_tag_prob:
        Probability of attaching one uniformly random unrelated tag.
    untagged_item_prob:
        Probability that an item carries no tags at all (cold attribute
        rows exist in every real catalogue).
    mean_interactions:
        Mean interactions per user (drawn log-normally, min 10 so the
        60/20/20 temporal split leaves every user test items).
    tag_affinity:
        Mixing weight of taxonomy-driven preference vs. tag-irrelevant
        popularity behaviour, per-user Beta-distributed around this mean —
        the ground-truth analogue of the paper's α_u (Eq. 16).
    cold_item_frac:
        Fraction of items that only enter user histories in their later
        half.  Such items are rare in the temporal training split but
        common at test time — the sparsity regime where the paper argues
        tags (and their hierarchy) must carry the signal.
    drift:
        Strength of within-subtree interest drift: each user's preferred
        leaves are ordered, and later interactions draw from later leaves.
        Under the temporal split the test period emphasises leaves that are
        *siblings* of the trained ones — generalising to them requires the
        tag hierarchy.
    interest_subtrees:
        How many taxonomy subtrees each user is interested in.
    popularity_exponent:
        Zipf exponent for item popularity.
    seed:
        Generator seed.
    name:
        Dataset name.
    """

    n_users: int = 300
    n_items: int = 500
    branching: tuple[int, ...] = (4, 3, 2)
    ancestor_keep_prob: float = 0.5
    noise_tag_prob: float = 0.2
    untagged_item_prob: float = 0.1
    mean_interactions: float = 30.0
    tag_affinity: float = 0.55
    interest_subtrees: int = 2
    popularity_exponent: float = 1.0
    cold_item_frac: float = 0.15
    drift: float = 0.5
    seed: int = 0
    name: str = "synthetic"


def _build_taxonomy(branching: tuple[int, ...], rng: np.random.Generator):
    """Create the planted tree; returns (parent array, depth array, names)."""
    parents: list[int] = []
    depths: list[int] = []
    frontier = [-1]  # virtual root, not a tag
    for level, width in enumerate(branching):
        next_frontier = []
        for node in frontier:
            for _ in range(width):
                parents.append(node)
                depths.append(level)
                next_frontier.append(len(parents) - 1)
        frontier = next_frontier
    parent = np.array(parents, dtype=np.int64)
    depth = np.array(depths, dtype=np.int64)
    names = []
    for t in range(len(parent)):
        chain = []
        cur = t
        while cur != -1:
            chain.append(cur)
            cur = parent[cur]
        chain.reverse()
        names.append("/".join(f"n{c}" for c in chain))
    return parent, depth, names


def _leaf_ids(parent: np.ndarray) -> np.ndarray:
    has_child = np.zeros(len(parent), dtype=bool)
    for p in parent:
        if p >= 0:
            has_child[p] = True
    return np.nonzero(~has_child)[0]


def _ancestors(tag: int, parent: np.ndarray) -> list[int]:
    chain = []
    cur = parent[tag]
    while cur != -1:
        chain.append(int(cur))
        cur = parent[cur]
    return chain


def _descendant_leaves(parent: np.ndarray) -> dict[int, np.ndarray]:
    """Map each tag to the leaf tags beneath (or equal to) it."""
    leaves = _leaf_ids(parent)
    result: dict[int, list[int]] = {int(t): [] for t in range(len(parent))}
    for leaf in leaves:
        result[int(leaf)].append(int(leaf))
        for anc in _ancestors(int(leaf), parent):
            result[anc].append(int(leaf))
    return {t: np.array(v, dtype=np.int64) for t, v in result.items()}


def generate(config: SyntheticConfig) -> InteractionDataset:
    """Sample a dataset from the planted-taxonomy generative model."""
    rng = ensure_rng(config.seed)
    parent, depth, names = _build_taxonomy(config.branching, rng)
    n_tags = len(parent)
    leaves = _leaf_ids(parent)
    by_subtree = _descendant_leaves(parent)

    # ---- items: leaf tag + noisy ancestor closure --------------------
    item_leaf = rng.choice(leaves, size=config.n_items)
    item_tags = np.zeros((config.n_items, n_tags), dtype=np.float64)
    for v in range(config.n_items):
        if rng.random() < config.untagged_item_prob:
            continue
        leaf = int(item_leaf[v])
        item_tags[v, leaf] = 1.0
        for anc in _ancestors(leaf, parent):
            if rng.random() < config.ancestor_keep_prob:
                item_tags[v, anc] = 1.0
        if rng.random() < config.noise_tag_prob:
            item_tags[v, rng.integers(n_tags)] = 1.0

    # ---- popularity -----------------------------------------------------
    ranks = rng.permutation(config.n_items) + 1
    popularity = 1.0 / ranks.astype(np.float64) ** config.popularity_exponent
    popularity /= popularity.sum()

    # ---- per-leaf item pools (for fast preference sampling) -------------
    items_by_leaf = {int(t): np.nonzero(item_leaf == t)[0] for t in leaves}

    # ---- users -----------------------------------------------------------
    internal = np.nonzero((depth >= 1) & (depth < depth.max()))[0]
    if len(internal) == 0:
        internal = np.arange(n_tags)
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    counts = np.maximum(
        rng.lognormal(np.log(config.mean_interactions), 0.4, size=config.n_users), 10
    ).astype(int)
    alpha_true = rng.beta(
        config.tag_affinity * 8.0, (1.0 - config.tag_affinity) * 8.0, size=config.n_users
    )
    cold = rng.random(config.n_items) < config.cold_item_frac
    leaf_order = {int(t): i for i, t in enumerate(rng.permutation(leaves))}
    for u in range(config.n_users):
        subtrees = rng.choice(internal, size=min(config.interest_subtrees, len(internal)), replace=False)
        pref_leaves = np.unique(np.concatenate([by_subtree[int(s)] for s in subtrees]))
        pools = [items_by_leaf[int(t)] for t in pref_leaves if len(items_by_leaf[int(t)])]
        pool = np.concatenate(pools) if pools else np.array([], dtype=np.int64)
        chosen: set[int] = set()
        # A user cannot interact with more distinct items than exist; cap
        # well below the catalogue so the rejection fill below terminates.
        target = int(min(counts[u], max(int(0.8 * config.n_items), 1)))
        # Preference-driven picks weighted by popularity inside the pool,
        # mixed with tag-irrelevant global popularity picks.
        n_pref = int(round(alpha_true[u] * target))
        if len(pool):
            pw = popularity[pool] / popularity[pool].sum()
            take = min(n_pref, len(pool))
            for v in rng.choice(pool, size=take, replace=False, p=pw):
                chosen.add(int(v))
        while len(chosen) < target:
            v = int(rng.choice(config.n_items, p=popularity))
            chosen.add(v)
        seq = np.fromiter(chosen, dtype=np.int64)
        # Sequencing: interest drifts across the user's preferred leaves
        # (later interactions come from later leaves of the same subtrees),
        # cold items sink to the later half, and noise breaks exact order.
        drift_rank = np.array(
            [leaf_order.get(int(item_leaf[v]), 0) for v in seq], dtype=np.float64
        )
        drift_rank /= max(len(leaf_order) - 1, 1)
        order_key = (
            config.drift * drift_rank
            + 0.35 * cold[seq]
            + rng.random(len(seq)) * (1.0 - config.drift)
        )
        seq = seq[np.argsort(order_key)]
        users.extend([u] * len(seq))
        items.extend(seq.tolist())
        times.extend(np.arange(len(seq), dtype=np.float64).tolist())

    return InteractionDataset(
        n_users=config.n_users,
        n_items=config.n_items,
        n_tags=n_tags,
        user_ids=np.array(users),
        item_ids=np.array(items),
        timestamps=np.array(times),
        item_tags=item_tags,
        tag_names=names,
        tag_parent=parent,
        name=config.name,
    )


# ----------------------------------------------------------------------
# Presets mirroring Table I's relative shape at CPU scale
# ----------------------------------------------------------------------
PRESETS: dict[str, SyntheticConfig] = {
    # Ciao: smallest, densest, only 28 tags, shallow hierarchy.
    "ciao": SyntheticConfig(
        n_users=400,
        n_items=900,
        branching=(4, 6),  # 4 + 24 = 28 tags, matching Table I exactly
        mean_interactions=20.0,
        interest_subtrees=1,
        seed=101,
        name="ciao",
    ),
    # Amazon-CD: mid-size, 331 tags scaled to 84, deeper.
    "amazon-cd": SyntheticConfig(
        n_users=550,
        n_items=1200,
        branching=(4, 4, 4),  # 4 + 16 + 64 = 84 tags
        mean_interactions=17.0,
        interest_subtrees=2,
        seed=102,
        name="amazon-cd",
    ),
    # Amazon-Book: large, 510 tags scaled to 120.
    "amazon-book": SyntheticConfig(
        n_users=650,
        n_items=1500,
        branching=(4, 4, 4, 1),  # adds one refinement level: 4+16+64+64 = 148
        mean_interactions=17.0,
        interest_subtrees=2,
        seed=103,
        name="amazon-book",
    ),
    # Yelp: most tags (1138 scaled to ~196), deepest hierarchy, sparsest.
    "yelp": SyntheticConfig(
        n_users=750,
        n_items=1800,
        branching=(3, 4, 4, 3),  # 3 + 12 + 48 + 144 = 207 tags
        mean_interactions=14.0,
        interest_subtrees=3,
        seed=104,
        name="yelp",
    ),
}

PRESET_NAMES = tuple(PRESETS)


def load_preset(name: str, scale: float = 1.0, seed: int | None = None) -> InteractionDataset:
    """Generate one of the four named presets.

    Parameters
    ----------
    name:
        One of ``ciao``, ``amazon-cd``, ``amazon-book``, ``yelp``.
    scale:
        Multiplier on user/item counts (tags are structural and unscaled).
    seed:
        Override the preset's seed (used for multi-seed significance runs).
    """
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; choose from {PRESET_NAMES}")
    base = PRESETS[name]
    config = SyntheticConfig(
        n_users=max(int(base.n_users * scale), 20),
        n_items=max(int(base.n_items * scale), 40),
        branching=base.branching,
        ancestor_keep_prob=base.ancestor_keep_prob,
        noise_tag_prob=base.noise_tag_prob,
        untagged_item_prob=base.untagged_item_prob,
        mean_interactions=base.mean_interactions,
        tag_affinity=base.tag_affinity,
        interest_subtrees=base.interest_subtrees,
        popularity_exponent=base.popularity_exponent,
        seed=base.seed if seed is None else seed,
        name=base.name,
    )
    return generate(config)
