"""Standard dataset preprocessing: k-core filtering, deduplication, sampling.

Real-world dumps (loaded via :func:`repro.data.load_csv`) usually need the
same cleanup the paper's datasets received: iterative k-core filtering so
every kept user/item has enough interactions, duplicate collapsing, and
subsampling for quick experiments.
"""

from __future__ import annotations

import numpy as np

from ..utils import ensure_rng
from .dataset import InteractionDataset

__all__ = ["k_core", "deduplicate", "subsample_users", "relabel"]


def deduplicate(dataset: InteractionDataset) -> InteractionDataset:
    """Keep only each user's first interaction with an item."""
    seen: set[tuple[int, int]] = set()
    keep = np.zeros(dataset.n_interactions, dtype=bool)
    order = np.argsort(dataset.timestamps, kind="stable")
    for idx in order:
        key = (int(dataset.user_ids[idx]), int(dataset.item_ids[idx]))
        if key not in seen:
            seen.add(key)
            keep[idx] = True
    return dataset.subset(keep, name=f"{dataset.name}/dedup")


def k_core(dataset: InteractionDataset, k: int = 5, max_rounds: int = 50) -> InteractionDataset:
    """Iteratively drop users/items with fewer than ``k`` interactions.

    Entity ids are re-labelled to a contiguous range afterwards (use
    :func:`relabel` output's mapping arrays to translate back).
    """
    users = dataset.user_ids.copy()
    items = dataset.item_ids.copy()
    keep = np.ones(len(users), dtype=bool)
    for _ in range(max_rounds):
        user_counts = np.bincount(users[keep], minlength=dataset.n_users)
        item_counts = np.bincount(items[keep], minlength=dataset.n_items)
        bad = (user_counts[users] < k) | (item_counts[items] < k)
        bad &= keep
        if not bad.any():
            break
        keep &= ~bad
    filtered = dataset.subset(keep, name=f"{dataset.name}/{k}core")
    return relabel(filtered)[0]


def relabel(dataset: InteractionDataset) -> tuple[InteractionDataset, dict[str, np.ndarray]]:
    """Compact user/item id spaces to the entities that actually appear.

    Returns the compacted dataset and ``{"users": old_ids, "items": old_ids}``
    arrays mapping new index → original id.
    """
    active_users = np.unique(dataset.user_ids)
    active_items = np.unique(dataset.item_ids)
    user_map = {int(u): i for i, u in enumerate(active_users)}
    item_map = {int(v): i for i, v in enumerate(active_items)}
    new = InteractionDataset(
        n_users=len(active_users),
        n_items=len(active_items),
        n_tags=dataset.n_tags,
        user_ids=np.array([user_map[int(u)] for u in dataset.user_ids]),
        item_ids=np.array([item_map[int(v)] for v in dataset.item_ids]),
        timestamps=dataset.timestamps.copy(),
        item_tags=dataset.item_tags[active_items],
        tag_names=dataset.tag_names,
        tag_parent=dataset.tag_parent,
        name=dataset.name,
    )
    return new, {"users": active_users, "items": active_items}


def subsample_users(
    dataset: InteractionDataset,
    n_users: int,
    seed: int | np.random.Generator | None = 0,
) -> InteractionDataset:
    """Keep a random subset of users (and compact the id spaces)."""
    rng = ensure_rng(seed)
    active = np.unique(dataset.user_ids)
    if n_users >= len(active):
        return dataset
    chosen = set(int(u) for u in rng.choice(active, size=n_users, replace=False))
    keep = np.array([int(u) in chosen for u in dataset.user_ids])
    return relabel(dataset.subset(keep, name=f"{dataset.name}/sub{n_users}"))[0]
