"""Table-I-style dataset statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import InteractionDataset

__all__ = ["DatasetStats", "compute_stats"]


@dataclass
class DatasetStats:
    """The columns of the paper's Table I, plus tag-structure extras."""

    name: str
    n_users: int
    n_items: int
    n_interactions: int
    density_percent: float
    n_tags: int
    mean_tags_per_item: float
    taxonomy_depth: int | None

    def as_row(self) -> list[object]:
        """Render as one Table-I row."""
        depth = "-" if self.taxonomy_depth is None else str(self.taxonomy_depth)
        return [
            self.name,
            self.n_users,
            self.n_items,
            self.n_interactions,
            f"{self.density_percent:.3f}",
            self.n_tags,
            f"{self.mean_tags_per_item:.2f}",
            depth,
        ]


def compute_stats(dataset: InteractionDataset) -> DatasetStats:
    """Compute the statistics the paper reports in Table I."""
    depth = None
    if dataset.tag_parent is not None:
        parent = dataset.tag_parent
        depth = 0
        for t in range(len(parent)):
            d, cur = 1, parent[t]
            while cur != -1:
                d += 1
                cur = parent[cur]
            depth = max(depth, d)
    return DatasetStats(
        name=dataset.name,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        n_interactions=dataset.n_interactions,
        density_percent=100.0 * dataset.density,
        n_tags=dataset.n_tags,
        mean_tags_per_item=float(dataset.item_tags.sum(axis=1).mean()),
        taxonomy_depth=depth,
    )
