"""Datasets: container, taxonomy-planted synthetic generator, splits, sampling."""

from .dataset import InteractionDataset
from .io import IdMaps, load_csv, load_npz, save_npz
from .sampling import TripletSampler
from .splits import Split, temporal_split
from .stats import DatasetStats, compute_stats
from .synthetic import PRESET_NAMES, PRESETS, SyntheticConfig, generate, load_preset
from .transforms import deduplicate, k_core, relabel, subsample_users

__all__ = [
    "InteractionDataset",
    "IdMaps",
    "load_csv",
    "load_npz",
    "save_npz",
    "TripletSampler",
    "Split",
    "temporal_split",
    "DatasetStats",
    "compute_stats",
    "SyntheticConfig",
    "generate",
    "load_preset",
    "PRESETS",
    "PRESET_NAMES",
    "k_core",
    "deduplicate",
    "relabel",
    "subsample_users",
]
