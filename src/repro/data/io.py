"""Dataset persistence and interchange.

Two formats:

* **NPZ** — lossless save/load of an :class:`InteractionDataset` (used for
  caching generated presets and shipping fixtures).
* **CSV** — load real-world data from two flat files, so the library is
  usable beyond the synthetic presets:

  * interactions: ``user_id,item_id,timestamp`` (header optional)
  * item tags:    ``item_id,tag`` one row per (item, tag) pair

  String ids are mapped to contiguous integers; the mapping is returned so
  predictions can be translated back.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .dataset import InteractionDataset

__all__ = ["save_npz", "load_npz", "load_csv", "IdMaps"]


def save_npz(dataset: InteractionDataset, path: str | Path) -> None:
    """Serialise a dataset to a single ``.npz`` file."""
    arrays = dict(
        n_users=np.int64(dataset.n_users),
        n_items=np.int64(dataset.n_items),
        n_tags=np.int64(dataset.n_tags),
        user_ids=dataset.user_ids,
        item_ids=dataset.item_ids,
        timestamps=dataset.timestamps,
        item_tags=dataset.item_tags,
        tag_names=np.array(dataset.tag_names, dtype=object),
        name=np.array(dataset.name),
    )
    if dataset.tag_parent is not None:
        arrays["tag_parent"] = dataset.tag_parent
    np.savez_compressed(path, **arrays, allow_pickle=True)


def load_npz(path: str | Path) -> InteractionDataset:
    """Load a dataset written by :func:`save_npz`."""
    with np.load(path, allow_pickle=True) as data:
        return InteractionDataset(
            n_users=int(data["n_users"]),
            n_items=int(data["n_items"]),
            n_tags=int(data["n_tags"]),
            user_ids=data["user_ids"],
            item_ids=data["item_ids"],
            timestamps=data["timestamps"],
            item_tags=data["item_tags"],
            tag_names=[str(t) for t in data["tag_names"]],
            tag_parent=data["tag_parent"] if "tag_parent" in data else None,
            name=str(data["name"]),
        )


@dataclass
class IdMaps:
    """String → integer id mappings produced by :func:`load_csv`."""

    users: dict[str, int]
    items: dict[str, int]
    tags: dict[str, int]

    def user_of(self, index: int) -> str:
        """Original user string for a contiguous index."""
        return self._inverse(self.users)[index]

    def item_of(self, index: int) -> str:
        """Original item string for a contiguous index."""
        return self._inverse(self.items)[index]

    @staticmethod
    def _inverse(mapping: dict[str, int]) -> dict[int, str]:
        return {v: k for k, v in mapping.items()}


def _read_rows(path: str | Path, n_cols: int) -> list[list[str]]:
    rows = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row or len(row) < n_cols:
                continue
            rows.append([cell.strip() for cell in row[:n_cols]])
    # Drop a header row if the last column of the first row is not numeric
    # (interactions) — tag files have no numeric column, so callers pass
    # pre-cleaned rows through _maybe_drop_header instead.
    return rows


def _looks_like_header(row: list[str]) -> bool:
    lowered = [cell.lower() for cell in row]
    return any(cell in ("user_id", "user", "item_id", "item", "tag", "timestamp") for cell in lowered)


def load_csv(
    interactions_path: str | Path,
    item_tags_path: str | Path | None = None,
    name: str = "csv",
) -> tuple[InteractionDataset, IdMaps]:
    """Load a dataset from flat CSV files.

    Parameters
    ----------
    interactions_path:
        CSV with rows ``user,item,timestamp`` (timestamp optional; row
        order is used when missing).
    item_tags_path:
        Optional CSV with rows ``item,tag``.  Items without tags get empty
        tag rows; tags never seen in interactions' items are kept.
    name:
        Dataset name.

    Returns
    -------
    (dataset, id_maps)
    """
    with open(interactions_path, newline="") as handle:
        rows = [r for r in csv.reader(handle) if r and len(r) >= 2]
    if rows and _looks_like_header(rows[0]):
        rows = rows[1:]
    if not rows:
        raise ValueError(f"no interaction rows in {interactions_path}")

    users: dict[str, int] = {}
    items: dict[str, int] = {}
    u_idx, v_idx, ts = [], [], []
    for i, row in enumerate(rows):
        user, item = row[0].strip(), row[1].strip()
        u_idx.append(users.setdefault(user, len(users)))
        v_idx.append(items.setdefault(item, len(items)))
        if len(row) >= 3 and row[2].strip():
            ts.append(float(row[2]))
        else:
            ts.append(float(i))

    tags: dict[str, int] = {}
    tag_rows: list[tuple[int, int]] = []
    if item_tags_path is not None:
        trows = _read_rows(item_tags_path, 2)
        if trows and _looks_like_header(trows[0]):
            trows = trows[1:]
        for item, tag in trows:
            if item not in items:
                continue  # tags for items never interacted with
            tag_rows.append((items[item], tags.setdefault(tag, len(tags))))

    n_tags = max(len(tags), 1)
    item_tags = np.zeros((len(items), n_tags))
    for v, t in tag_rows:
        item_tags[v, t] = 1.0

    dataset = InteractionDataset(
        n_users=len(users),
        n_items=len(items),
        n_tags=n_tags,
        user_ids=np.array(u_idx),
        item_ids=np.array(v_idx),
        timestamps=np.array(ts),
        item_tags=item_tags,
        tag_names=sorted(tags, key=tags.get) if tags else ["tag_0"],
        name=name,
    )
    return dataset, IdMaps(users=users, items=items, tags=tags)
