"""Negative sampling and mini-batch iteration for implicit feedback.

Every metric-learning model in the repo trains on triplets
``(u, v_p, v_q)`` where ``(u, v_p)`` is observed and ``(u, v_q)`` is not
(paper Eq. 18); MF/NCF models consume the same triplets pairwise.

The sampler never densifies the interaction matrix: membership tests run
against the sorted ``user * n_items + item`` codes of the interaction CSR
(one ``searchsorted`` per rejection round over the whole batch), so memory
stays O(nnz) at any catalogue size.  After a bounded number of rejection
rounds the still-colliding entries are resolved *exactly* by sampling from
the user's complement item set, which makes the sampler correct even for
users whose interaction row is nearly complete — the rejection worst case.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..utils import ensure_rng
from .dataset import InteractionDataset

__all__ = ["TripletSampler"]

# Rejection rounds before falling back to exact complement sampling.  At the
# paper's densities (<1%) one or two rounds suffice; the fallback only ever
# triggers for pathological near-complete rows.
_MAX_REJECTION_ROUNDS = 8


class TripletSampler:
    """Uniform negative sampler with rejection against known positives.

    Parameters
    ----------
    train:
        Training interactions; positives are rejected as negatives.
    n_negatives:
        Negatives drawn per positive.
    seed:
        RNG seed or generator.
    exclude:
        Optional extra datasets (e.g. validation/test holdouts) whose
        interactions are also rejected — use this when sampled negatives
        must never collide with held-out positives either.
    """

    def __init__(
        self,
        train: InteractionDataset,
        n_negatives: int = 1,
        seed: int | np.random.Generator | None = 0,
        exclude: InteractionDataset | list[InteractionDataset] | None = None,
    ):
        self.train = train
        self.n_negatives = n_negatives
        self.rng = ensure_rng(seed)
        self.users = train.user_ids
        self.items = train.item_ids

        if exclude is None:
            exclude = []
        elif isinstance(exclude, InteractionDataset):
            exclude = [exclude]
        codes = [train.user_ids.astype(np.int64) * train.n_items + train.item_ids]
        for ds in exclude:
            if ds.n_items != train.n_items:
                raise ValueError("exclude dataset has a different item catalogue")
            codes.append(ds.user_ids.astype(np.int64) * train.n_items + ds.item_ids)
        # Sorted unique (user, item) codes of every forbidden pair.
        self._codes = np.unique(np.concatenate(codes))
        counts = np.bincount(
            (self._codes // train.n_items).astype(np.int64), minlength=train.n_users
        )
        self._n_forbidden = counts
        self._code_starts = np.concatenate([[0], np.cumsum(counts)])

    # ------------------------------------------------------------------
    # RNG-state capture (checkpoint/resume support)
    # ------------------------------------------------------------------
    def get_rng_state(self) -> dict:
        """JSON-serialisable snapshot of the sampler's generator state.

        Capturing/restoring this state makes an interrupted epoch stream
        resume bit-identically: the shuffle permutations and negative draws
        after :meth:`set_rng_state` match an uninterrupted run exactly.
        """
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a :meth:`get_rng_state` snapshot in place."""
        self.rng.bit_generator.state = state

    # ------------------------------------------------------------------
    def _collides(self, users: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Boolean mask of candidate entries that hit a forbidden pair."""
        codes = users.astype(np.int64)[:, None] * self.train.n_items + candidates
        idx = np.searchsorted(self._codes, codes)
        idx = np.minimum(idx, len(self._codes) - 1) if len(self._codes) else idx
        if len(self._codes) == 0:
            return np.zeros(codes.shape, dtype=bool)
        return self._codes[idx] == codes

    def _complement(self, user: int) -> np.ndarray:
        """All legal negative item ids for one user (sorted)."""
        start, stop = self._code_starts[user], self._code_starts[user + 1]
        forbidden = self._codes[start:stop] - user * self.train.n_items
        return np.setdiff1d(np.arange(self.train.n_items), forbidden, assume_unique=True)

    def sample_negatives(self, users: np.ndarray, n_each: int | None = None) -> np.ndarray:
        """Draw ``(len(users), n_each)`` negative item ids, vectorised.

        Iterative rejection re-samples only the entries that collided with a
        forbidden pair; entries still colliding after
        ``_MAX_REJECTION_ROUNDS`` rounds (users with near-complete rows) are
        drawn exactly from the user's complement item set, so even a user
        with a single legal negative gets true negatives.  A user with *no*
        legal negative (complete row — no valid triplet exists) degenerates
        gracefully: their entries stay uniform over all items, matching the
        historical behaviour that training code relies on (the hinge loss
        sees g_pos - g_pos and the batch contributes nothing).
        """
        users = np.asarray(users, dtype=np.int64)
        n_each = n_each or self.n_negatives
        negatives = self.rng.integers(
            0, self.train.n_items, size=(len(users), n_each), dtype=np.int64
        )
        if len(users) == 0 or n_each == 0:
            return negatives
        collide = self._collides(users, negatives)
        for _ in range(_MAX_REJECTION_ROUNDS):
            n_bad = int(collide.sum())
            if n_bad == 0:
                return negatives
            negatives[collide] = self.rng.integers(
                0, self.train.n_items, size=n_bad, dtype=np.int64
            )
            collide = self._collides(users, negatives)
        # Exact fallback: the remaining rows belong to users so dense that
        # uniform rejection stalls; draw uniformly from their complements.
        for i in np.nonzero(collide.any(axis=1))[0]:
            legal = self._complement(int(users[i]))
            if len(legal) == 0:
                continue  # complete row: no negative exists, keep as-is
            bad = np.nonzero(collide[i])[0]
            negatives[i, bad] = legal[self.rng.integers(0, len(legal), size=len(bad))]
        return negatives

    def sample_negatives_reference(
        self, users: np.ndarray, n_each: int | None = None
    ) -> np.ndarray:
        """Per-user Python-loop twin of :func:`sample_negatives`.

        Same contract (never returns a forbidden pair unless no legal
        negative exists, same shape/dtype, same complete-row degeneration);
        kept as the correctness anchor for the differential tests and the
        ``repro.bench`` trajectory.
        """
        users = np.asarray(users, dtype=np.int64)
        n_each = n_each or self.n_negatives
        n_items = self.train.n_items
        out = np.zeros((len(users), n_each), dtype=np.int64)
        for i, u in enumerate(users):
            start, stop = self._code_starts[u], self._code_starts[u + 1]
            forbidden = set((self._codes[start:stop] - int(u) * n_items).tolist())
            saturated = len(forbidden) >= n_items
            for j in range(n_each):
                candidate = int(self.rng.integers(0, n_items))
                if not saturated:
                    while candidate in forbidden:
                        candidate = int(self.rng.integers(0, n_items))
                out[i, j] = candidate
        return out

    def epoch(self, batch_size: int, shuffle: bool = True) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(users, pos_items, neg_items)`` batches covering all positives.

        ``neg_items`` has shape ``(batch, n_negatives)``.
        """
        n = len(self.users)
        order = self.rng.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            users = self.users[idx]
            pos = self.items[idx]
            neg = self.sample_negatives(users)
            yield users, pos, neg
