"""Negative sampling and mini-batch iteration for implicit feedback.

Every metric-learning model in the repo trains on triplets
``(u, v_p, v_q)`` where ``(u, v_p)`` is observed and ``(u, v_q)`` is not
(paper Eq. 18); MF/NCF models consume the same triplets pairwise.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..utils import ensure_rng
from .dataset import InteractionDataset

__all__ = ["TripletSampler"]


class TripletSampler:
    """Uniform negative sampler with rejection against training positives.

    Parameters
    ----------
    train:
        Training interactions; positives are rejected as negatives.
    n_negatives:
        Negatives drawn per positive.
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        train: InteractionDataset,
        n_negatives: int = 1,
        seed: int | np.random.Generator | None = 0,
    ):
        self.train = train
        self.n_negatives = n_negatives
        self.rng = ensure_rng(seed)
        self._positive = train.interaction_matrix().astype(bool).toarray()
        self.users = train.user_ids
        self.items = train.item_ids

    def sample_negatives(self, users: np.ndarray, n_each: int | None = None) -> np.ndarray:
        """Draw ``(len(users), n_each)`` negative item ids, vectorised.

        Uses iterative rejection: resamples only the entries that collided
        with a known positive, which converges in a couple of rounds at the
        densities used here.
        """
        n_each = n_each or self.n_negatives
        negatives = self.rng.integers(0, self.train.n_items, size=(len(users), n_each))
        for _ in range(50):
            collide = self._positive[users[:, None], negatives]
            n_bad = int(collide.sum())
            if n_bad == 0:
                break
            negatives[collide] = self.rng.integers(0, self.train.n_items, size=n_bad)
        return negatives

    def epoch(self, batch_size: int, shuffle: bool = True) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(users, pos_items, neg_items)`` batches covering all positives.

        ``neg_items`` has shape ``(batch, n_negatives)``.
        """
        n = len(self.users)
        order = self.rng.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            users = self.users[idx]
            pos = self.items[idx]
            neg = self.sample_negatives(users)
            yield users, pos, neg
