"""TaxoRec: joint tag-taxonomy construction and recommendation (paper §IV).

The model holds four embedding tables —

* ``tag_emb``   — tag embeddings ``T^P`` on the **Poincaré ball** (taxonomy
  construction side),
* ``user_ir`` / ``item_ir`` — tag-irrelevant user/item points on the
  **Lorentz hyperboloid**,
* ``user_tg``   — tag-relevant user points on the Lorentz hyperboloid

— and derives the item tag-relevant embedding from the tags themselves:
Poincaré → Klein (Eq. 9), ψ-weighted Einstein midpoint (Eq. 10), Klein →
Poincaré → Lorentz (Eq. 11).  Both channels then pass through the global
tangent-space GCN (Eqs. 12–15).  Similarity is the personalised
tag-enhanced squared-distance sum g(u, v) (Eqs. 16–17), trained with the
LMNN hinge (Eq. 18) plus λ·L_reg over the currently constructed taxonomy
(Eqs. 8, 19), all under Riemannian SGD (§IV-E).

Ablation flags reproduce the paper's Table III rows:

* ``hyperbolic=False``                 → **CML + Agg** (everything in
  Euclidean space, Adam optimiser);
* ``hyperbolic=True, use_taxonomy=False`` → **Hyper + CML + Agg**;
* defaults                             → **TaxoRec** (full model).

(The tag-free rows "CML" and "Hyper + CML" are the standalone
:class:`~repro.models.cml.CML` and :class:`~repro.models.hyperml.HyperML`.)
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, concat, hinge, no_grad
from ..backend import get_backend
from ..data import InteractionDataset
from ..manifolds.constants import BOUNDARY_EPS, DIV_EPS, MIN_NORM
from ..manifolds import (
    Lorentz,
    PoincareBall,
    einstein_midpoint_batch,
    klein_to_poincare,
    poincare_to_klein,
    poincare_to_lorentz,
)
from ..optim import Adam, RiemannianSGD
from ..taxonomy import Taxonomy, build_taxonomy, taxonomy_regularizer
from .base import Recommender, TrainConfig
from .graph import BipartiteGraph

__all__ = ["TaxoRec", "personalized_tag_weights", "personalized_tag_weights_reference"]


def personalized_tag_weights(train: InteractionDataset) -> np.ndarray:
    """α_u of Eq. 16: tag-repetition ratio over each user's interacted items.

    α_u = Σ_{v∈V_u} |T_v| / (|V_u| · |∪_{v∈V_u} T_v|); users whose items
    repeat the same tags get α near 1 (consistent tag-driven preference),
    users with disjoint tag sets get α near 1/|V_u|.  Users without train
    interactions default to 0.5.

    Computed in one pass over the interaction CSR: per-user tag totals are
    ``X @ |T_v|`` and per-user tag unions count the nonzeros of
    ``X @ Ψ``; the per-user Python loop survives as
    :func:`personalized_tag_weights_reference`.
    """
    x = train.interaction_matrix()  # binary (n_users, n_items) CSR
    n_per_user = np.asarray(x.sum(axis=1)).ravel()
    tag_counts = train.item_tags.sum(axis=1)
    totals = np.asarray(x @ tag_counts).ravel()
    unions = np.asarray((np.asarray(x @ train.item_tags) > 0).sum(axis=1)).ravel()
    alpha = np.full(train.n_users, 0.5)
    ok = (n_per_user > 0) & (unions > 0)
    alpha[ok] = totals[ok] / (n_per_user[ok] * unions[ok])
    return np.clip(alpha, 0.0, 1.0)


def personalized_tag_weights_reference(train: InteractionDataset) -> np.ndarray:
    """Per-user loop twin of :func:`personalized_tag_weights`."""
    alpha = np.full(train.n_users, 0.5)
    per_user = train.items_of_user()
    tag_counts = train.item_tags.sum(axis=1)
    for u, items in enumerate(per_user):
        if len(items) == 0:
            continue
        items = np.unique(items)
        total = tag_counts[items].sum()
        union = (train.item_tags[items].sum(axis=0) > 0).sum()
        if union == 0:
            continue
        alpha[u] = total / (len(items) * union)
    return np.clip(alpha, 0.0, 1.0)


class TaxoRec(Recommender):
    """Joint taxonomy construction + tag-enhanced hyperbolic recommendation."""

    name = "TaxoRec"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        hyperbolic: bool = True,
        use_taxonomy: bool = True,
        personalized_alpha: bool = True,
        fixed_alpha: float = 0.5,
        taxo_warmup: int = 5,
        local_agg: str = "einstein",
        fixed_taxonomy: Taxonomy | None = None,
        tag_channel_weight: float | None = None,
    ):
        super().__init__(train, config)
        if use_taxonomy and not hyperbolic:
            raise ValueError("taxonomy construction requires the hyperbolic variant")
        if local_agg not in ("einstein", "tangent_mean"):
            raise ValueError("local_agg must be 'einstein' or 'tangent_mean'")
        cfg = self.config
        self.hyperbolic = hyperbolic
        self.use_taxonomy = use_taxonomy
        self.local_agg = local_agg
        self.graph = BipartiteGraph(train)
        # An existing taxonomy can be supplied (paper §VI future work); it
        # is then used for L_reg as-is and never rebuilt.
        self.taxonomy: Taxonomy | None = fixed_taxonomy
        self._fixed_taxonomy = fixed_taxonomy is not None
        self._taxo_warmup = taxo_warmup

        d_ir = cfg.dim - cfg.tag_dim
        d_tg = cfg.tag_dim
        rng = self.rng
        self.ball = PoincareBall()
        self.lorentz = Lorentz()

        if hyperbolic:
            self.user_ir = Parameter(
                self.lorentz.random((train.n_users, d_ir + 1), rng, scale=0.1),
                manifold=self.lorentz,
            )
            self.item_ir = Parameter(
                self.lorentz.random((train.n_items, d_ir + 1), rng, scale=0.1),
                manifold=self.lorentz,
            )
            # The tag channel needs a spread comparable to the ir channel,
            # or its squared distances vanish inside g(u, v) (Eq. 17).  Tags
            # are seeded as near-boundary anchors (radius ≈ 1-1e-5): there
            # the Poincaré distances between tags reach ranking scale, and
            # the conformal factor makes RSGD updates gentle, so the tag
            # space stays well spread while it organises.
            self.user_tg = Parameter(
                self.lorentz.random((train.n_users, d_tg + 1), rng, scale=0.5),
                manifold=self.lorentz,
            )
            directions = rng.normal(size=(train.n_tags, d_tg))
            directions /= np.maximum(
                np.linalg.norm(directions, axis=1, keepdims=True), DIV_EPS
            )
            self.tag_emb = Parameter(self.ball.proj(directions), manifold=self.ball)
        else:
            scale_ir = 0.1 / np.sqrt(d_ir)
            scale_tg = 0.1 / np.sqrt(d_tg)
            self.user_ir = Parameter(rng.normal(0.0, scale_ir, size=(train.n_users, d_ir)))
            self.item_ir = Parameter(rng.normal(0.0, scale_ir, size=(train.n_items, d_ir)))
            self.user_tg = Parameter(rng.normal(0.0, scale_tg, size=(train.n_users, d_tg)))
            self.tag_emb = Parameter(rng.normal(0.0, scale_tg, size=(train.n_tags, d_tg)))

        if personalized_alpha:
            self.alpha_u = personalized_tag_weights(train)
        else:
            self.alpha_u = np.full(train.n_users, fixed_alpha)
        # Channel balance β: the ir channel has D_i dims and spreads much
        # farther than the D_t-dim tag channel, so Eq. 17's raw sum lets
        # d²_ir dominate.  β rescales the tag term to per-dimension parity
        # by default (D_i / D_t); tuneable like any other hyperparameter.
        if tag_channel_weight is None:
            tag_channel_weight = cfg.taxo_beta if cfg.taxo_beta is not None else d_ir / d_tg
        self.beta = float(tag_channel_weight)
        self._alpha = self.alpha_u * self.beta
        self._psi = train.item_tags  # Ψ, (n_items, n_tags)

    # ------------------------------------------------------------------
    def make_optimizer(self):
        """RSGD for the hyperbolic variant; Adam for the Euclidean ablation."""
        if self.hyperbolic:
            return RiemannianSGD(list(self.parameters()), lr=self.config.lr)
        return Adam(list(self.parameters()), lr=self.config.lr)

    # ------------------------------------------------------------------
    # Aggregation mechanism (paper §IV-D)
    # ------------------------------------------------------------------
    def _item_tag_embedding(self) -> Tensor:
        """Local aggregation: items inherit the midpoint of their tags.

        Hyperbolic: Eqs. 9–11 via the Einstein midpoint in Klein
        coordinates (or a tangent-space mean for the ablation);
        Euclidean: the ψ-weighted arithmetic mean.
        """
        psi = Tensor(self._psi)
        if not self.hyperbolic:
            denom = Tensor(np.maximum(self._psi.sum(axis=1, keepdims=True), 1.0))
            return (psi @ self.tag_emb) / denom
        if self.local_agg == "tangent_mean":
            # Ablation: average log-mapped tags instead of the midpoint.
            logs = _poincare_log0(self.tag_emb)
            denom = Tensor(np.maximum(self._psi.sum(axis=1, keepdims=True), 1.0))
            mean = (psi @ logs) / denom
            return poincare_to_lorentz(_poincare_exp0(mean))
        klein = poincare_to_klein(self.tag_emb)  # (S, Dt)
        mu = einstein_midpoint_batch(klein, psi)  # (n_items, Dt), Eq. 10
        return poincare_to_lorentz(klein_to_poincare(mu))  # Eq. 11

    def _encode(self) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        """Global aggregation (Eqs. 12–15) over both channels.

        Returns (u_ir, v_ir, u_tg, v_tg) in the model's metric space.
        """
        item_tg_prime = self._item_tag_embedding()
        L = self.config.n_layers
        if self.hyperbolic:
            z_u_ir = self.lorentz.logmap0(self.user_ir)
            z_v_ir = self.lorentz.logmap0(self.item_ir)
            z_u_tg = self.lorentz.logmap0(self.user_tg)
            z_v_tg = self.lorentz.logmap0(item_tg_prime)
        else:
            z_u_ir, z_v_ir = self.user_ir, self.item_ir
            z_u_tg, z_v_tg = self.user_tg, item_tg_prime
        s_u_ir, s_v_ir = self.graph.residual_gcn(z_u_ir, z_v_ir, L)
        s_u_tg, s_v_tg = self.graph.residual_gcn(z_u_tg, z_v_tg, L)
        if self.hyperbolic:
            return (
                self.lorentz.expmap0(s_u_ir),
                self.lorentz.expmap0(s_v_ir),
                self.lorentz.expmap0(s_u_tg),
                self.lorentz.expmap0(s_v_tg),
            )
        return s_u_ir, s_v_ir, s_u_tg, s_v_tg

    # ------------------------------------------------------------------
    # Similarity and loss (Eqs. 16–19)
    # ------------------------------------------------------------------
    def _sq_dist(self, a: Tensor, b: Tensor) -> Tensor:
        if self.hyperbolic:
            return self.lorentz.sq_dist(a, b)
        return ((a - b) ** 2).sum(axis=-1)

    def _g(self, u_ir, v_ir, u_tg, v_tg, alpha: Tensor) -> Tensor:
        return self._sq_dist(u_ir, v_ir) + alpha * self._sq_dist(u_tg, v_tg)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """LMNN hinge over g(u, v) (Eq. 18) plus λ·L_reg (Eq. 19)."""
        u_ir, v_ir, u_tg, v_tg = self._encode()
        alpha = Tensor(self._alpha[users])
        bu_ir = u_ir.take_rows(users)
        bu_tg = u_tg.take_rows(users)
        g_pos = self._g(bu_ir, v_ir.take_rows(pos), bu_tg, v_tg.take_rows(pos), alpha)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            g_neg = self._g(
                bu_ir, v_ir.take_rows(neg[:, j]), bu_tg, v_tg.take_rows(neg[:, j]), alpha
            )
            term = hinge(self.config.margin + g_pos - g_neg).mean()
            loss = term if loss is None else loss + term
        loss = loss / neg.shape[1]
        if self.use_taxonomy and self.taxonomy is not None and self.config.taxo_lambda > 0:
            loss = loss + self.config.taxo_lambda * taxonomy_regularizer(self.tag_emb, self.taxonomy)
        return loss

    # ------------------------------------------------------------------
    # Taxonomy alternation
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        """Rebuild the taxonomy on schedule (warm-up, then every rebuild_every epochs)."""
        if not self.use_taxonomy or self._fixed_taxonomy:
            return
        cfg = self.config
        due = epoch >= self._taxo_warmup and (epoch - self._taxo_warmup) % cfg.taxo_rebuild_every == 0
        if due:
            self.rebuild_taxonomy()

    def rebuild_taxonomy(self) -> Taxonomy:
        """Run Algorithm 1 + the recursive builder on current tag embeddings."""
        cfg = self.config
        self.taxonomy = build_taxonomy(
            self.tag_emb.data,
            self._psi,
            k=cfg.taxo_k,
            delta=cfg.taxo_delta,
            max_depth=cfg.taxo_max_depth,
            rng=self.rng,
        )
        return self.taxonomy

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def extra_state(self) -> dict:
        """Serialise the currently constructed taxonomy for checkpoints.

        The taxonomy is rebuilt only every ``taxo_rebuild_every`` epochs,
        so a resumed run must restore the *same* tree or λ·L_reg (and with
        it every gradient until the next rebuild) would diverge.  Fixed
        (caller-supplied) taxonomies are not serialised — they are part of
        the model's construction arguments.
        """
        if self.taxonomy is None or self._fixed_taxonomy:
            return {}
        from ..taxonomy.export import to_dict

        return {"taxonomy": to_dict(self.taxonomy)}

    def load_extra_state(self, state: dict) -> None:
        """Restore an :meth:`extra_state` taxonomy snapshot."""
        doc = state.get("taxonomy")
        if doc is not None and not self._fixed_taxonomy:
            from ..taxonomy.export import from_dict

            self.taxonomy = from_dict(doc)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            u_ir, v_ir, u_tg, v_tg = self._encode()
            alpha = self._alpha[users][:, None]
            if self.hyperbolic:
                d_ir = _pairwise_sq_dist_lorentz(u_ir.data[users], v_ir.data)
                d_tg = _pairwise_sq_dist_lorentz(u_tg.data[users], v_tg.data)
            else:
                d_ir = _pairwise_sq_dist_euclid(u_ir.data[users], v_ir.data)
                d_tg = _pairwise_sq_dist_euclid(u_tg.data[users], v_tg.data)
            return -(d_ir + alpha * d_tg)

    def frozen_scores(self) -> dict:
        """Two-channel payload for Eq. 17: encoded points plus α·β weights.

        Local tag aggregation (Eqs. 9–11) and the global tangent-space GCN
        (Eqs. 12–15) are applied *before* freezing, so serving needs only
        pairwise distances over the four final embedding tables and the
        per-user personalised weight ``α_u · β``.
        """
        with no_grad():
            u_ir, v_ir, u_tg, v_tg = self._encode()
            score_fn = "two_channel_lorentz" if self.hyperbolic else "two_channel_euclid"
            return {
                "score_fn": score_fn,
                "arrays": {
                    "user_ir": u_ir.data.copy(),
                    "item_ir": v_ir.data.copy(),
                    "user_tg": u_tg.data.copy(),
                    "item_tg": v_tg.data.copy(),
                    "alpha": self._alpha.copy(),
                },
            }

    def user_tag_distances(self, users: np.ndarray) -> np.ndarray:
        """Distances from users' tag-relevant embeddings to every tag.

        Used by the Table-V case studies: each user's nearest tags in the
        shared metric space profile their preferences.
        """
        with no_grad():
            u_ir, v_ir, u_tg, v_tg = self._encode()
            if self.hyperbolic:
                tags = poincare_to_lorentz(Tensor(self.tag_emb.data)).data
                return np.sqrt(_pairwise_sq_dist_lorentz(u_tg.data[users], tags))
            diff = u_tg.data[users][:, None, :] - self.tag_emb.data[None, :, :]
            return np.linalg.norm(diff, axis=-1)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _pairwise_sq_dist_lorentz(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Pairwise squared hyperbolic distances between Lorentz row sets."""
    return get_backend().sq_dist_lorentz(u, v)


def _pairwise_sq_dist_euclid(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    return get_backend().sq_dist_euclid_broadcast(u, v)


def _poincare_log0(x: Tensor) -> Tensor:
    """Differentiable Poincaré log map at the origin."""
    norm = x.norm(axis=-1, keepdims=True, eps=MIN_NORM).clamp(max_value=1.0 - BOUNDARY_EPS)
    return x * (norm.artanh() / norm)


def _poincare_exp0(v: Tensor) -> Tensor:
    """Differentiable Poincaré exp map at the origin."""
    norm = v.norm(axis=-1, keepdims=True, eps=MIN_NORM)
    return v * (norm.tanh() / norm)
