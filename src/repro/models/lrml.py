"""LRML (Tay et al. 2018): latent relational metric learning.

A memory module induces a per-pair relation vector: the key ``u ⊙ v``
attends over M memory slots, and the attended slot mixture translates the
user toward the item: score ``-||u + r - v||^2``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad, softmax
from ..data import InteractionDataset
from .base import Recommender, TrainConfig
from .cml import _clip_to_ball

__all__ = ["LRML"]


class LRML(Recommender):
    """Memory-attended relation vectors over a Euclidean metric space."""

    name = "LRML"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        n_memories: int = 20,
    ):
        super().__init__(train, config)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))
        self.keys = Parameter(self.rng.normal(0.0, scale, size=(n_memories, d)))
        self.memories = Parameter(self.rng.normal(0.0, scale, size=(n_memories, d)))

    def _relation(self, u: Tensor, v: Tensor) -> Tensor:
        joint = u * v  # (b, d)
        attention = softmax(joint @ self.keys.T, axis=-1)  # (b, M)
        return attention @ self.memories  # (b, d)

    def _sq_dist(self, u: Tensor, v: Tensor) -> Tensor:
        r = self._relation(u, v)
        return ((u + r - v) ** 2).sum(axis=-1)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Hinge over memory-relation translated distances."""
        u = self.user_emb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        d_pos = self._sq_dist(u, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            term = hinge(self.config.margin + d_pos - self._sq_dist(u, vq)).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def end_epoch(self, epoch: int) -> None:
        _clip_to_ball(self.user_emb.data)
        _clip_to_ball(self.item_emb.data)

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            n_items = self.train_data.n_items
            v = self.item_emb.data  # (n, d)
            keys = self.keys.data
            memories = self.memories.data
            out = np.zeros((len(users), n_items))
            # Chunk users: the attention needs per-pair joint keys (u ⊙ v).
            for start in range(0, len(users), 64):
                batch = users[start : start + 64]
                u = self.user_emb.data[batch]  # (b, d)
                joint = u[:, None, :] * v[None, :, :]  # (b, n, d)
                logits = joint @ keys.T  # (b, n, M)
                logits -= logits.max(axis=-1, keepdims=True)
                att = np.exp(logits)
                att /= att.sum(axis=-1, keepdims=True)
                r = att @ memories  # (b, n, d)
                diff = u[:, None, :] + r - v[None, :, :]
                out[start : start + len(batch)] = -(diff * diff).sum(axis=-1)
            return out
