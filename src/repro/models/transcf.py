"""TransCF (Park et al. 2018): translational collaborative filtering.

Scores ``-||u + r_uv - v||^2`` with a relation vector built from the pair's
neighbourhoods: ``r_uv = mean(items of u) ⊙ mean(users of v)``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad, scatter_mean_rows
from ..data import InteractionDataset
from .base import Recommender, TrainConfig
from .cml import _clip_to_ball

__all__ = ["TransCF"]


class TransCF(Recommender):
    """Neighbourhood-translated metric learning."""

    name = "TransCF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))
        mat = train.interaction_matrix().tocoo()
        self._edge_users = mat.row.astype(np.int64)
        self._edge_items = mat.col.astype(np.int64)

    def _neighborhoods(self) -> tuple[Tensor, Tensor]:
        """Per-user mean item embedding and per-item mean user embedding."""
        user_nb = scatter_mean_rows(
            self.item_emb.take_rows(self._edge_items), self._edge_users, self.train_data.n_users
        )
        item_nb = scatter_mean_rows(
            self.user_emb.take_rows(self._edge_users), self._edge_items, self.train_data.n_items
        )
        return user_nb, item_nb

    def _sq_dist(self, u: Tensor, r: Tensor, v: Tensor) -> Tensor:
        return ((u + r - v) ** 2).sum(axis=-1)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Hinge over neighbourhood-translated distances."""
        user_nb, item_nb = self._neighborhoods()
        u = self.user_emb.take_rows(users)
        nb_u = user_nb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        r_pos = nb_u * item_nb.take_rows(pos)
        d_pos = self._sq_dist(u, r_pos, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            r_neg = nb_u * item_nb.take_rows(neg[:, j])
            term = hinge(self.config.margin + d_pos - self._sq_dist(u, r_neg, vq)).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def end_epoch(self, epoch: int) -> None:
        _clip_to_ball(self.user_emb.data)
        _clip_to_ball(self.item_emb.data)

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            user_nb, item_nb = self._neighborhoods()
            u = self.user_emb.data[users]  # (b, d)
            nb_u = user_nb.data[users]  # (b, d)
            v = self.item_emb.data  # (n, d)
            nb_v = item_nb.data  # (n, d)
            # ||u + r - v||² with r = nb_u ⊙ nb_v, fully expanded into
            # matmuls so no (b, n, d) temporary is materialised:
            #   ||u||² + ||v||² + Σ nb_u²nb_v² + 2(u⊙nb_u)·nb_v − 2u·v − 2nb_u·(nb_v⊙v)
            d2 = (
                (u * u).sum(1)[:, None]
                + (v * v).sum(1)[None, :]
                + (nb_u * nb_u) @ (nb_v * nb_v).T
                + 2.0 * (u * nb_u) @ nb_v.T
                - 2.0 * (u @ v.T)
                - 2.0 * (nb_u @ (nb_v * v).T)
            )
            return -d2
