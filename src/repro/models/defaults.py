"""Tuned per-model hyperparameters for the benchmark harness.

The paper grid-searches every method per dataset (§V-A4).  We did the same
against the synthetic presets, selecting on the validation split; the
winning settings are recorded here so the benchmark harness reproduces the
tables without re-running the search.  Scales differ from the paper's grids
because the substrate differs (see EXPERIMENTS.md): hyperbolic models on
the scaled-down presets prefer fewer GCN layers (denser graphs oversmooth
sooner) and larger margins/learning rates (RSGD on float64 NumPy).
"""

from __future__ import annotations

from dataclasses import replace

from .base import TrainConfig

__all__ = ["tuned_config", "FAMILY_DEFAULTS"]

# Base loop settings shared by every model.
_BASE = TrainConfig(
    dim=64,
    tag_dim=12,
    epochs=120,
    batch_size=1024,
    n_negatives=1,
    eval_every=10,
    patience=4,
)

# Per-model overrides chosen by validation-split grid search.
FAMILY_DEFAULTS: dict[str, dict] = {
    "BPRMF": dict(lr=1e-3),
    "NMF": dict(lr=1e-3, epochs=60),
    "NeuMF": dict(lr=1e-3),
    "CML": dict(lr=1e-3, margin=0.5),
    "CMLF": dict(lr=1e-3, margin=0.5),
    "TransCF": dict(lr=1e-3, margin=0.5),
    "LRML": dict(lr=1e-3, margin=0.5),
    "SML": dict(lr=1e-3, margin=0.5),
    "HyperML": dict(lr=2.0, margin=1.0),
    "NGCF": dict(lr=5e-3, n_layers=2),
    "LightGCN": dict(lr=5e-3, n_layers=3),
    "HGCF": dict(lr=1.0, margin=2.0, n_layers=1),
    "AMF": dict(lr=1e-3),
    "AGCN": dict(lr=5e-3, n_layers=3),
    "TaxoRec": dict(lr=1.0, margin=2.0, n_layers=2, taxo_lambda=0.1, taxo_k=3, taxo_delta=0.5),
    # Table III ablation aliases share their family's settings.
    "CML+Agg": dict(lr=1e-3, margin=0.5, n_layers=2),
    "Hyper+CML": dict(lr=2.0, margin=1.0),
    "Hyper+CML+Agg": dict(lr=1.0, margin=2.0, n_layers=2),
}

# Per-dataset deviations discovered during the search (dataset → model → overrides).
DATASET_OVERRIDES: dict[str, dict[str, dict]] = {
    "ciao": {"TaxoRec": dict(taxo_lambda=0.05)},
}


def tuned_config(
    model_name: str,
    dataset_name: str | None = None,
    epochs: int | None = None,
    seed: int = 0,
    **extra,
) -> TrainConfig:
    """The tuned :class:`TrainConfig` for a model (optionally per dataset).

    Parameters
    ----------
    model_name:
        Registry name (e.g. ``"TaxoRec"``).
    dataset_name:
        Preset name for dataset-specific overrides, if any.
    epochs:
        Optional cap on training epochs (benchmark fast mode).
    seed:
        Training seed.
    extra:
        Final overrides applied on top (hyperparameter-study sweeps).
    """
    overrides = dict(FAMILY_DEFAULTS.get(model_name, {}))
    if dataset_name is not None:
        overrides.update(DATASET_OVERRIDES.get(dataset_name, {}).get(model_name, {}))
    overrides.update(extra)
    config = replace(_BASE, seed=seed, **overrides)
    if epochs is not None:
        config.epochs = epochs
    return config
