"""Model registry: name → constructor, used by benchmarks and examples."""

from __future__ import annotations

from typing import Callable

from ..data import InteractionDataset
from .agcn import AGCN
from .amf import AMF
from .base import Recommender, TrainConfig
from .cml import CML, CMLF
from .hgcf import HGCF
from .hyperml import HyperML
from .lightgcn import LightGCN
from .lrml import LRML
from .mf import BPRMF, NMF
from .neumf import NeuMF
from .ngcf import NGCF
from .sml import SML
from .taxorec import TaxoRec
from .transcf import TransCF
from .itemknn import ItemKNN
from .trivial import Popularity, Random

__all__ = ["MODEL_REGISTRY", "create_model", "BASELINE_NAMES", "ALL_NAMES"]


def _taxorec(train: InteractionDataset, config: TrainConfig) -> TaxoRec:
    return TaxoRec(train, config)


def _cml_agg(train: InteractionDataset, config: TrainConfig) -> TaxoRec:
    return TaxoRec(train, config, hyperbolic=False, use_taxonomy=False)


def _hyper_cml_agg(train: InteractionDataset, config: TrainConfig) -> TaxoRec:
    return TaxoRec(train, config, use_taxonomy=False)


MODEL_REGISTRY: dict[str, Callable[[InteractionDataset, TrainConfig], Recommender]] = {
    # General recommendation methods.
    "BPRMF": BPRMF,
    "NMF": NMF,
    "NeuMF": NeuMF,
    # Metric learning methods.
    "CML": CML,
    "TransCF": TransCF,
    "LRML": LRML,
    "SML": SML,
    "HyperML": HyperML,
    # Graph based methods.
    "NGCF": NGCF,
    "LightGCN": LightGCN,
    "HGCF": HGCF,
    # Tag based methods.
    "CMLF": CMLF,
    "AMF": AMF,
    "AGCN": AGCN,
    # Reference floors (not in the paper's table).
    "Popularity": Popularity,
    "Random": Random,
    "ItemKNN": ItemKNN,
    # Ours (+ Table III ablation aliases).
    "TaxoRec": _taxorec,
    "CML+Agg": _cml_agg,
    "Hyper+CML": HyperML,
    "Hyper+CML+Agg": _hyper_cml_agg,
}

BASELINE_NAMES = (
    "BPRMF",
    "NMF",
    "NeuMF",
    "CML",
    "TransCF",
    "LRML",
    "SML",
    "HyperML",
    "NGCF",
    "LightGCN",
    "HGCF",
    "CMLF",
    "AMF",
    "AGCN",
)

ALL_NAMES = BASELINE_NAMES + ("TaxoRec",)


def create_model(
    name: str, train: InteractionDataset, config: TrainConfig | None = None
) -> Recommender:
    """Instantiate a registered model by its paper name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](train, config or TrainConfig())
