"""Recommendation models: TaxoRec plus the paper's 14 baselines."""

from .agcn import AGCN
from .amf import AMF
from .base import Recommender, TrainConfig
from .cml import CML, CMLF
from .graph import BipartiteGraph
from .hgcf import HGCF
from .hyperml import HyperML
from .lightgcn import LightGCN
from .lrml import LRML
from .mf import BPRMF, NMF
from .neumf import NeuMF
from .ngcf import NGCF
from .registry import ALL_NAMES, BASELINE_NAMES, MODEL_REGISTRY, create_model
from .sml import SML
from .taxorec import TaxoRec, personalized_tag_weights
from .transcf import TransCF
from .itemknn import ItemKNN
from .trivial import Popularity, Random

__all__ = [
    "Recommender",
    "TrainConfig",
    "BipartiteGraph",
    "BPRMF",
    "NMF",
    "NeuMF",
    "CML",
    "CMLF",
    "TransCF",
    "LRML",
    "SML",
    "HyperML",
    "NGCF",
    "LightGCN",
    "HGCF",
    "AMF",
    "AGCN",
    "TaxoRec",
    "personalized_tag_weights",
    "Popularity",
    "ItemKNN",
    "Random",
    "MODEL_REGISTRY",
    "BASELINE_NAMES",
    "ALL_NAMES",
    "create_model",
]
