"""NGCF (Wang et al. 2019): neural graph collaborative filtering.

Message passing with per-layer feature transforms and a bi-interaction
term, BPR loss over the concatenation of all layer outputs.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, concat, no_grad
from ..data import InteractionDataset
from ..manifolds.constants import LOG_EPS
from .base import Recommender, TrainConfig
from .graph import BipartiteGraph

__all__ = ["NGCF"]


class NGCF(Recommender):
    """Graph CF with transformed + bi-interaction messages."""

    name = "NGCF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        self.graph = BipartiteGraph(train)
        L = self.config.n_layers
        d = self.config.dim // (L + 1)  # concat of L+1 layers ≈ total budget
        self._layer_dim = d
        scale = 0.1 / np.sqrt(d)
        rng = self.rng
        self.user_emb = Parameter(rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(rng.normal(0.0, scale, size=(train.n_items, d)))
        w_scale = np.sqrt(2.0 / d)
        self.W_self = [Parameter(rng.normal(0.0, w_scale, size=(d, d))) for _ in range(L)]
        self.W_inter = [Parameter(rng.normal(0.0, w_scale, size=(d, d))) for _ in range(L)]

    def _encode(self) -> tuple[Tensor, Tensor]:
        zu, zv = self.user_emb, self.item_emb
        outs_u, outs_v = [zu], [zv]
        for W_self, W_inter in zip(self.W_self, self.W_inter):
            agg_u, agg_v = self.graph.propagate_sym(zu, zv)
            zu_new = ((zu + agg_u) @ W_self + (zu * agg_u) @ W_inter).relu()
            zv_new = ((zv + agg_v) @ W_self + (zv * agg_v) @ W_inter).relu()
            zu, zv = zu_new, zv_new
            outs_u.append(zu)
            outs_v.append(zv)
        return concat(outs_u, axis=-1), concat(outs_v, axis=-1)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """BPR loss over graph-convolved inner products."""
        zu, zv = self._encode()
        u = zu.take_rows(users)
        vp = zv.take_rows(pos)
        pos_score = (u * vp).sum(axis=-1)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = zv.take_rows(neg[:, j])
            neg_score = (u * vq).sum(axis=-1)
            term = -((pos_score - neg_score).sigmoid().clamp(min_value=LOG_EPS).log()).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            zu, zv = self._encode()
            return zu.data[users] @ zv.data.T

    def frozen_scores(self) -> dict:
        """Inner product over the propagated (multi-layer concat) embeddings."""
        with no_grad():
            zu, zv = self._encode()
            return {
                "score_fn": "dot",
                "arrays": {"user": zu.data.copy(), "item": zv.data.copy()},
            }
