"""Bipartite user-item graph convolution shared by the GCN-family models.

Implements the propagation of paper Eq. 13 (residual mean aggregation over
neighbours) plus the symmetric-normalised variant used by LightGCN; the
layer outputs are combined by the *global aggregation* of Eq. 14.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, scatter_mean_rows
from ..data import InteractionDataset

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """Edge lists and degree tables of the training interaction graph."""

    def __init__(self, train: InteractionDataset):
        mat = train.interaction_matrix().tocoo()
        self.edge_users = mat.row.astype(np.int64)
        self.edge_items = mat.col.astype(np.int64)
        self.n_users = train.n_users
        self.n_items = train.n_items
        self.deg_users = np.maximum(np.bincount(self.edge_users, minlength=self.n_users), 1)
        self.deg_items = np.maximum(np.bincount(self.edge_items, minlength=self.n_items), 1)
        # Symmetric normalisation weights 1/sqrt(d_u d_v) per edge.
        self._sym = 1.0 / np.sqrt(
            self.deg_users[self.edge_users] * self.deg_items[self.edge_items]
        )

    # ------------------------------------------------------------------
    def propagate_mean(self, user_x: Tensor, item_x: Tensor) -> tuple[Tensor, Tensor]:
        """One mean-aggregation step: each node averages its neighbours."""
        new_users = scatter_mean_rows(
            item_x.take_rows(self.edge_items), self.edge_users, self.n_users
        )
        new_items = scatter_mean_rows(
            user_x.take_rows(self.edge_users), self.edge_items, self.n_items
        )
        return new_users, new_items

    def propagate_sym(self, user_x: Tensor, item_x: Tensor) -> tuple[Tensor, Tensor]:
        """One symmetric-normalised step (LightGCN's propagation rule)."""
        from ..autodiff.tensor import Tensor as T

        w = Tensor(self._sym[:, None])
        msgs_to_users = item_x.take_rows(self.edge_items) * w
        msgs_to_items = user_x.take_rows(self.edge_users) * w
        new_users = _scatter_sum(msgs_to_users, self.edge_users, self.n_users)
        new_items = _scatter_sum(msgs_to_items, self.edge_items, self.n_items)
        return new_users, new_items

    # ------------------------------------------------------------------
    def residual_gcn(
        self, user_x: Tensor, item_x: Tensor, n_layers: int, norm: str = "sym"
    ) -> tuple[Tensor, Tensor]:
        """Paper Eqs. 13–14: residual layers, summed over l = 1..L.

        ``norm`` selects the neighbour weighting: ``"mean"`` is the paper's
        1/|N| form; ``"sym"`` is the 1/sqrt(|N_u||N_v|) normalisation used
        by HGCF's released implementation (and LightGCN), which behaves
        better on degree-skewed graphs.
        """
        propagate = self.propagate_sym if norm == "sym" else self.propagate_mean
        zu, zv = user_x, item_x
        sum_u: Tensor | None = None
        sum_v: Tensor | None = None
        for _ in range(n_layers):
            agg_u, agg_v = propagate(zu, zv)
            zu = zu + agg_u
            zv = zv + agg_v
            sum_u = zu if sum_u is None else sum_u + zu
            sum_v = zv if sum_v is None else sum_v + zv
        if sum_u is None:  # L = 0 degenerates to the input embeddings
            return user_x, item_x
        return sum_u, sum_v

    def lightgcn(
        self, user_x: Tensor, item_x: Tensor, n_layers: int
    ) -> tuple[Tensor, Tensor]:
        """LightGCN: mean over layer outputs 0..L with symmetric normalisation."""
        zu, zv = user_x, item_x
        acc_u, acc_v = zu, zv
        for _ in range(n_layers):
            zu, zv = self.propagate_sym(zu, zv)
            acc_u = acc_u + zu
            acc_v = acc_v + zv
        scale = 1.0 / (n_layers + 1)
        return acc_u * scale, acc_v * scale


def _scatter_sum(values: Tensor, index: np.ndarray, n_rows: int) -> Tensor:
    """Sum-pool rows of ``values`` into ``n_rows`` buckets by ``index``."""
    data = np.zeros((n_rows, values.data.shape[1]), dtype=np.float64)
    np.add.at(data, index, values.data)

    def vjp(g):
        return (g[index],)

    return Tensor._from_op(data, (values,), vjp)
