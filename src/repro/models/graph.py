"""Bipartite user-item graph convolution shared by the GCN-family models.

Implements the propagation of paper Eq. 13 (residual mean aggregation over
neighbours) plus the symmetric-normalised variant used by LightGCN; the
layer outputs are combined by the *global aggregation* of Eq. 14.

The normalised adjacency matrices are precomputed **once** as scipy CSR
payloads in the constructor and reused across every propagation call (and
hence every training epoch); each layer is then a single sparse matmul
instead of a gather/scatter pass over the edge list.  The original
edge-scatter implementations are kept as ``*_reference`` methods — the
differential test suite pins the sparse fast path to them.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..autodiff import Tensor, scatter_mean_rows
from ..data import InteractionDataset

__all__ = ["BipartiteGraph"]


def _spmm(mat: sparse.csr_matrix, mat_t: sparse.csr_matrix, x: Tensor) -> Tensor:
    """Differentiable ``mat @ x`` for a constant sparse matrix.

    ``mat_t`` must be ``mat.T`` pre-converted to CSR so the backward pass is
    a sparse matmul too.
    """
    data = mat @ x.data

    def vjp(g):
        return (mat_t @ g,)

    return Tensor._from_op(data, (x,), vjp)


class BipartiteGraph:
    """Edge lists, degree tables and cached normalised adjacency matrices."""

    def __init__(self, train: InteractionDataset):
        mat = train.interaction_matrix().tocoo()
        self.edge_users = mat.row.astype(np.int64)
        self.edge_items = mat.col.astype(np.int64)
        self.n_users = train.n_users
        self.n_items = train.n_items
        self.deg_users = np.maximum(np.bincount(self.edge_users, minlength=self.n_users), 1)
        self.deg_items = np.maximum(np.bincount(self.edge_items, minlength=self.n_items), 1)
        # Symmetric normalisation weights 1/sqrt(d_u d_v) per edge.
        self._sym = 1.0 / np.sqrt(
            self.deg_users[self.edge_users] * self.deg_items[self.edge_items]
        )
        shape = (self.n_users, self.n_items)
        coords = (self.edge_users, self.edge_items)
        adj_sym = sparse.csr_matrix((self._sym, coords), shape=shape)
        ones = np.ones(len(self.edge_users), dtype=np.float64)
        adj_mean_u = sparse.csr_matrix(
            (ones / self.deg_users[self.edge_users], coords), shape=shape
        )
        adj_mean_i = sparse.csr_matrix(
            (ones / self.deg_items[self.edge_items], coords), shape=shape
        )
        # Cached fast-path operators: users <- items and items <- users.
        self._adj_sym_ui = adj_sym
        self._adj_sym_iu = adj_sym.T.tocsr()
        self._adj_mean_ui = adj_mean_u
        self._adj_mean_ui_t = adj_mean_u.T.tocsr()
        self._adj_mean_iu = adj_mean_i.T.tocsr()
        self._adj_mean_iu_t = adj_mean_i

    # ------------------------------------------------------------------
    def propagate_mean(self, user_x: Tensor, item_x: Tensor) -> tuple[Tensor, Tensor]:
        """One mean-aggregation step: each node averages its neighbours."""
        new_users = _spmm(self._adj_mean_ui, self._adj_mean_ui_t, item_x)
        new_items = _spmm(self._adj_mean_iu, self._adj_mean_iu_t, user_x)
        return new_users, new_items

    def propagate_sym(self, user_x: Tensor, item_x: Tensor) -> tuple[Tensor, Tensor]:
        """One symmetric-normalised step (LightGCN's propagation rule)."""
        new_users = _spmm(self._adj_sym_ui, self._adj_sym_iu, item_x)
        new_items = _spmm(self._adj_sym_iu, self._adj_sym_ui, user_x)
        return new_users, new_items

    # ------------------------------------------------------------------
    # Reference (edge-scatter) implementations — correctness anchors only.
    # ------------------------------------------------------------------
    def propagate_mean_reference(
        self, user_x: Tensor, item_x: Tensor
    ) -> tuple[Tensor, Tensor]:
        """Edge-scatter twin of :meth:`propagate_mean`."""
        new_users = scatter_mean_rows(
            item_x.take_rows(self.edge_items), self.edge_users, self.n_users
        )
        new_items = scatter_mean_rows(
            user_x.take_rows(self.edge_users), self.edge_items, self.n_items
        )
        return new_users, new_items

    def propagate_sym_reference(
        self, user_x: Tensor, item_x: Tensor
    ) -> tuple[Tensor, Tensor]:
        """Edge-scatter twin of :meth:`propagate_sym`."""
        w = Tensor(self._sym[:, None])
        msgs_to_users = item_x.take_rows(self.edge_items) * w
        msgs_to_items = user_x.take_rows(self.edge_users) * w
        new_users = _scatter_sum(msgs_to_users, self.edge_users, self.n_users)
        new_items = _scatter_sum(msgs_to_items, self.edge_items, self.n_items)
        return new_users, new_items

    # ------------------------------------------------------------------
    def residual_gcn(
        self,
        user_x: Tensor,
        item_x: Tensor,
        n_layers: int,
        norm: str = "sym",
        reference: bool = False,
    ) -> tuple[Tensor, Tensor]:
        """Paper Eqs. 13–14: residual layers, summed over l = 1..L.

        ``norm`` selects the neighbour weighting: ``"mean"`` is the paper's
        1/|N| form; ``"sym"`` is the 1/sqrt(|N_u||N_v|) normalisation used
        by HGCF's released implementation (and LightGCN), which behaves
        better on degree-skewed graphs.  ``reference=True`` swaps in the
        edge-scatter propagation (for differential tests/benchmarks).
        """
        if reference:
            propagate = (
                self.propagate_sym_reference if norm == "sym" else self.propagate_mean_reference
            )
        else:
            propagate = self.propagate_sym if norm == "sym" else self.propagate_mean
        zu, zv = user_x, item_x
        sum_u: Tensor | None = None
        sum_v: Tensor | None = None
        for _ in range(n_layers):
            agg_u, agg_v = propagate(zu, zv)
            zu = zu + agg_u
            zv = zv + agg_v
            sum_u = zu if sum_u is None else sum_u + zu
            sum_v = zv if sum_v is None else sum_v + zv
        if sum_u is None:  # L = 0 degenerates to the input embeddings
            return user_x, item_x
        return sum_u, sum_v

    def lightgcn(
        self, user_x: Tensor, item_x: Tensor, n_layers: int
    ) -> tuple[Tensor, Tensor]:
        """LightGCN: mean over layer outputs 0..L with symmetric normalisation."""
        zu, zv = user_x, item_x
        acc_u, acc_v = zu, zv
        for _ in range(n_layers):
            zu, zv = self.propagate_sym(zu, zv)
            acc_u = acc_u + zu
            acc_v = acc_v + zv
        scale = 1.0 / (n_layers + 1)
        return acc_u * scale, acc_v * scale


def _scatter_sum(values: Tensor, index: np.ndarray, n_rows: int) -> Tensor:
    """Sum-pool rows of ``values`` into ``n_rows`` buckets by ``index``."""
    data = np.zeros((n_rows, values.data.shape[1]), dtype=np.float64)
    np.add.at(data, index, values.data)

    def vjp(g):
        return (g[index],)

    return Tensor._from_op(data, (values,), vjp)
