"""AGCN (Wu et al. 2020): adaptive GCN with joint attribute inference.

Item embeddings are seeded from a learned projection of their tag vector
and refined jointly with a LightGCN-style propagation; an auxiliary head
reconstructs item tags from the propagated embeddings (the paper's joint
item-recommendation + attribute-inference objective).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, binary_cross_entropy_with_logits, concat, no_grad
from ..data import InteractionDataset
from ..manifolds.constants import LOG_EPS
from .base import Recommender, TrainConfig
from .graph import BipartiteGraph

__all__ = ["AGCN"]


class AGCN(Recommender):
    """Attribute-seeded graph CF with an attribute-inference auxiliary loss."""

    name = "AGCN"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        attribute_weight: float = 0.3,
    ):
        super().__init__(train, config)
        self.graph = BipartiteGraph(train)
        cfg = self.config
        d_free = cfg.dim - cfg.tag_dim
        rng = self.rng
        self.user_emb = Parameter(rng.normal(0.0, 0.1 / np.sqrt(cfg.dim), size=(train.n_users, cfg.dim)))
        self.item_free = Parameter(rng.normal(0.0, 0.1 / np.sqrt(d_free), size=(train.n_items, d_free)))
        self.attr_proj = Parameter(
            rng.normal(0.0, np.sqrt(2.0 / train.n_tags), size=(train.n_tags, cfg.tag_dim))
        )
        self.attr_head = Parameter(
            rng.normal(0.0, np.sqrt(2.0 / cfg.dim), size=(cfg.dim, train.n_tags))
        )
        self.attribute_weight = attribute_weight
        tags = train.item_tags
        self._tag_features = tags / np.maximum(tags.sum(axis=1, keepdims=True), 1.0)
        self._tag_targets = (tags > 0).astype(np.float64)

    def _encode(self) -> tuple[Tensor, Tensor]:
        attr = Tensor(self._tag_features) @ self.attr_proj  # (n_items, tag_dim)
        item0 = concat([self.item_free, attr], axis=-1)
        return self.graph.lightgcn(self.user_emb, item0, self.config.n_layers)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """BPR loss plus the attribute-inference auxiliary (tag reconstruction)."""
        zu, zv = self._encode()
        u = zu.take_rows(users)
        vp = zv.take_rows(pos)
        pos_score = (u * vp).sum(axis=-1)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = zv.take_rows(neg[:, j])
            neg_score = (u * vq).sum(axis=-1)
            term = -((pos_score - neg_score).sigmoid().clamp(min_value=LOG_EPS).log()).mean()
            loss = term if loss is None else loss + term
        loss = loss / neg.shape[1]
        # Attribute-inference head on the batch's positive items.
        logits = vp @ self.attr_head
        attr_loss = binary_cross_entropy_with_logits(logits, self._tag_targets[pos])
        return loss + self.attribute_weight * attr_loss

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            zu, zv = self._encode()
            return zu.data[users] @ zv.data.T

    def frozen_scores(self) -> dict:
        """Inner product over the attribute-augmented propagated embeddings."""
        with no_grad():
            zu, zv = self._encode()
            return {
                "score_fn": "dot",
                "arrays": {"user": zu.data.copy(), "item": zv.data.copy()},
            }
