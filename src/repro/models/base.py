"""Shared recommender API and training loop.

Every model (TaxoRec and all 14 baselines) implements three hooks —
:meth:`Recommender.loss_batch`, :meth:`Recommender.score_users` and
optionally :meth:`Recommender.begin_epoch` — and inherits a common
triplet-sampled training loop with validation-based early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Module, Tensor, no_grad
from ..data import InteractionDataset, Split, TripletSampler
from ..utils import ensure_rng, get_logger

__all__ = ["TrainConfig", "Recommender"]

_LOG = get_logger("repro.models")


@dataclass
class TrainConfig:
    """Hyperparameters shared by all models.

    Mirrors the paper's setup (§V-A4): total embedding dimension D = 64;
    tag-based models reserve ``tag_dim`` = 12 of it for the tag-relevant
    part; margins, layers, K, δ and λ follow the paper's grids.
    """

    dim: int = 64
    tag_dim: int = 12
    lr: float = 1e-3
    epochs: int = 60
    batch_size: int = 8192
    n_negatives: int = 1
    margin: float = 0.2
    n_layers: int = 3
    weight_decay: float = 0.0
    # TaxoRec-specific (harmless elsewhere).
    taxo_k: int = 3
    taxo_delta: float = 0.5
    taxo_lambda: float = 0.1
    taxo_rebuild_every: int = 10
    taxo_max_depth: int = 4
    taxo_beta: float | None = None  # tag-channel balance; None → D_i / D_t
    # Bookkeeping.
    seed: int = 0
    eval_every: int = 0  # 0 disables validation-based early stopping
    patience: int = 3
    verbose: bool = False
    extras: dict = field(default_factory=dict)


class Recommender(Module):
    """Base class: construct with the *training* interactions and a config."""

    name = "base"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        self.train_data = train
        self.config = config or TrainConfig()
        self.rng = ensure_rng(self.config.seed)
        self.history: list[dict] = []

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def loss_batch(self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray) -> Tensor:
        """Scalar training loss for one triplet batch; ``neg`` is (b, n_neg)."""
        raise NotImplementedError

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """``(len(users), n_items)`` scores, larger = better recommendation."""
        raise NotImplementedError

    def begin_epoch(self, epoch: int) -> None:
        """Hook before each epoch (TaxoRec rebuilds its taxonomy here)."""

    def end_epoch(self, epoch: int) -> None:
        """Hook after each epoch (CML-family models re-project embeddings)."""

    def make_optimizer(self):
        """Default optimiser; hyperbolic models override with RSGD."""
        from ..optim import Adam

        return Adam(list(self.parameters()), lr=self.config.lr, weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(self, split: Split | None = None) -> "Recommender":
        """Train on the construction-time dataset.

        Parameters
        ----------
        split:
            Optional; required only when ``config.eval_every > 0`` for
            validation-based early stopping (best validation snapshot is
            restored at the end).
        """
        config = self.config
        sampler = TripletSampler(
            self.train_data, n_negatives=config.n_negatives, seed=self.rng
        )
        optimizer = self.make_optimizer()
        best_score = -np.inf
        best_state: dict | None = None
        bad_rounds = 0

        for epoch in range(config.epochs):
            self.begin_epoch(epoch)
            epoch_loss = 0.0
            n_batches = 0
            for users, pos, neg in sampler.epoch(config.batch_size):
                optimizer.zero_grad()
                loss = self.loss_batch(users, pos, neg)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            self.end_epoch(epoch)
            record = {"epoch": epoch, "loss": epoch_loss / max(n_batches, 1)}

            if config.eval_every and split is not None and (epoch + 1) % config.eval_every == 0:
                from ..eval import evaluate

                with no_grad():
                    result = evaluate(self, split, on="valid")
                record["valid"] = result.mean()
                if result.mean() > best_score:
                    best_score = result.mean()
                    best_state = self.state_dict()
                    bad_rounds = 0
                else:
                    bad_rounds += 1
                if config.verbose:
                    _LOG.info(
                        "%s epoch %d loss %.4f valid %.4f", self.name, epoch, record["loss"], result.mean()
                    )
                if bad_rounds > config.patience:
                    self.history.append(record)
                    break
            elif config.verbose:
                _LOG.info("%s epoch %d loss %.4f", self.name, epoch, record["loss"])
            self.history.append(record)

        if best_state is not None:
            self.load_state_dict(best_state)
        return self
