"""Shared recommender API.

Every model (TaxoRec and all 14 baselines) implements three hooks —
:meth:`Recommender.loss_batch`, :meth:`Recommender.score_users` and
optionally :meth:`Recommender.begin_epoch` — and inherits a common
triplet-sampled training loop with validation-based early stopping.

The loop itself lives in :mod:`repro.train`: :meth:`Recommender.fit` is a
thin shim that builds a default :class:`repro.train.Trainer` whose callback
stack (model epoch hooks, best-validation snapshot, patience early
stopping, verbose logging) reproduces the historical inline loop
bit-for-bit — same RNG consumption order, so seeded metrics match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Module, Tensor
from ..data import InteractionDataset, Split
from ..utils import ensure_rng

__all__ = ["TrainConfig", "Recommender"]


@dataclass
class TrainConfig:
    """Hyperparameters shared by all models.

    Mirrors the paper's setup (§V-A4): total embedding dimension D = 64;
    tag-based models reserve ``tag_dim`` = 12 of it for the tag-relevant
    part; margins, layers, K, δ and λ follow the paper's grids.
    """

    dim: int = 64
    tag_dim: int = 12
    lr: float = 1e-3
    epochs: int = 60
    batch_size: int = 8192
    n_negatives: int = 1
    margin: float = 0.2
    n_layers: int = 3
    weight_decay: float = 0.0
    # TaxoRec-specific (harmless elsewhere).
    taxo_k: int = 3
    taxo_delta: float = 0.5
    taxo_lambda: float = 0.1
    taxo_rebuild_every: int = 10
    taxo_max_depth: int = 4
    taxo_beta: float | None = None  # tag-channel balance; None → D_i / D_t
    # Bookkeeping.
    seed: int = 0
    eval_every: int = 0  # 0 disables validation-based early stopping
    patience: int = 3
    verbose: bool = False
    extras: dict = field(default_factory=dict)


class Recommender(Module):
    """Base class: construct with the *training* interactions and a config."""

    name = "base"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        self.train_data = train
        self.config = config or TrainConfig()
        self.rng = ensure_rng(self.config.seed)
        self.history: list[dict] = []

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def loss_batch(self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray) -> Tensor:
        """Scalar training loss for one triplet batch; ``neg`` is (b, n_neg)."""
        raise NotImplementedError

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """``(len(users), n_items)`` scores, larger = better recommendation."""
        raise NotImplementedError

    def begin_epoch(self, epoch: int) -> None:
        """Hook before each epoch (TaxoRec rebuilds its taxonomy here)."""

    def end_epoch(self, epoch: int) -> None:
        """Hook after each epoch (CML-family models re-project embeddings)."""

    def make_optimizer(self):
        """Default optimiser; hyperbolic models override with RSGD."""
        from ..optim import Adam

        return Adam(list(self.parameters()), lr=self.config.lr, weight_decay=self.config.weight_decay)

    def frozen_scores(self) -> dict:
        """Frozen-scoring payload for :mod:`repro.serve` export.

        Returns ``{"score_fn": <id>, "arrays": {name: ndarray}}`` such
        that the registered pure-numpy function
        ``repro.serve.scoring.SCORE_FNS[<id>]`` reproduces
        :meth:`score_users` from the arrays alone — aggregation (GCN
        layers, tag midpoints) already applied, no autodiff graph.

        Models whose scorer factorises into fixed user/item arrays
        override this with the matching score-fn id; the default densifies
        :meth:`score_users` over the whole user set (``"dense"``), which is
        correct for *any* model at O(n_users · n_items) artifact size.
        """
        n_users = self.train_data.n_users
        chunks = [
            np.asarray(self.score_users(np.arange(start, min(start + 512, n_users))))
            for start in range(0, n_users, 512)
        ]
        scores = (
            np.concatenate(chunks, axis=0)
            if chunks
            else np.zeros((0, self.train_data.n_items))
        )
        return {"score_fn": "dense", "arrays": {"scores": scores.astype(np.float64, copy=False)}}

    def extra_state(self) -> dict:
        """JSON-serialisable non-parameter state for checkpoints.

        Models with derived structures the loss depends on (TaxoRec's
        taxonomy) override this together with :meth:`load_extra_state` so
        checkpoint → resume reproduces training bit-identically.
        """
        return {}

    def load_extra_state(self, state: dict) -> None:
        """Restore an :meth:`extra_state` snapshot (default: nothing)."""

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, split: Split | None = None) -> "Recommender":
        """Train on the construction-time dataset.

        Parameters
        ----------
        split:
            Optional; required only when ``config.eval_every > 0`` for
            validation-based early stopping (best validation snapshot is
            restored at the end).

        For checkpointing, run artifacts or custom callbacks, build a
        :class:`repro.train.Trainer` directly instead of calling this shim.
        """
        from ..train import Trainer

        Trainer(self, split=split).fit()
        return self
