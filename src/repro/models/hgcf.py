"""HGCF (Sun et al. 2021): hyperbolic graph convolution for CF.

User/item points live on the Lorentz hyperboloid; graph convolution runs in
the tangent space at the origin (log-map → residual GCN → exp-map, exactly
the pipeline TaxoRec's *global aggregation* reuses in Eqs. 12–15), and the
margin ranking loss acts on squared hyperbolic distances under RSGD.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad
from ..backend import get_backend
from ..data import InteractionDataset
from ..manifolds import Lorentz
from ..optim import RiemannianSGD
from .base import Recommender, TrainConfig
from .graph import BipartiteGraph

__all__ = ["HGCF"]


class HGCF(Recommender):
    """Hyperbolic GCN over the user-item graph."""

    name = "HGCF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        self.graph = BipartiteGraph(train)
        self.manifold = Lorentz()
        d = self.config.dim
        self.user_emb = Parameter(
            self.manifold.random((train.n_users, d + 1), self.rng, scale=0.1), manifold=self.manifold
        )
        self.item_emb = Parameter(
            self.manifold.random((train.n_items, d + 1), self.rng, scale=0.1), manifold=self.manifold
        )

    def make_optimizer(self):
        """Riemannian SGD (the embeddings live on the hyperboloid)."""
        return RiemannianSGD(list(self.parameters()), lr=self.config.lr)

    def _encode(self) -> tuple[Tensor, Tensor]:
        zu = self.manifold.logmap0(self.user_emb)
        zv = self.manifold.logmap0(self.item_emb)
        su, sv = self.graph.residual_gcn(zu, zv, self.config.n_layers)
        return self.manifold.expmap0(su), self.manifold.expmap0(sv)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Margin loss over squared hyperbolic distances after the tangent GCN."""
        hu, hv = self._encode()
        u = hu.take_rows(users)
        vp = hv.take_rows(pos)
        d_pos = self.manifold.sq_dist(u, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = hv.take_rows(neg[:, j])
            term = hinge(self.config.margin + d_pos - self.manifold.sq_dist(u, vq)).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            hu, hv = self._encode()
            u, v = hu.data[users], hv.data
            return -get_backend().sq_dist_lorentz(u, v)

    def frozen_scores(self) -> dict:
        """Negated squared Lorentz distances over the GCN-propagated points."""
        with no_grad():
            hu, hv = self._encode()
            return {
                "score_fn": "neg_sq_lorentz",
                "arrays": {"user": hu.data.copy(), "item": hv.data.copy()},
            }
