"""SML (Li et al. 2020): symmetric metric learning with adaptive margins.

Adds an item-centric hinge (positive item vs. negative item) to the usual
user-centric one, with learnable per-user and per-item margins regularised
toward being large.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad
from ..backend import get_backend
from ..data import InteractionDataset
from .base import Recommender, TrainConfig
from .cml import _clip_to_ball

__all__ = ["SML"]


class SML(Recommender):
    """Symmetric hinge with learnable adaptive margins."""

    name = "SML"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        gamma: float = 0.3,
        margin_reg: float = 0.1,
    ):
        super().__init__(train, config)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))
        self.user_margin = Parameter(np.full((train.n_users, 1), self.config.margin))
        self.item_margin = Parameter(np.full((train.n_items, 1), self.config.margin))
        self.gamma = gamma
        self.margin_reg = margin_reg

    @staticmethod
    def _sq_dist(a: Tensor, b: Tensor) -> Tensor:
        return ((a - b) ** 2).sum(axis=-1)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Symmetric user- and item-centric hinge with learnable margins."""
        u = self.user_emb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        m_u = self.user_margin.take_rows(users)[..., 0].clamp(0.01, 1.0)
        m_v = self.item_margin.take_rows(pos)[..., 0].clamp(0.01, 1.0)
        d_pos = self._sq_dist(u, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            user_term = hinge(m_u + d_pos - self._sq_dist(u, vq)).mean()
            item_term = hinge(m_v + d_pos - self._sq_dist(vp, vq)).mean()
            term = user_term + self.gamma * item_term
            loss = term if loss is None else loss + term
        loss = loss / neg.shape[1]
        # Encourage wide margins (the paper's -λ·mean(margins) regulariser).
        margin_bonus = m_u.mean() + m_v.mean()
        return loss - self.margin_reg * margin_bonus

    def end_epoch(self, epoch: int) -> None:
        _clip_to_ball(self.user_emb.data)
        _clip_to_ball(self.item_emb.data)

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            u = self.user_emb.data[users]
            v = self.item_emb.data
            return -get_backend().sq_dist_euclid_gram(u, v)

    def frozen_scores(self) -> dict:
        """Negated squared Euclidean distances (margins only shape training)."""
        return {
            "score_fn": "neg_sq_euclid",
            "arrays": {"user": self.user_emb.data.copy(), "item": self.item_emb.data.copy()},
        }
