"""Matrix-factorisation baselines: BPRMF and NMF.

* **BPRMF** (Rendle et al. 2009) — pairwise Bayesian personalised ranking
  on top of an inner-product MF scorer.
* **NMF** (Lee & Seung 1999) — classic multiplicative-update non-negative
  factorisation of the binary implicit matrix; no gradient engine needed.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, no_grad
from ..data import InteractionDataset, Split
from ..manifolds.constants import LOG_EPS, MULT_UPDATE_EPS
from .base import Recommender, TrainConfig

__all__ = ["BPRMF", "NMF"]


class BPRMF(Recommender):
    """BPR-optimised matrix factorisation with item biases."""

    name = "BPRMF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))
        self.item_bias = Parameter(np.zeros((train.n_items, 1)))

    def _score(self, users: Tensor, items: Tensor, bias: Tensor) -> Tensor:
        return (users * items).sum(axis=-1) + bias[..., 0]

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Pairwise BPR log-loss over sampled triplets."""
        u = self.user_emb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        bp = self.item_bias.take_rows(pos)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            bq = self.item_bias.take_rows(neg[:, j])
            diff = self._score(u, vp, bp) - self._score(u, vq, bq)
            term = -(diff.sigmoid().clamp(min_value=LOG_EPS).log()).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            u = self.user_emb.data[users]
            return u @ self.item_emb.data.T + self.item_bias.data[:, 0][None, :]

    def frozen_scores(self) -> dict:
        """Biased inner product: user/item factors plus the item bias column."""
        return {
            "score_fn": "dot_bias",
            "arrays": {
                "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy(),
                "item_bias": self.item_bias.data[:, 0].copy(),
            },
        }


class NMF(Recommender):
    """Non-negative MF via multiplicative updates on the binary matrix."""

    name = "NMF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim
        self.W = np.abs(self.rng.normal(0.5, 0.1, size=(train.n_users, d)))
        self.H = np.abs(self.rng.normal(0.5, 0.1, size=(d, train.n_items)))

    def fit(self, split: Split | None = None) -> "NMF":
        """Run Lee–Seung multiplicative updates (Frobenius objective)."""
        X = self.train_data.interaction_matrix()  # sparse CSR
        eps = MULT_UPDATE_EPS
        for epoch in range(self.config.epochs):
            WH_H = (self.W @ self.H) @ self.H.T + eps
            self.W *= (X @ self.H.T) / WH_H
            W_WH = self.W.T @ (self.W @ self.H) + eps
            self.H *= (X.T @ self.W).T / W_WH
            if epoch % 10 == 0:
                self.history.append({"epoch": epoch})
        return self

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        return self.W[users] @ self.H

    def frozen_scores(self) -> dict:
        """Plain inner product of the non-negative factors (H stored item-major)."""
        return {
            "score_fn": "dot",
            "arrays": {"user": self.W.copy(), "item": np.ascontiguousarray(self.H.T)},
        }

    def parameters(self):  # NMF is not autodiff-trained
        return iter(())
