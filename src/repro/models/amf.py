"""AMF (Hou et al. 2019): aspect-aware matrix factorisation.

The rating decomposes into a collaborative inner product plus an
aspect-affinity term; constrained (per the paper's setup, §V-A4) to use
item *tags* as the aspect signal.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, no_grad
from ..data import InteractionDataset
from ..manifolds.constants import LOG_EPS
from .base import Recommender, TrainConfig

__all__ = ["AMF"]


class AMF(Recommender):
    """MF with an additive tag-aspect affinity head, BPR-optimised."""

    name = "AMF"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        aspect_weight: float = 0.5,
    ):
        super().__init__(train, config)
        cfg = self.config
        d = cfg.dim - cfg.tag_dim
        rng = self.rng
        self.user_emb = Parameter(rng.normal(0.0, 0.1 / np.sqrt(d), size=(train.n_users, d)))
        self.item_emb = Parameter(rng.normal(0.0, 0.1 / np.sqrt(d), size=(train.n_items, d)))
        # Aspect tower: users and tags share a small latent space.
        dt = cfg.tag_dim
        self.user_aspect = Parameter(rng.normal(0.0, 0.1 / np.sqrt(dt), size=(train.n_users, dt)))
        self.tag_emb = Parameter(rng.normal(0.0, 0.1 / np.sqrt(dt), size=(train.n_tags, dt)))
        self.aspect_weight = aspect_weight
        tags = train.item_tags
        self._tag_features = tags / np.maximum(tags.sum(axis=1, keepdims=True), 1.0)

    def _scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user_emb.take_rows(users)
        v = self.item_emb.take_rows(items)
        base = (u * v).sum(axis=-1)
        ua = self.user_aspect.take_rows(users)
        va = Tensor(self._tag_features[items]) @ self.tag_emb
        aspect = (ua * va).sum(axis=-1)
        return base + self.aspect_weight * aspect

    def loss_batch(self, users, pos, neg) -> Tensor:
        """BPR loss over the combined collaborative + aspect scores."""
        pos_score = self._scores(users, pos)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            neg_score = self._scores(users, neg[:, j])
            term = -((pos_score - neg_score).sigmoid().clamp(min_value=LOG_EPS).log()).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            base = self.user_emb.data[users] @ self.item_emb.data.T
            item_aspects = self._tag_features @ self.tag_emb.data  # (n_items, dt)
            aspect = self.user_aspect.data[users] @ item_aspects.T
            return base + self.aspect_weight * aspect

    def frozen_scores(self) -> dict:
        """Collaborative factors plus the precomputed per-item aspect tower."""
        return {
            "score_fn": "dot_aspect",
            "arrays": {
                "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy(),
                "user_aspect": self.user_aspect.data.copy(),
                "item_aspect": self._tag_features @ self.tag_emb.data,
                "aspect_weight": np.asarray(self.aspect_weight, dtype=np.float64),
            },
        }
