"""ItemKNN: classic item-based collaborative filtering.

Not one of the paper's 14 baselines, but the standard non-learned
reference every recommender repo ships: cosine item-item similarity over
the binary interaction matrix, scoring each candidate by its similarity to
the user's history.  Strong on dense data, collapses on cold items — a
useful contrast for the cold-start analyses in :mod:`repro.eval.slices`.
"""

from __future__ import annotations

import numpy as np

from ..data import InteractionDataset, Split
from ..manifolds.constants import DIV_EPS
from .base import Recommender, TrainConfig

__all__ = ["ItemKNN"]


class ItemKNN(Recommender):
    """Top-k cosine item-item neighbourhood model."""

    name = "ItemKNN"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        k_neighbors: int = 50,
        shrinkage: float = 10.0,
    ):
        super().__init__(train, config)
        self.k_neighbors = k_neighbors
        self.shrinkage = shrinkage
        self._sim: np.ndarray | None = None
        self._user_matrix = train.interaction_matrix()

    def fit(self, split: Split | None = None) -> "ItemKNN":
        """Precompute the truncated cosine similarity matrix."""
        X = self._user_matrix  # (users, items) CSR
        co = (X.T @ X).toarray().astype(np.float64)  # co-occurrence counts
        counts = np.diag(co).copy()
        np.fill_diagonal(co, 0.0)
        denom = np.sqrt(np.outer(counts, counts)) + self.shrinkage
        sim = co / np.maximum(denom, DIV_EPS)
        # Keep exactly each item's top-k neighbours (sparsify for robustness;
        # ties beyond the k-th are dropped deterministically).
        if self.k_neighbors < sim.shape[0]:
            keep = np.argpartition(-sim, self.k_neighbors, axis=1)[:, : self.k_neighbors]
            mask = np.zeros_like(sim, dtype=bool)
            np.put_along_axis(mask, keep, True, axis=1)
            sim = np.where(mask, sim, 0.0)
        self._sim = sim
        return self

    def score_users(self, users) -> np.ndarray:
        """History × similarity scores against the full catalogue."""
        if self._sim is None:
            self.fit()
        history = self._user_matrix[users].toarray()  # (b, items)
        return history @ self._sim

    def parameters(self):
        return iter(())
