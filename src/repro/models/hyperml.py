"""HyperML (Vinh Tran et al. 2020): metric learning in hyperbolic space.

The hyperbolic counterpart of CML: user/item points live on the Lorentz
hyperboloid (chosen over the Poincaré ball for optimisation stability, as
in the paper's §III-B discussion) and the LMNN hinge acts on squared
geodesic distances, optimised with Riemannian SGD.

This model doubles as the paper's **Hyper + CML** ablation row.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad
from ..backend import get_backend
from ..data import InteractionDataset
from ..manifolds import Lorentz
from ..optim import RiemannianSGD
from .base import Recommender, TrainConfig

__all__ = ["HyperML"]


class HyperML(Recommender):
    """Lorentz-model hyperbolic metric learning."""

    name = "HyperML"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim
        self.manifold = Lorentz()
        self.user_emb = Parameter(
            self.manifold.random((train.n_users, d + 1), self.rng, scale=0.1), manifold=self.manifold
        )
        self.item_emb = Parameter(
            self.manifold.random((train.n_items, d + 1), self.rng, scale=0.1), manifold=self.manifold
        )

    def make_optimizer(self):
        """Riemannian SGD (the embeddings live on the hyperboloid)."""
        return RiemannianSGD(list(self.parameters()), lr=self.config.lr)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """LMNN hinge over squared hyperbolic distances."""
        u = self.user_emb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        d_pos = self.manifold.sq_dist(u, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            term = hinge(self.config.margin + d_pos - self.manifold.sq_dist(u, vq)).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            u = self.user_emb.data[users]  # (b, d+1)
            v = self.item_emb.data  # (n, d+1)
            return -get_backend().sq_dist_lorentz(u, v)

    def frozen_scores(self) -> dict:
        """Negated squared Lorentz distances between the raw hyperboloid points."""
        return {
            "score_fn": "neg_sq_lorentz",
            "arrays": {"user": self.user_emb.data.copy(), "item": self.item_emb.data.copy()},
        }
