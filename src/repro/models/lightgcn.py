"""LightGCN (He et al. 2020): linear propagation, BPR loss."""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, no_grad
from ..data import InteractionDataset
from ..manifolds.constants import LOG_EPS
from .base import Recommender, TrainConfig
from .graph import BipartiteGraph

__all__ = ["LightGCN"]


class LightGCN(Recommender):
    """Embedding propagation without transforms or nonlinearities."""

    name = "LightGCN"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        self.graph = BipartiteGraph(train)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))

    def _encode(self) -> tuple[Tensor, Tensor]:
        return self.graph.lightgcn(self.user_emb, self.item_emb, self.config.n_layers)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """BPR loss over propagated inner products."""
        zu, zv = self._encode()
        u = zu.take_rows(users)
        vp = zv.take_rows(pos)
        pos_score = (u * vp).sum(axis=-1)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = zv.take_rows(neg[:, j])
            neg_score = (u * vq).sum(axis=-1)
            term = -((pos_score - neg_score).sigmoid().clamp(min_value=LOG_EPS).log()).mean()
            loss = term if loss is None else loss + term
        return loss / neg.shape[1]

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            zu, zv = self._encode()
            return zu.data[users] @ zv.data.T

    def frozen_scores(self) -> dict:
        """Inner product over *propagated* embeddings (GCN layers baked in)."""
        with no_grad():
            zu, zv = self._encode()
            return {
                "score_fn": "dot",
                "arrays": {"user": zu.data.copy(), "item": zv.data.copy()},
            }
