"""NeuMF (He et al. 2017): GMF ⊕ MLP neural collaborative filtering."""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, concat, no_grad
from ..data import InteractionDataset
from .base import Recommender, TrainConfig

__all__ = ["NeuMF"]


class NeuMF(Recommender):
    """Fusion of generalised MF and a two-layer MLP over concatenated embeddings."""

    name = "NeuMF"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim // 2  # half the budget each for GMF and MLP towers
        scale = 0.1 / np.sqrt(d)
        rng = self.rng
        self.gmf_user = Parameter(rng.normal(0.0, scale, size=(train.n_users, d)))
        self.gmf_item = Parameter(rng.normal(0.0, scale, size=(train.n_items, d)))
        self.mlp_user = Parameter(rng.normal(0.0, scale, size=(train.n_users, d)))
        self.mlp_item = Parameter(rng.normal(0.0, scale, size=(train.n_items, d)))
        hidden = d
        self.W1 = Parameter(rng.normal(0.0, np.sqrt(2.0 / (2 * d)), size=(2 * d, hidden)))
        self.b1 = Parameter(np.zeros(hidden))
        self.W2 = Parameter(rng.normal(0.0, np.sqrt(2.0 / hidden), size=(hidden, hidden // 2)))
        self.b2 = Parameter(np.zeros(hidden // 2))
        self.out = Parameter(rng.normal(0.0, 0.1, size=(d + hidden // 2, 1)))

    def _logits(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gu = self.gmf_user.take_rows(users)
        gi = self.gmf_item.take_rows(items)
        gmf = gu * gi
        mu = self.mlp_user.take_rows(users)
        mi = self.mlp_item.take_rows(items)
        h = concat([mu, mi], axis=-1)
        h = (h @ self.W1 + self.b1).relu()
        h = (h @ self.W2 + self.b2).relu()
        fused = concat([gmf, h], axis=-1)
        return (fused @ self.out)[..., 0]

    def loss_batch(self, users, pos, neg) -> Tensor:
        """Binary cross-entropy over positives and sampled negatives."""
        from ..autodiff import binary_cross_entropy_with_logits

        pos_logits = self._logits(users, pos)
        loss = binary_cross_entropy_with_logits(pos_logits, np.ones(len(users)))
        for j in range(neg.shape[1]):
            neg_logits = self._logits(users, neg[:, j])
            loss = loss + binary_cross_entropy_with_logits(neg_logits, np.zeros(len(users)))
        return loss / (1 + neg.shape[1])

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            n_items = self.train_data.n_items
            out = np.zeros((len(users), n_items))
            all_items = np.arange(n_items)
            for i, u in enumerate(users):
                out[i] = self._logits(np.full(n_items, u), all_items).data
            return out
