"""Collaborative Metric Learning (Hsieh et al. 2017) and its tag variant CMLF.

CML learns user/item points in a Euclidean ball of radius 1 and minimises
the LMNN-style hinge over squared distances.  CMLF adds CML's feature-loss
extension: a learned map from the item's tag vector into the metric space
pulls items toward their tag-implied position (the paper's tag-based CML
baseline, constrained to item tags only).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, hinge, no_grad
from ..backend import get_backend
from ..data import InteractionDataset
from ..manifolds.constants import DIV_EPS
from .base import Recommender, TrainConfig

__all__ = ["CML", "CMLF"]


def _clip_to_ball(data: np.ndarray, radius: float = 1.0) -> None:
    """Project rows into the L2 ball of the given radius, in place."""
    norms = np.linalg.norm(data, axis=-1, keepdims=True)
    scale = np.minimum(1.0, radius / np.maximum(norms, DIV_EPS))
    data *= scale


class CML(Recommender):
    """Euclidean metric learning with the hinge triplet loss."""

    name = "CML"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        d = self.config.dim
        scale = 0.1 / np.sqrt(d)
        self.user_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_users, d)))
        self.item_emb = Parameter(self.rng.normal(0.0, scale, size=(train.n_items, d)))

    def _sq_dist(self, a: Tensor, b: Tensor) -> Tensor:
        return ((a - b) ** 2).sum(axis=-1)

    def loss_batch(self, users, pos, neg) -> Tensor:
        """LMNN hinge over squared Euclidean distances (+ feature loss in CMLF)."""
        u = self.user_emb.take_rows(users)
        vp = self.item_emb.take_rows(pos)
        d_pos = self._sq_dist(u, vp)
        loss: Tensor | None = None
        for j in range(neg.shape[1]):
            vq = self.item_emb.take_rows(neg[:, j])
            term = hinge(self.config.margin + d_pos - self._sq_dist(u, vq)).mean()
            loss = term if loss is None else loss + term
        loss = loss / neg.shape[1]
        return loss + self._extra_loss(pos)

    def _extra_loss(self, pos: np.ndarray) -> Tensor:
        return Tensor(0.0)

    def end_epoch(self, epoch: int) -> None:
        # CML constrains all points within the unit ball after each epoch.
        _clip_to_ball(self.user_emb.data)
        _clip_to_ball(self.item_emb.data)

    def score_users(self, users) -> np.ndarray:
        """``(len(users), n_items)`` scores against the full catalogue; higher is better."""
        with no_grad():
            u = self.user_emb.data[users]  # (b, d)
            v = self.item_emb.data  # (n, d)
            # ||u - v||² expanded to matmuls (avoids a (b, n, d) temporary);
            # the same backend kernel serves the frozen neg_sq_euclid path.
            return -get_backend().sq_dist_euclid_gram(u, v)

    def frozen_scores(self) -> dict:
        """Negated squared Euclidean distances in the metric space."""
        return {
            "score_fn": "neg_sq_euclid",
            "arrays": {"user": self.user_emb.data.copy(), "item": self.item_emb.data.copy()},
        }


class CMLF(CML):
    """CML + tag-feature loss: f(tags(v)) should land near v in the metric space."""

    name = "CMLF"

    def __init__(
        self,
        train: InteractionDataset,
        config: TrainConfig | None = None,
        feature_weight: float = 0.05,
    ):
        super().__init__(train, config)
        d = self.config.dim
        self.feature_weight = feature_weight
        self.tag_proj = Parameter(
            self.rng.normal(0.0, np.sqrt(2.0 / train.n_tags), size=(train.n_tags, d))
        )
        # Row-normalised tag indicator features per item.
        tags = train.item_tags
        row_sums = np.maximum(tags.sum(axis=1, keepdims=True), 1.0)
        self._tag_features = tags / row_sums

    def _extra_loss(self, pos: np.ndarray) -> Tensor:
        feats = Tensor(self._tag_features[pos])
        predicted = feats @ self.tag_proj
        target = self.item_emb.take_rows(pos)
        return self.feature_weight * ((predicted - target) ** 2).sum(axis=-1).mean()
