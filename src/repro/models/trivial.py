"""Trivial reference models: popularity and random rankers.

Not part of the paper's comparison, but indispensable floors: every real
model must clearly beat Random, and beating Popularity is the first sign a
model has learned personalisation.
"""

from __future__ import annotations

import numpy as np

from ..data import InteractionDataset, Split
from ..utils import ensure_rng
from .base import Recommender, TrainConfig

__all__ = ["Popularity", "Random"]


class Popularity(Recommender):
    """Rank items by training interaction count (identical for all users)."""

    name = "Popularity"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)
        self._counts = np.bincount(train.item_ids, minlength=train.n_items).astype(
            np.float64
        )

    def fit(self, split: Split | None = None) -> "Popularity":
        """Nothing to train."""
        return self

    def score_users(self, users) -> np.ndarray:
        return np.tile(self._counts, (len(users), 1))

    def parameters(self):
        return iter(())


class Random(Recommender):
    """Uniformly random scores (a fresh draw per call, seeded at init)."""

    name = "Random"

    def __init__(self, train: InteractionDataset, config: TrainConfig | None = None):
        super().__init__(train, config)

    def fit(self, split: Split | None = None) -> "Random":
        """Nothing to train."""
        return self

    def score_users(self, users) -> np.ndarray:
        return self.rng.random((len(users), self.train_data.n_items))

    def frozen_scores(self) -> dict:
        """Seed-deterministic dense snapshot (idempotent exports).

        A live ``Random`` draws fresh scores per call, so a frozen export
        instead replays the *first* draw of a fresh generator with the
        model's seed: exactly what a newly constructed ``Random`` returns
        for one all-users ``score_users`` call.  Exports are therefore
        reproducible and independent of how often the live model was
        queried before exporting.
        """
        rng = ensure_rng(self.config.seed)
        scores = rng.random((self.train_data.n_users, self.train_data.n_items))
        return {"score_fn": "dense", "arrays": {"scores": scores}}

    def parameters(self):
        return iter(())
