"""The ``numpy`` reference backend: pre-refactor kernels, extracted verbatim.

Every method body here is the exact expression that used to live at the
call site (``repro.manifolds.lorentz/poincare/klein/maps``,
``repro.serve.scoring``, ``repro.eval.metrics``) before the backend seam
was introduced — same operations in the same order, so selecting this
backend reproduces historical eval/serve/golden outputs bit-for-bit.
That property is what the differential suites pin every other backend
against.

Do not "improve" these kernels: speed work belongs in a new backend (see
``docs/BACKENDS.md``), and any numeric change here silently redefines
the reference the whole stack is tested against.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .constants import BOUNDARY_EPS, EPS, MAX_TANH_ARG, MIN_NORM

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Verbatim NumPy kernels; the semantic reference for every backend."""

    name = "numpy"
    tolerance = 0.0

    # -- allocation ----------------------------------------------------
    def asarray(self, x, dtype=np.float64) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    # -- products and reductions --------------------------------------
    def matmul(self, a, b) -> np.ndarray:
        return np.matmul(a, b)

    def outer(self, a, b) -> np.ndarray:
        return np.outer(a, b)

    def norm(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.linalg.norm(x, axis=axis, keepdims=keepdims)

    # -- elementwise primitives (bit-identical by construction) -------
    exp = staticmethod(np.exp)
    log = staticmethod(np.log)
    log1p = staticmethod(np.log1p)
    expm1 = staticmethod(np.expm1)
    sqrt = staticmethod(np.sqrt)
    tanh = staticmethod(np.tanh)
    sinh = staticmethod(np.sinh)
    cosh = staticmethod(np.cosh)
    arcsinh = staticmethod(np.arcsinh)
    arccosh = staticmethod(np.arccosh)
    arctanh = staticmethod(np.arctanh)

    # -- fused distance chains ----------------------------------------
    def sq_dist_euclid_gram(self, u, v) -> np.ndarray:
        """Pairwise ||u - v||² expanded to matmuls (mirrors CML.score_users)."""
        return (u * u).sum(1)[:, None] + (v * v).sum(1)[None, :] - 2.0 * (u @ v.T)

    def sq_dist_euclid_broadcast(self, u, v) -> np.ndarray:
        """Broadcast twin used by TaxoRec's Euclidean ablation (same op order)."""
        return ((u[:, None, :] - v[None, :, :]) ** 2).sum(axis=-1)

    def sq_dist_lorentz(self, u, v) -> np.ndarray:
        """Pairwise squared geodesic distances between Lorentz row sets."""
        spatial = u[:, 1:] @ v[:, 1:].T
        time = np.outer(u[:, 0], v[:, 0])
        d = np.arccosh(np.maximum(time - spatial, 1.0))
        return d * d

    # -- Lorentz model kernels ----------------------------------------
    def lorentz_inner(self, x, y, keepdims: bool = False) -> np.ndarray:
        prod = x * y
        time = -prod[..., :1]
        space = prod[..., 1:].sum(axis=-1, keepdims=True)
        out = time + space
        return out if keepdims else out[..., 0]

    def lorentz_dist(self, x, y) -> np.ndarray:
        return np.arccosh(np.maximum(-self.lorentz_inner(x, y), 1.0))

    def lorentz_proj(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).copy()
        spatial = x[..., 1:]
        x[..., 0] = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1))
        return x

    def lorentz_expmap(self, x, v) -> np.ndarray:
        sq = self.lorentz_inner(v, v, keepdims=True)
        norm = np.sqrt(np.maximum(sq, MIN_NORM))
        norm = np.minimum(norm, MAX_TANH_ARG)  # avoid cosh overflow on huge steps
        out = np.cosh(norm) * x + np.sinh(norm) * v / np.maximum(norm, MIN_NORM)
        return self.lorentz_proj(out)

    def lorentz_expmap0(self, z) -> np.ndarray:
        norm = np.sqrt(np.sum(z * z, axis=-1, keepdims=True) + MIN_NORM)
        clipped = np.minimum(norm, MAX_TANH_ARG)
        time = np.cosh(clipped)
        spatial = np.sinh(clipped) * z / norm
        return np.concatenate([time, spatial], axis=-1)

    def lorentz_logmap0(self, x) -> np.ndarray:
        spatial = x[..., 1:]
        sp_norm = np.maximum(np.linalg.norm(spatial, axis=-1, keepdims=True), MIN_NORM)
        return np.arcsinh(sp_norm) * spatial / sp_norm

    # -- Poincaré model kernels ---------------------------------------
    def poincare_proj(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        norm = np.linalg.norm(x, axis=-1, keepdims=True)
        max_norm = 1.0 - BOUNDARY_EPS
        scale = np.where(norm > max_norm, max_norm / np.maximum(norm, MIN_NORM), 1.0)
        return x * scale

    def mobius_add(self, x, y) -> np.ndarray:
        xy = np.sum(x * y, axis=-1, keepdims=True)
        x2 = np.sum(x * x, axis=-1, keepdims=True)
        y2 = np.sum(y * y, axis=-1, keepdims=True)
        num = (1.0 + 2.0 * xy + y2) * x + (1.0 - x2) * y
        den = 1.0 + 2.0 * xy + x2 * y2
        return num / np.maximum(den, MIN_NORM)

    def poincare_expmap(self, x, v) -> np.ndarray:
        norm = np.linalg.norm(v, axis=-1, keepdims=True)
        norm = np.maximum(norm, MIN_NORM)
        y = np.tanh(norm / 2.0) * v / norm
        return self.poincare_proj(self.mobius_add(x, y))

    def poincare_dist(self, x, y) -> np.ndarray:
        diff_sq = np.sum((x - y) ** 2, axis=-1)
        x_sq = np.sum(x * x, axis=-1)
        y_sq = np.sum(y * y, axis=-1)
        denom = np.maximum(1.0 - x_sq, BOUNDARY_EPS) * np.maximum(1.0 - y_sq, BOUNDARY_EPS)
        arg = 1.0 + 2.0 * diff_sq / denom
        return np.arccosh(np.maximum(arg, 1.0))

    def poincare_dist_matrix(self, x, y) -> np.ndarray:
        xy = x @ y.T
        x_sq = np.sum(x * x, axis=-1)
        y_sq = np.sum(y * y, axis=-1)
        diff_sq = np.maximum(x_sq[:, None] - 2.0 * xy + y_sq[None, :], 0.0)
        denom = (
            np.maximum(1.0 - x_sq, BOUNDARY_EPS)[:, None]
            * np.maximum(1.0 - y_sq, BOUNDARY_EPS)[None, :]
        )
        arg = 1.0 + 2.0 * diff_sq / denom
        return np.arccosh(np.maximum(arg, 1.0))

    def poincare_expmap0(self, v) -> np.ndarray:
        norm = np.linalg.norm(v, axis=-1, keepdims=True)
        norm = np.maximum(norm, MIN_NORM)
        return self.poincare_proj(np.tanh(norm) * v / norm)

    def poincare_logmap0(self, x) -> np.ndarray:
        norm = np.linalg.norm(x, axis=-1, keepdims=True)
        norm = np.clip(norm, MIN_NORM, 1.0 - BOUNDARY_EPS)
        return np.arctanh(norm) * x / norm

    # -- Klein model kernels ------------------------------------------
    def einstein_midpoint(self, points, weights) -> np.ndarray:
        sq = np.sum(points * points, axis=-1)
        gamma = 1.0 / np.sqrt(np.maximum(1.0 - sq, EPS))
        w = gamma * weights
        denom = max(w.sum(), EPS)
        return (points * w[:, None]).sum(axis=0) / denom

    # -- model-to-model maps ------------------------------------------
    def lorentz_to_poincare(self, x) -> np.ndarray:
        return x[..., 1:] / (x[..., :1] + 1.0)

    def poincare_to_lorentz(self, x) -> np.ndarray:
        sq = np.sum(x * x, axis=-1, keepdims=True)
        denom = np.maximum(1.0 - sq, EPS)
        time = (1.0 + sq) / denom
        spatial = 2.0 * x / denom
        return np.concatenate([time, spatial], axis=-1)

    def poincare_to_klein(self, x) -> np.ndarray:
        sq = np.sum(x * x, axis=-1, keepdims=True)
        return 2.0 * x / (1.0 + sq)

    def klein_to_poincare(self, x) -> np.ndarray:
        sq = np.sum(x * x, axis=-1, keepdims=True)
        root = np.sqrt(np.maximum(1.0 - sq, 0.0))
        return x / (1.0 + root)

    # -- ranking -------------------------------------------------------
    def rank_topk(self, scores, k: int) -> np.ndarray:
        """Deterministic top-``k`` selection (``(-score, id)`` ordering).

        Extracted verbatim from ``repro.eval.metrics.rank_topk`` (PR 2);
        see that function's docstring for the tie-handling contract.
        """
        scores = np.asarray(scores)
        n_rows, n = scores.shape
        k = min(k, n)
        if n_rows == 0 or k == 0:
            return np.zeros((n_rows, k), dtype=np.int64)
        if 4 * k >= n:
            # Stable argsort of -scores: equal scores keep ascending-id order.
            return np.argsort(-scores, axis=1, kind="stable")[:, :k].astype(np.int64)
        # Threshold = k-th largest score per row.
        kth = -np.partition(-scores, k - 1, axis=1)[:, k - 1 : k]
        greater = scores > kth
        tied = scores == kth
        # Among threshold ties keep the lowest item ids (cumsum runs id-ascending).
        need = k - greater.sum(axis=1, keepdims=True)
        tie_rank = np.cumsum(tied, axis=1)
        select = greater | (tied & (tie_rank <= need))
        # np.nonzero is row-major, so each row's columns come out id-ascending;
        # the stable sort below then only reorders by score, preserving the
        # ascending-id tiebreak.
        cols = np.nonzero(select)[1].reshape(n_rows, k).astype(np.int64)
        row = np.arange(n_rows)[:, None]
        order = np.argsort(-scores[row, cols], axis=1, kind="stable")
        return cols[row, order]
