"""Central numerical guard constants for the whole numeric stack.

Every epsilon that keeps an operation away from a domain boundary lives
here, once, with its rationale.  Before this module the same guards were
duplicated with drifting values across ``poincare.py`` (1e-5/1e-15),
``klein.py`` (1e-7), ``maps.py`` (1e-7) and ``lorentz.py`` (1e-15) — the
kind of silent inconsistency HyperML and Mirvakhabova et al. identify as
the dominant source of NaN divergence in hyperbolic recommenders.

This file sits at the *bottom* of the import layering: ``repro.backend``
kernels, ``repro.autodiff`` and ``repro.manifolds`` all read their guards
from here (``repro.manifolds.constants`` re-exports every name for
backwards compatibility).  The ``magic-epsilon`` rule of
``repro.analysis`` enforces that no other module re-introduces literal
guards: any float literal with magnitude ``<= 1e-5`` outside this file is
a lint violation.

All values are float64 (the whole stack computes in float64; float32
loses every digit of precision near the Poincaré boundary).
"""

from __future__ import annotations

__all__ = [
    "EPS",
    "MIN_NORM",
    "BOUNDARY_EPS",
    "MAX_TANH_ARG",
    "LOG_EPS",
    "DIV_EPS",
    "MULT_UPDATE_EPS",
    "RETRIEVAL_BOUND_SLACK",
]

# Generic conformal-factor guard: floors 1 - ||x||^2 before sqrt/division in
# the Klein model's Lorentz factor (Eq. 1) and the Poincaré→Lorentz map
# (Eq. 3).  1e-7 keeps gamma below ~3e3, well inside float64 range.
EPS = 1e-7

# Floor for vector norms before division.  sqrt(MIN_NORM) ~ 3e-8, so
# ``v / sqrt(||v||^2 + MIN_NORM)`` is exactly zero only for v = 0.
MIN_NORM = 1e-15

# Thickness of the shell kept free inside the unit ball (Eqs. 21–22):
# points are projected back to radius 1 - BOUNDARY_EPS, where the Poincaré
# distance is still representable and gradients stay finite.
BOUNDARY_EPS = 1e-5

# Clip for arguments of sinh/cosh/tanh: cosh(15) ~ 1.6e6 is far from
# float64 overflow but already past any useful geodesic step length.
MAX_TANH_ARG = 15.0

# Floor for probabilities before log in the BPR-style losses:
# -log(sigmoid(x)) saturates at ~23 instead of overflowing.
LOG_EPS = 1e-10

# Generic denominator floor for similarity/score normalisations
# (cosine shrinkage, BM25, Einstein-midpoint weight sums).
DIV_EPS = 1e-12

# Denominator guard for NMF's Lee–Seung multiplicative updates; larger than
# DIV_EPS on purpose — the update ratio is taken verbatim, so an extreme
# floor would amplify noise in empty rows instead of damping it.
MULT_UPDATE_EPS = 1e-9

# Relative slack on the Cauchy–Schwarz per-bucket score upper bound used by
# the norm-bucketed retrieval index (repro.retrieval.indexes.BucketedIndex):
# bound = ||q||·max||x|| · (1 + SLACK) + max bias.  A float64 dot product of
# dimension d carries at most ~d·2^-52 relative rounding error, so 1e-9
# keeps the bound provably above every computed q·x + b for any realistic
# embedding width while loosening pruning by less than one part per billion.
RETRIEVAL_BOUND_SLACK = 1e-9

# Ridge regulariser for the streaming fold-in least-squares solves
# (repro.stream.foldin): large enough to keep the normal equations
# well-conditioned when a user has fewer evidence items than embedding
# dimensions, small enough (≪ 1) not to shrink the solution visibly when
# evidence is plentiful.
FOLDIN_RIDGE = 1e-6
