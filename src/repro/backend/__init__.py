"""Pluggable compute backends for every numeric kernel in the repo.

One process has one *active* backend, resolved in priority order:

1. :func:`set_backend` (the ``--backend`` CLI flags call this);
2. the ``REPRO_BACKEND`` environment variable, read once on the first
   :func:`get_backend` call (forked workers re-read it explicitly at
   startup — see ``repro.serve.pool``);
3. the default, ``"numpy"`` — the verbatim pre-refactor kernels.

Call sites do ``xp = get_backend()`` per kernel invocation; the lookup is
a cached global read.  :func:`use_backend` scopes a temporary switch for
tests and the paired backend benchmarks.

>>> from repro.backend import get_backend, use_backend
>>> get_backend().name
'numpy'
>>> with use_backend("fused") as xp:
...     d2 = xp.sq_dist_lorentz(u, v)

Backends registered here: ``numpy`` (reference, bit-exact with history)
and ``fused`` (single-pass blocked kernels, ``REPRO_BACKEND_THREADS``
knob, ≤1e-10 from the reference).  ``docs/BACKENDS.md`` documents the
interface contract and how to add another.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .base import KernelBackend
from .fused import FusedBackend
from .numpy_ref import NumpyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "FusedBackend",
    "UnknownBackendError",
    "activate_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_BACKEND"

_REGISTRY: dict[str, type[KernelBackend]] = {
    "numpy": NumpyBackend,
    "fused": FusedBackend,
}

_instances: dict[str, KernelBackend] = {}
_active: KernelBackend | None = None


class UnknownBackendError(ValueError):
    """Raised for a backend id that is not registered in this build.

    Carries the requested id and the valid ids so CLI/env error paths can
    print an actionable message instead of a bare KeyError.
    """

    def __init__(self, name: str):
        self.name = name
        self.known = available_backends()
        super().__init__(
            f"unknown backend {name!r} (from {ENV_VAR} or --backend); "
            f"this build knows {list(self.known)}"
        )


def available_backends() -> tuple[str, ...]:
    """Registered backend ids, in registration order."""
    return tuple(_REGISTRY)


def _resolve(name: str) -> KernelBackend:
    if name not in _REGISTRY:
        raise UnknownBackendError(name)
    if name not in _instances:
        _instances[name] = _REGISTRY[name]()
    return _instances[name]


def get_backend() -> KernelBackend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(ENV_VAR, "numpy"))
    return _active


def set_backend(name: str) -> KernelBackend:
    """Activate a backend by id for the rest of the process."""
    global _active
    _active = _resolve(name)
    return _active


def activate_backend(name: str) -> KernelBackend:
    """:func:`set_backend` + export ``REPRO_BACKEND``.

    The CLI ``--backend`` flags call this instead of :func:`set_backend`
    so that forked or spawned children (experiment job workers, serve
    pool shards, smoke-test subprocesses) resolve the same backend from
    the environment.
    """
    backend = set_backend(name)
    os.environ[ENV_VAR] = name
    return backend


@contextmanager
def use_backend(name: str):
    """Temporarily activate a backend (yields it); restores on exit."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous
