"""The kernel-backend interface: one narrow seam under every numeric layer.

A :class:`KernelBackend` is the only thing the numeric layers of the repo
are allowed to call for transcendental math, matrix products and the
fused distance/map chains: ``repro.autodiff`` routes its elementwise and
matmul primitives here, ``repro.manifolds`` routes the Lorentz / Poincaré
/ Klein kernels, ``repro.serve.scoring`` routes the frozen score
functions, and ``repro.eval`` routes top-K selection.  Swapping the
active backend (``REPRO_BACKEND``, ``--backend`` or
:func:`repro.backend.set_backend`) swaps the implementation under *all*
of them at once — which is exactly what keeps live models and frozen
scorers bit-identical to each other under any backend: both sides call
the same kernel object.

Contract
--------
* Every method is a **pure function of its array arguments**: no visible
  state, float64 in / float64 out, and the returned array is always
  freshly allocated (never a view of an internal scratch buffer).
* The ``numpy`` backend is the semantic reference: its kernels are the
  pre-refactor expressions extracted verbatim, so selecting it reproduces
  historical results bit-for-bit.
* Any other backend must agree with the ``numpy`` backend within its
  declared :attr:`KernelBackend.tolerance` (absolute, elementwise) on
  every kernel, for inputs in the documented operating ranges.  The
  differential suites (``tests/test_backend_differential.py`` and the
  1e-10 suites listed in ``docs/BACKENDS.md``) enforce this.
* **Primitives** (``exp`` … ``arctanh``, ``matmul``, ``outer``,
  ``norm``) must be bit-identical across backends — autodiff gradients
  flow through them, and training trajectories diverge fast from a
  one-ulp kernel difference.  Only the **chains** may trade bits for
  speed, inside the tolerance.

See ``docs/BACKENDS.md`` for the full contract, the tolerance policy and
a walkthrough of adding a backend.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel set; concrete backends implement every method.

    Attributes
    ----------
    name:
        Registry id (``"numpy"``, ``"fused"``); recorded in
        ``repro.run/v1`` / ``repro.model/v1`` / ``repro.bench/v1``
        environment blocks so results are attributable to a backend.
    tolerance:
        Maximum absolute elementwise deviation from the ``numpy``
        reference backend on any kernel (0.0 for the reference itself).
    """

    name: str = "abstract"
    tolerance: float = 0.0

    # -- allocation ----------------------------------------------------
    def asarray(self, x, dtype=np.float64) -> np.ndarray:
        """Coerce to a backend array (float64 ndarray)."""
        raise NotImplementedError

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        """A zero-filled array."""
        raise NotImplementedError

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialised array (scratch/output allocation)."""
        raise NotImplementedError

    # -- products and reductions --------------------------------------
    def matmul(self, a, b) -> np.ndarray:
        """Matrix product with ``numpy.matmul`` semantics (1-d cases included)."""
        raise NotImplementedError

    def outer(self, a, b) -> np.ndarray:
        """Outer product of two 1-d vectors."""
        raise NotImplementedError

    def norm(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        """Euclidean (2-) norm along ``axis``."""
        raise NotImplementedError

    # -- elementwise primitives (bit-identical across backends) -------
    # exp, log, log1p, expm1, sqrt, tanh, sinh, cosh, arcsinh, arccosh,
    # arctanh: declared by assignment in concrete backends; listed here
    # for the interface contract.

    # -- fused distance chains ----------------------------------------
    def sq_dist_euclid_gram(self, u, v) -> np.ndarray:
        """Pairwise ``||u - v||^2`` for ``(b, d)`` × ``(n, d)`` row sets.

        Gram-matrix expansion (``||u||^2 - 2<u, v> + ||v||^2``); the
        kernel behind the ``neg_sq_euclid`` score family (CML/CMLF/SML).
        """
        raise NotImplementedError

    def sq_dist_euclid_broadcast(self, u, v) -> np.ndarray:
        """Pairwise ``||u - v||^2`` in the broadcast op-order.

        TaxoRec's Euclidean ablation freezes this exact op-order; kept
        separate from the gram form because the two differ by a few ulp
        for near-coincident rows.
        """
        raise NotImplementedError

    def sq_dist_lorentz(self, u, v) -> np.ndarray:
        """Pairwise squared geodesic distances between Lorentz row sets.

        The clamp→arccosh→square chain: ``arccosh(max(-<u, v>_L, 1))²``
        for ``(b, d+1)`` × ``(n, d+1)`` hyperboloid points.
        """
        raise NotImplementedError

    # -- Lorentz model kernels ----------------------------------------
    def lorentz_inner(self, x, y, keepdims: bool = False) -> np.ndarray:
        """Lorentzian scalar product ``<x, y>_L`` along the last axis."""
        raise NotImplementedError

    def lorentz_dist(self, x, y) -> np.ndarray:
        """Broadcasting geodesic distance ``arccosh(max(-<x, y>_L, 1))``."""
        raise NotImplementedError

    def lorentz_proj(self, x) -> np.ndarray:
        """Re-normalise the time coordinate onto the hyperboloid."""
        raise NotImplementedError

    def lorentz_expmap(self, x, v) -> np.ndarray:
        """``exp_x(v)`` via the cosh/sinh chain, re-projected."""
        raise NotImplementedError

    def lorentz_expmap0(self, z) -> np.ndarray:
        """``exp_o(z)`` for spatial tangent vectors (guarded norm chain)."""
        raise NotImplementedError

    def lorentz_logmap0(self, x) -> np.ndarray:
        """``log_o(x)`` in the cancellation-safe arsinh form."""
        raise NotImplementedError

    # -- Poincaré model kernels ---------------------------------------
    def poincare_proj(self, x) -> np.ndarray:
        """Pull points outside radius ``1 - BOUNDARY_EPS`` back onto it."""
        raise NotImplementedError

    def mobius_add(self, x, y) -> np.ndarray:
        """Möbius addition ``x ⊕ y`` on the ball."""
        raise NotImplementedError

    def poincare_expmap(self, x, v) -> np.ndarray:
        """Möbius exponential map ``x ⊕ (tanh(||v||/2) v/||v||)``."""
        raise NotImplementedError

    def poincare_dist(self, x, y) -> np.ndarray:
        """Poincaré distance along the last axis (clamped arccosh chain)."""
        raise NotImplementedError

    def poincare_dist_matrix(self, x, y) -> np.ndarray:
        """Pairwise Poincaré distances via the gram expansion."""
        raise NotImplementedError

    def poincare_expmap0(self, v) -> np.ndarray:
        """``exp_0(v) = tanh(||v||) v / ||v||``, projected into the ball."""
        raise NotImplementedError

    def poincare_logmap0(self, x) -> np.ndarray:
        """``log_0(x) = artanh(||x||) x / ||x||`` with clipped norm."""
        raise NotImplementedError

    # -- Klein model kernels ------------------------------------------
    def einstein_midpoint(self, points, weights) -> np.ndarray:
        """Weighted Einstein midpoint of ``(n, d)`` Klein points."""
        raise NotImplementedError

    # -- model-to-model maps ------------------------------------------
    def lorentz_to_poincare(self, x) -> np.ndarray:
        """``p(x) = x_{1:} / (x_0 + 1)`` (Eq. 2)."""
        raise NotImplementedError

    def poincare_to_lorentz(self, x) -> np.ndarray:
        """``p⁻¹(x) = (1 + ||x||², 2x) / (1 - ||x||²)`` (Eq. 3)."""
        raise NotImplementedError

    def poincare_to_klein(self, x) -> np.ndarray:
        """``k = 2x / (1 + ||x||²)`` (Eq. 9)."""
        raise NotImplementedError

    def klein_to_poincare(self, x) -> np.ndarray:
        """``p = x / (1 + sqrt(1 - ||x||²))`` (inverse of Eq. 9)."""
        raise NotImplementedError

    # -- ranking -------------------------------------------------------
    def rank_topk(self, scores, k: int) -> np.ndarray:
        """Top-``k`` item ids per row, ties broken by ascending id.

        Must implement the deterministic ``(-score, id)`` ordering
        contract of ``repro.eval.metrics.rank_topk`` exactly — ranking is
        a discrete output, so *no* tolerance applies to this kernel.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} tolerance={self.tolerance!r}>"
