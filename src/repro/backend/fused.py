"""The ``fused`` backend: single-pass, blocked, optionally threaded kernels.

Same kernel set as :class:`~repro.backend.numpy_ref.NumpyBackend`, with
the hot chains collapsed so each element of the output is touched by a
short in-place pipeline instead of a parade of full-size temporaries:

* **Temporary elimination** — every elementwise step after the GEMM runs
  with ``out=`` into the one output buffer.  The reference
  ``sq_dist_lorentz`` allocates six ``(b, n)`` float64 arrays per call;
  this backend allocates one.  On a memory-bandwidth-bound box that is
  where the speedup lives (the committed ``BENCH_backends.json`` shows
  2–3× on the hyperbolic-distance and scoring kernels).
* **One-GEMM Lorentz fold** — ``<u, v>_L`` is a single matrix product of
  ``u`` with its time column negated, replacing the reference's
  GEMM + outer-product + subtract (three full passes) with one BLAS call.
* **Cache-sized blocking** — post-GEMM pipelines walk the output in row
  blocks of ~1 MiB so each block stays in cache across the whole chain.
* **Optional threading** — ``REPRO_BACKEND_THREADS=N`` (default 1) runs
  the row blocks of the pairwise kernels on a thread pool.  NumPy ufuncs
  release the GIL, blocks write disjoint rows, and every block runs the
  identical op sequence, so results are bit-equal to the single-threaded
  run regardless of ``N``.

Accuracy policy (``tolerance = 1e-10``, documented in
``docs/BACKENDS.md``): most overrides replay the reference op-order
in-place and are **bit-identical**; only the reformulated kernels —
``sq_dist_lorentz`` (one-GEMM fold) and ``sq_dist_euclid_gram``
(re-associated accumulation) — may differ, by a few ulp of the operand
magnitudes (~1e-14 for unit-scale embeddings).  Squared distances are
compared, never raw ``arccosh`` outputs at the clamp boundary, so the
ulp noise is never amplified through the infinite-derivative point.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .constants import BOUNDARY_EPS, EPS, MAX_TANH_ARG, MIN_NORM
from .numpy_ref import NumpyBackend

__all__ = ["FusedBackend"]

# Row blocks sized so one float64 block of the output (~1 MiB) fits in L2
# alongside the broadcast row operands.
_BLOCK_BYTES = 1 << 20


class FusedBackend(NumpyBackend):
    """Fused/threaded kernels; primitives inherited bit-exactly from numpy."""

    name = "fused"
    # Documented contract bound (docs/BACKENDS.md), not a numerical guard.
    tolerance = 1e-10  # repro-lint: disable=magic-epsilon

    def __init__(self):
        raw = os.environ.get("REPRO_BACKEND_THREADS", "1")
        try:
            threads = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BACKEND_THREADS must be a positive integer, got {raw!r}"
            ) from None
        if threads < 1:
            raise ValueError(f"REPRO_BACKEND_THREADS must be >= 1, got {threads}")
        self._threads = threads
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid: int | None = None

    @property
    def threads(self) -> int:
        """Worker threads used for row-blocked pairwise kernels."""
        return self._threads

    # -- block scheduling ----------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        # Rebuilt after fork: a pool inherited from the parent process has
        # dead worker threads (repro.serve.pool forks its shard workers).
        pid = os.getpid()
        if self._pool is None or self._pool_pid != pid:
            self._pool = ThreadPoolExecutor(max_workers=self._threads)
            self._pool_pid = pid
        return self._pool

    def _run_blocks(self, work, n_rows: int, n_cols: int) -> None:
        """Apply ``work(r0, r1)`` over cache-sized row blocks of the output.

        ``work`` must only touch rows ``[r0, r1)`` — disjoint slices keep
        the threaded schedule deterministic and race-free.
        """
        block = max(1, _BLOCK_BYTES // max(1, n_cols * 8))
        spans = [(r0, min(r0 + block, n_rows)) for r0 in range(0, n_rows, block)]
        if self._threads > 1 and len(spans) > 1:
            # Ufunc inner loops drop the GIL; blocks are embarrassingly
            # row-parallel.
            list(self._executor().map(lambda s: work(*s), spans))
        else:
            for r0, r1 in spans:
                work(r0, r1)

    # -- fused distance chains ----------------------------------------
    def sq_dist_lorentz(self, u, v) -> np.ndarray:
        # One GEMM computes <u, v>_L directly: negating the time column of
        # u folds the -u0*v0 term into the product.  The reference's
        # spatial GEMM, outer product and subtraction collapse into this
        # single BLAS call (reformulation tolerance: a few ulp).
        ut = u.copy()
        ut[:, 0] = -ut[:, 0]
        z = np.empty((u.shape[0], v.shape[0]), dtype=np.float64)
        np.matmul(ut, v.T, out=z)

        def work(r0: int, r1: int) -> None:
            blk = z[r0:r1]
            np.negative(blk, out=blk)  # -<u, v>_L = time - spatial
            np.maximum(blk, 1.0, out=blk)
            np.arccosh(blk, out=blk)
            np.multiply(blk, blk, out=blk)

        self._run_blocks(work, z.shape[0], z.shape[1])
        return z

    def sq_dist_euclid_gram(self, u, v) -> np.ndarray:
        z = np.empty((u.shape[0], v.shape[0]), dtype=np.float64)
        np.matmul(u, v.T, out=z)
        # einsum avoids the (n, d) squared temporaries of ``(u * u).sum(1)``.
        u_sq = np.einsum("ij,ij->i", u, u)
        v_sq = np.einsum("ij,ij->i", v, v)

        def work(r0: int, r1: int) -> None:
            blk = z[r0:r1]
            blk *= -2.0
            blk += u_sq[r0:r1, None]
            blk += v_sq[None, :]

        self._run_blocks(work, z.shape[0], z.shape[1])
        return z

    def sq_dist_euclid_broadcast(self, u, v) -> np.ndarray:
        # Same per-element op-order as the reference broadcast (bit-equal);
        # blocking bounds the (block, n, d) difference temporary instead of
        # materialising the full (b, n, d) cube.
        b, n = u.shape[0], v.shape[0]
        z = np.empty((b, n), dtype=np.float64)

        def work(r0: int, r1: int) -> None:
            diff = u[r0:r1, None, :] - v[None, :, :]
            np.multiply(diff, diff, out=diff)
            np.sum(diff, axis=-1, out=z[r0:r1])

        self._run_blocks(work, b, n)
        return z

    def poincare_dist_matrix(self, x, y) -> np.ndarray:
        # Reference op-order replayed in-place (bit-equal): power-of-two
        # scalings commute with rounding, so the *= 2.0 placement is free.
        z = np.empty((x.shape[0], y.shape[0]), dtype=np.float64)
        np.matmul(x, y.T, out=z)
        x_sq = np.sum(x * x, axis=-1)
        y_sq = np.sum(y * y, axis=-1)
        dx = np.maximum(1.0 - x_sq, BOUNDARY_EPS)
        dy = np.maximum(1.0 - y_sq, BOUNDARY_EPS)

        def work(r0: int, r1: int) -> None:
            blk = z[r0:r1]
            blk *= 2.0
            np.subtract(x_sq[r0:r1, None], blk, out=blk)
            blk += y_sq[None, :]
            np.maximum(blk, 0.0, out=blk)  # diff_sq, identical to reference
            den = np.multiply(dx[r0:r1, None], dy[None, :])
            blk *= 2.0
            blk /= den
            blk += 1.0
            np.maximum(blk, 1.0, out=blk)
            np.arccosh(blk, out=blk)

        self._run_blocks(work, z.shape[0], z.shape[1])
        return z

    # -- Lorentz model kernels ----------------------------------------
    def lorentz_dist(self, x, y) -> np.ndarray:
        prod = x * y
        # asarray: for 1-d inputs the reduction yields a 0-d scalar, which
        # cannot be an ``out=`` target.
        z = np.asarray(prod[..., 1:].sum(axis=-1))
        z -= prod[..., 0]  # <x, y>_L, same additions as the reference
        np.negative(z, out=z)
        np.maximum(z, 1.0, out=z)
        return np.arccosh(z, out=z)

    def lorentz_expmap0(self, z) -> np.ndarray:
        sq = np.multiply(z, z)
        norm = sq.sum(axis=-1, keepdims=True)
        norm += MIN_NORM
        np.sqrt(norm, out=norm)
        clipped = np.minimum(norm, MAX_TANH_ARG)
        out = np.empty(z.shape[:-1] + (z.shape[-1] + 1,), dtype=np.float64)
        np.cosh(clipped, out=out[..., :1])
        spatial = np.multiply(np.sinh(clipped), z, out=out[..., 1:])
        spatial /= norm
        return out

    def lorentz_logmap0(self, x) -> np.ndarray:
        spatial = x[..., 1:]
        sp_norm = np.maximum(np.linalg.norm(spatial, axis=-1, keepdims=True), MIN_NORM)
        out = np.multiply(np.arcsinh(sp_norm), spatial)
        out /= sp_norm
        return out

    # -- Poincaré model kernels ---------------------------------------
    def poincare_dist(self, x, y) -> np.ndarray:
        d = x - y
        np.multiply(d, d, out=d)
        # asarray: 0-d reductions (single-point inputs) are not valid
        # ``out=`` targets.
        z = np.asarray(d.sum(axis=-1))
        x_sq = np.sum(x * x, axis=-1)
        y_sq = np.sum(y * y, axis=-1)
        denom = np.maximum(1.0 - x_sq, BOUNDARY_EPS)
        denom = denom * np.maximum(1.0 - y_sq, BOUNDARY_EPS)
        z *= 2.0
        z /= denom
        z += 1.0
        np.maximum(z, 1.0, out=z)
        return np.arccosh(z, out=z)

    def poincare_expmap0(self, v) -> np.ndarray:
        norm = np.linalg.norm(v, axis=-1, keepdims=True)
        np.maximum(norm, MIN_NORM, out=norm)
        out = np.multiply(np.tanh(norm), v)
        out /= norm
        return self.poincare_proj(out)

    def poincare_logmap0(self, x) -> np.ndarray:
        norm = np.linalg.norm(x, axis=-1, keepdims=True)
        np.clip(norm, MIN_NORM, 1.0 - BOUNDARY_EPS, out=norm)
        out = np.multiply(np.arctanh(norm), x)
        out /= norm
        return out

    # -- Klein model kernels ------------------------------------------
    def einstein_midpoint(self, points, weights) -> np.ndarray:
        sq = np.multiply(points, points)
        g = sq.sum(axis=-1)
        np.subtract(1.0, g, out=g)
        np.maximum(g, EPS, out=g)
        np.sqrt(g, out=g)
        np.divide(1.0, g, out=g)  # gamma = 1 / sqrt(max(1 - ||p||^2, EPS))
        w = np.multiply(g, weights, out=g)
        denom = max(w.sum(), EPS)
        pw = points * w[:, None]
        out = pw.sum(axis=0)
        out /= denom
        return out
