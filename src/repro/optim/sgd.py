"""Euclidean optimisers for the baseline models."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autodiff import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        """Zero accumulated gradients on all parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update step from the accumulated gradients."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data -= self.lr * grad

    def state_dict(self) -> dict[str, np.ndarray]:
        """Per-parameter momentum buffers, keyed by parameter index."""
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` buffers (shapes must match)."""
        for i, v in enumerate(self._velocity):
            arr = state[f"velocity.{i}"]
            if arr.shape != v.shape:
                raise ValueError(f"shape mismatch for velocity.{i}: {v.shape} vs {arr.shape}")
            v[...] = arr


class Adam:
    """Adam (Kingma & Ba 2015) for Euclidean parameters."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        """Zero accumulated gradients on all parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update step from the accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = b1 * self._m[i] + (1.0 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1.0 - b2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Step counter plus per-parameter first/second moment buffers."""
        state: dict[str, np.ndarray] = {"t": np.asarray(self._t, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` buffers (shapes must match)."""
        self._t = int(state["t"])
        for i in range(len(self.params)):
            for slot, buffers in (("m", self._m), ("v", self._v)):
                arr = state[f"{slot}.{i}"]
                if arr.shape != buffers[i].shape:
                    raise ValueError(
                        f"shape mismatch for {slot}.{i}: {buffers[i].shape} vs {arr.shape}"
                    )
                buffers[i][...] = arr
