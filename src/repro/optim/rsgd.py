"""Riemannian stochastic gradient descent (paper §IV-E, Eq. 20).

Each :class:`~repro.autodiff.Parameter` carries the manifold it lives on.
The update is

    x_{t+1} = exp_{x_t}(-lr * grad(L))      with
    grad(L) = egrad2rgrad(x_t, ∇L)

where the exponential map and the Euclidean→Riemannian gradient conversion
are the manifold's own (Möbius map on the Poincaré ball for tag embeddings,
Eqs. 21–22; hyperboloid map for Lorentz parameters, Eq. 23; identity for
Euclidean parameters, recovering plain SGD).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autodiff import Parameter
from ..manifolds import Euclidean
from ..manifolds.constants import MIN_NORM

__all__ = ["RiemannianSGD"]

_DEFAULT = Euclidean()


class RiemannianSGD:
    """RSGD dispatching per-parameter on the attached manifold."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        max_grad_norm: float | None = 100.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.max_grad_norm = max_grad_norm

    def zero_grad(self) -> None:
        """Zero accumulated gradients on all parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update step from the accumulated gradients."""
        for p in self.params:
            if p.grad is None:
                continue
            manifold = p.manifold or _DEFAULT
            egrad = p.grad
            if self.max_grad_norm is not None:
                # Per-row clipping keeps a single exploding example from
                # catapulting a point toward the boundary.
                norms = np.linalg.norm(egrad, axis=-1, keepdims=True)
                scale = np.minimum(1.0, self.max_grad_norm / np.maximum(norms, MIN_NORM))
                egrad = egrad * scale
            rgrad = manifold.egrad2rgrad(p.data, egrad)
            p.data[...] = manifold.retract(p.data, -self.lr * rgrad)
            # Debug-mode contract: active only under REPRO_CHECK_MANIFOLD=1.
            manifold.check_point(p.data)

    def state_dict(self) -> dict[str, np.ndarray]:
        """RSGD is stateless: resume needs only parameters and RNG state."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Nothing to restore (see :meth:`state_dict`)."""
