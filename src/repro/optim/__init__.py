"""Optimisers: Euclidean SGD/Adam and manifold-aware Riemannian SGD."""

from .rsgd import RiemannianSGD
from .sgd import SGD, Adam

__all__ = ["SGD", "Adam", "RiemannianSGD"]
