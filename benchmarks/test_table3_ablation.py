"""Table III — ablation of TaxoRec's components on all four datasets.

Rows (exactly the paper's):
  CML                — Euclidean metric learning, no tags
  CML + Agg          — + tag-enhanced aggregation, Euclidean
  Hyper + CML        — metric learning in hyperbolic space (= HyperML)
  Hyper + CML + Agg  — + tag-enhanced aggregation, hyperbolic
  TaxoRec            — + taxonomy construction & regularisation

Shape targets: Agg helps within each geometry; hyperbolic + Agg ≥
Euclidean + Agg on most datasets; TaxoRec tops the ablation; taxonomy
gains grow with tag count (largest on yelp).
"""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SCALE, BENCH_SEEDS, get_split, save_result

VARIANTS = ("CML", "CML+Agg", "Hyper+CML", "Hyper+CML+Agg", "TaxoRec")
METRICS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")

# See test_table2_overall: ordering assertions only run at (near-)full scale.
_FULL_SCALE = BENCH_SCALE >= 0.75
DATASETS = ("ciao", "amazon-cd", "amazon-book", "yelp")


def _run(preset: str) -> dict[str, list]:
    split = get_split(preset)
    out = {}
    for name in VARIANTS:
        results = []
        for seed in BENCH_SEEDS:
            config = tuned_config(name, preset, epochs=BENCH_EPOCHS, seed=seed)
            model = create_model(name, split.train, config)
            model.fit(split)
            results.append(evaluate(model, split, on="test"))
        out[name] = results
    return out


@pytest.mark.parametrize("preset", DATASETS)
def test_table3_ablation(bench_once, preset):
    table = bench_once(_run, preset)
    rows = []
    for name in VARIANTS:
        vals = [
            f"{100 * np.mean([getattr(r, m) for r in table[name]]):.2f}" for m in METRICS
        ]
        rows.append([name] + vals)
    text = render_table(
        ["Variant", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
        rows,
        title=f"Table III ({preset}): ablation (%)",
    )
    save_result(f"table3_{preset}", text)

    def mean_of(name):
        return np.mean([r.mean() for r in table[name]])

    # Always: taxonomy regularisation must not break the model it extends.
    assert mean_of("TaxoRec") >= 0.85 * mean_of("Hyper+CML+Agg")
    if _FULL_SCALE:
        # The paper's load-bearing orderings: aggregation helps in
        # hyperbolic space, and the full model tops the column.
        assert mean_of("Hyper+CML+Agg") >= 0.9 * mean_of("Hyper+CML")
        assert mean_of("TaxoRec") >= 0.95 * max(mean_of(v) for v in VARIANTS if v != "TaxoRec")
