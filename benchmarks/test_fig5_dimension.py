"""Fig. 5 — Recall@10 of CML, HyperML, TaxoRec across embedding dimension D.

Shape targets: all models improve with D; the hyperbolic models (HyperML,
TaxoRec) retain much more of their performance at small D than Euclidean
CML — the paper's argument for hyperbolic representation efficiency.
"""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SEEDS, get_split, save_result

MODELS = ("CML", "HyperML", "TaxoRec")
DIMS = (8, 16, 32, 64)
DATASETS = ("amazon-book", "yelp")


def _run(preset: str) -> dict[str, list[float]]:
    split = get_split(preset)
    curves: dict[str, list[float]] = {m: [] for m in MODELS}
    for dim in DIMS:
        tag_dim = max(dim // 5, 2)  # TaxoRec reserves ~1/5 for tags (12 of 64)
        for name in MODELS:
            vals = []
            for seed in BENCH_SEEDS:
                config = tuned_config(
                    name, preset, epochs=BENCH_EPOCHS, seed=seed, dim=dim, tag_dim=tag_dim
                )
                model = create_model(name, split.train, config)
                model.fit(split)
                vals.append(evaluate(model, split, on="test").recall_at_10)
            curves[name].append(float(np.mean(vals)))
    return curves


@pytest.mark.parametrize("preset", DATASETS)
def test_fig5_dimension_sweep(bench_once, preset):
    curves = bench_once(_run, preset)
    rows = [
        [name] + [f"{100 * v:.2f}" for v in curve] for name, curve in curves.items()
    ]
    text = render_table(
        ["Model"] + [f"D={d}" for d in DIMS],
        rows,
        title=f"Fig. 5 ({preset}): Recall@10 (%) vs embedding dimension",
    )
    save_result(f"fig5_{preset}", text)

    # Hyperbolic representation efficiency: at the smallest D, the best
    # hyperbolic model holds a larger fraction of its D=64 performance
    # than CML does.
    def retention(name):
        full = max(curves[name][-1], 1e-9)
        return curves[name][0] / full

    hyper_best = max(retention("HyperML"), retention("TaxoRec"))
    assert hyper_best >= 0.8 * retention("CML"), (
        f"hyperbolic small-D retention {hyper_best:.2f} far below CML on {preset}"
    )
