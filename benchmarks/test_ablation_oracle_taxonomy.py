"""Extension ablation: no taxonomy vs constructed vs oracle taxonomy.

The paper's future work proposes *incorporating existing taxonomies when
available*.  The planted synthetic truth makes the upper bound measurable:
TaxoRec with the ground-truth taxonomy (via ``fixed_taxonomy``) brackets
the value of the automated construction from above, while λ=0 brackets it
from below.
"""

import numpy as np

from repro.data import load_preset
from repro.eval import evaluate
from repro.models import TaxoRec
from repro.models.defaults import tuned_config
from repro.taxonomy import Taxonomy
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SCALE, BENCH_SEEDS, get_split, save_result

PRESET = "yelp"  # deepest hierarchy → taxonomy matters most


def _mean(split, **kwargs):
    vals = []
    for seed in BENCH_SEEDS:
        config = tuned_config("TaxoRec", PRESET, epochs=BENCH_EPOCHS, seed=seed)
        model = TaxoRec(split.train, config, **kwargs)
        model.fit(split)
        vals.append(evaluate(model, split, on="test").mean())
    return float(np.mean(vals))


def test_oracle_taxonomy_brackets_construction(bench_once):
    split = get_split(PRESET)
    dataset = load_preset(PRESET, scale=BENCH_SCALE)
    oracle = Taxonomy.from_parent_array(dataset.tag_parent)

    def run():
        return {
            "no taxonomy (use_taxonomy=False)": _mean(split, use_taxonomy=False),
            "constructed (Algorithm 1)": _mean(split),
            "oracle (planted truth)": _mean(split, fixed_taxonomy=oracle),
        }

    results = bench_once(run)
    text = render_table(
        ["Taxonomy source", "mean metric (%)"],
        [[k, f"{100 * v:.2f}"] for k, v in results.items()],
        title=f"Extension ablation ({PRESET}): value of taxonomy quality",
    )
    save_result("ablation_oracle_taxonomy", text)
    assert all(v > 0 for v in results.values())
