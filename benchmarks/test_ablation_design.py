"""Design-choice ablations beyond the paper's Table III (DESIGN.md §5).

Three choices the paper fixes without ablating, each isolated here:

* personalised α_u (Eq. 16) vs a fixed global α;
* Einstein-midpoint local aggregation (Eqs. 9–11) vs a tangent-space mean;
* adaptive clustering with general-tag push-up (Algorithm 1) vs plain
  Poincaré k-means (δ = 0 disables the push-up).
"""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import TaxoRec
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SEEDS, get_split, save_result

PRESET = "amazon-cd"


def _fit_eval(split, seed, model_kwargs=None, **config_kwargs):
    config = tuned_config("TaxoRec", PRESET, epochs=BENCH_EPOCHS, seed=seed, **config_kwargs)
    model = TaxoRec(split.train, config, **(model_kwargs or {}))
    model.fit(split)
    return evaluate(model, split, on="test")


def _mean(split, model_kwargs=None, **config_kwargs):
    vals = [
        _fit_eval(split, seed, model_kwargs, **config_kwargs).mean()
        for seed in BENCH_SEEDS
    ]
    return float(np.mean(vals))


def test_ablation_personalized_alpha(bench_once):
    split = get_split(PRESET)

    def run():
        return {
            "personalised α_u (Eq. 16)": _mean(split),
            "fixed α = 0.1": _mean(split, model_kwargs=dict(personalized_alpha=False, fixed_alpha=0.1)),
            "fixed α = 0.5": _mean(split, model_kwargs=dict(personalized_alpha=False, fixed_alpha=0.5)),
            "fixed α = 1.0": _mean(split, model_kwargs=dict(personalized_alpha=False, fixed_alpha=1.0)),
        }

    results = bench_once(run)
    text = render_table(
        ["Variant", "mean metric (%)"],
        [[k, f"{100 * v:.2f}"] for k, v in results.items()],
        title=f"Ablation ({PRESET}): personalised vs fixed tag weights",
    )
    save_result("ablation_alpha", text)
    assert all(v > 0 for v in results.values())


def test_ablation_local_aggregation(bench_once):
    split = get_split(PRESET)

    def run():
        return {
            "Einstein midpoint (Eq. 10)": _mean(split),
            "tangent-space mean": _mean(split, model_kwargs=dict(local_agg="tangent_mean")),
        }

    results = bench_once(run)
    text = render_table(
        ["Local aggregation", "mean metric (%)"],
        [[k, f"{100 * v:.2f}"] for k, v in results.items()],
        title=f"Ablation ({PRESET}): item tag-embedding aggregation",
    )
    save_result("ablation_midpoint", text)
    assert all(v > 0 for v in results.values())


def test_ablation_adaptive_clustering(bench_once):
    split = get_split(PRESET)

    def run():
        return {
            "adaptive (Algorithm 1, δ=0.5)": _mean(split),
            "plain k-means (δ=0, no push-up)": _mean(split, taxo_delta=0.0),
        }

    results = bench_once(run)
    text = render_table(
        ["Clustering", "mean metric (%)"],
        [[k, f"{100 * v:.2f}"] for k, v in results.items()],
        title=f"Ablation ({PRESET}): adaptive clustering vs plain Poincaré k-means",
    )
    save_result("ablation_adaptive", text)
    assert all(v > 0 for v in results.values())
