"""Table V — interpretable tag-based user profiles (RQ5).

For sampled users, lists the nearest tags in the shared metric space and
the items TaxoRec recommends; measures how often the recommendations'
tags (expanded through the planted hierarchy) overlap the profile — the
quantitative version of the paper's "highly coherent" observation.
"""

import numpy as np
import pytest

from repro.data import load_preset
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SCALE, get_split, save_result

DATASETS = ("amazon-book", "yelp")


def _expand_with_ancestors(dataset, tags):
    expanded = set(int(t) for t in tags)
    parent = dataset.tag_parent
    for t in list(expanded):
        cur = parent[t]
        while cur != -1:
            expanded.add(int(cur))
            cur = parent[cur]
    return expanded


def _run(preset: str):
    split = get_split(preset)
    dataset = load_preset(preset, scale=BENCH_SCALE)
    config = tuned_config("TaxoRec", preset, epochs=BENCH_EPOCHS, seed=0)
    model = create_model("TaxoRec", split.train, config)
    model.fit(split)

    per_user = split.train.items_of_user()
    rng = np.random.default_rng(3)
    candidates = [u for u in range(dataset.n_users) if len(per_user[u]) >= 5]
    users = rng.choice(candidates, size=min(4, len(candidates)), replace=False)

    tag_dist = model.user_tag_distances(users)
    scores = model.score_users(users)
    rows, overlaps = [], []
    for i, user in enumerate(users):
        top_tags = np.argsort(tag_dist[i])[:4]
        row = scores[i].copy()
        row[per_user[user]] = -np.inf
        top_items = np.argsort(-row)[:4]
        profile = _expand_with_ancestors(dataset, top_tags)
        hit = 0
        for v in top_items:
            item_tags = _expand_with_ancestors(dataset, dataset.tags_of_item(v))
            if item_tags & profile:
                hit += 1
        overlaps.append(hit / len(top_items))
        rows.append(
            [
                f"user{user}",
                "; ".join(f"<{dataset.tag_names[t]}>" for t in top_tags),
                "; ".join(str(v) for v in top_items),
                f"{overlaps[-1]:.0%}",
            ]
        )
    return rows, float(np.mean(overlaps))


@pytest.mark.parametrize("preset", DATASETS)
def test_table5_user_profiles(bench_once, preset):
    rows, mean_overlap = bench_once(_run, preset)
    text = render_table(
        ["User", "Nearest tags", "Recommended items", "Tag overlap"],
        rows,
        title=f"Table V ({preset}): tag-based user profiles (mean overlap {mean_overlap:.0%})",
    )
    save_result(f"table5_{preset}", text)
    # Profiles explain recommendations: overlap far above the random rate.
    assert mean_overlap > 0.25
