"""Cold-item breakdown: where do TaxoRec's hits come from?

The paper's core motivation (§I) is that tags carry the ranking signal
where collaborative evidence is thin.  This bench decomposes Recall@10 by
the test item's training count for a tag-free CF model (LightGCN) vs
TaxoRec: the tag/taxonomy advantage should concentrate in the cold bucket.
"""

import numpy as np

from repro.eval import evaluate_by_item_coldness
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SEEDS, get_split, save_result

PRESET = "amazon-cd"
MODELS = ("LightGCN", "TaxoRec")


def test_coldstart_breakdown(bench_once):
    split = get_split(PRESET)

    def run():
        out = {}
        for name in MODELS:
            config = tuned_config(name, PRESET, epochs=BENCH_EPOCHS, seed=BENCH_SEEDS[0])
            model = create_model(name, split.train, config)
            model.fit(split)
            out[name] = evaluate_by_item_coldness(model, split, k=10)
        return out

    results = bench_once(run)
    buckets = list(next(iter(results.values())))
    rows = []
    for name in MODELS:
        rows.append([name] + [f"{100 * results[name][b]['recall']:.2f}" for b in buckets])
    counts = [int(results[MODELS[0]][b]["n_interactions"]) for b in buckets]
    rows.append(["(#test interactions)"] + [str(c) for c in counts])
    text = render_table(
        ["Model"] + [f"train-count {b}" for b in buckets],
        rows,
        title=f"Cold-item Recall@10 breakdown ({PRESET}), %",
    )
    save_result("coldstart_breakdown", text)

    # Sanity: every bucket evaluated, recalls in range.
    for name in MODELS:
        for b in buckets:
            assert 0.0 <= results[name][b]["recall"] <= 1.0
