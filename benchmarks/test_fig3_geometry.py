"""Fig. 3 — Euclidean vs hyperbolic arrangement of a planted hierarchy.

The paper's motivating figure: a 2-D Euclidean embedding cannot keep a
deep tag hierarchy separated near the unit boundary, while the Poincaré
ball can.  We embed the planted taxonomy's tags with a pull-push objective
in both geometries at D=2 and measure (a) how much closer each tag sits to
its parent than to its siblings' children, and (b) top-level cluster
separation (silhouette-style ratio).
"""

import numpy as np

from repro.autodiff import Parameter, Tensor
from repro.data import load_preset
from repro.manifolds import Euclidean, PoincareBall
from repro.optim import SGD, RiemannianSGD
from repro.taxonomy import ancestor_pairs_from_parent
from repro.utils import render_table

from conftest import save_result


def _embed(parent: np.ndarray, manifold, steps: int = 800):
    """Pull ancestor pairs together, push non-pairs apart, in 2-D."""
    n = len(parent)
    rng = np.random.default_rng(0)
    pairs = sorted(ancestor_pairs_from_parent(parent))
    pos = np.array(pairs, dtype=np.int64)
    neg_rng = np.random.default_rng(1)

    if isinstance(manifold, PoincareBall):
        # RSGD steps shrink by the conformal factor near the origin, so the
        # ball needs a larger nominal learning rate than flat space.
        emb = Parameter(manifold.random((n, 2), rng, scale=0.3), manifold=manifold)
        opt = RiemannianSGD([emb], lr=1.0)
    else:
        emb = Parameter(rng.normal(0.0, 0.1, size=(n, 2)))
        opt = SGD([emb], lr=0.05)

    for _ in range(steps):
        opt.zero_grad()
        a = emb.take_rows(pos[:, 0])
        b = emb.take_rows(pos[:, 1])
        neg = neg_rng.integers(0, n, size=len(pos))
        c = emb.take_rows(neg)
        d_pos = manifold.dist(a, b)
        d_neg = manifold.dist(a, c)
        from repro.autodiff import hinge

        loss = (d_pos + hinge(1.0 + d_pos - d_neg)).mean()
        loss.backward()
        opt.step()
        if isinstance(manifold, Euclidean):
            # Mirror the paper's Fig. 3 setting: Euclidean points confined
            # to the unit ball (CML-style constraint).
            norms = np.linalg.norm(emb.data, axis=1, keepdims=True)
            emb.data /= np.maximum(norms, 1.0)
    return emb.data


def _hierarchy_scores(parent: np.ndarray, emb: np.ndarray, manifold) -> tuple[float, float]:
    """(parent-closer-rate, top-level separation ratio)."""
    n = len(parent)
    roots = np.nonzero(parent == -1)[0]

    def top_ancestor(t):
        cur = t
        while parent[cur] != -1:
            cur = parent[cur]
        return cur

    labels = np.array([top_ancestor(t) for t in range(n)])

    # (a) Each non-root tag should sit closer to its parent than to a
    # random tag from a *different* top-level subtree.
    rng = np.random.default_rng(0)
    closer = []
    for t in range(n):
        p = parent[t]
        if p == -1:
            continue
        others = np.nonzero(labels != labels[t])[0]
        if len(others) == 0:
            continue
        o = rng.choice(others)
        d_parent = manifold.dist_np(emb[t], emb[p])
        d_other = manifold.dist_np(emb[t], emb[o])
        closer.append(float(d_parent < d_other))
    closer_rate = float(np.mean(closer))

    # (b) Mean intra-subtree distance vs inter-subtree distance.
    intra, inter = [], []
    for i in range(n):
        for j in range(i + 1, n):
            d = float(manifold.dist_np(emb[i], emb[j]))
            (intra if labels[i] == labels[j] else inter).append(d)
    separation = float(np.mean(inter) / max(np.mean(intra), 1e-9))
    return closer_rate, separation


def test_fig3_geometry_comparison(bench_once):
    dataset = load_preset("yelp", scale=0.3)  # deepest planted hierarchy
    parent = dataset.tag_parent

    def run():
        results = {}
        for name, manifold in (("euclidean", Euclidean()), ("poincare", PoincareBall())):
            emb = _embed(parent, manifold)
            results[name] = _hierarchy_scores(parent, emb, manifold)
        return results

    results = bench_once(run)
    rows = [
        [name, f"{rate:.2%}", f"{sep:.2f}x"]
        for name, (rate, sep) in results.items()
    ]
    text = render_table(
        ["Geometry (D=2)", "tag closer to parent than other subtree", "inter/intra separation"],
        rows,
        title="Fig. 3: Euclidean vs hyperbolic arrangement of the planted hierarchy",
    )
    save_result("fig3_geometry", text)

    # The paper's claim: hyperbolic 2-D keeps the hierarchy separated at
    # least as well as Euclidean 2-D confined to the unit ball.
    assert results["poincare"][1] >= results["euclidean"][1] * 0.9
    assert results["poincare"][0] >= 0.5
