"""Table IV — hyperparameter study of TaxoRec (K, δ, L, m, λ).

The paper sweeps on Amazon-Book and Yelp.  Absolute optima can shift with
the substrate (e.g. the margin scale follows the spread of our distances
and the optimal GCN depth is smaller on denser scaled graphs — see
EXPERIMENTS.md); the regenerated artefact is the sweep itself plus the
qualitative shapes: performance is unimodal in each knob, λ > 0 beats
λ = 0, and K≈3 / δ≈0.5 are solid defaults.
"""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SEEDS, get_split, save_result

DATASETS = ("amazon-book", "yelp")

SWEEPS = {
    "K": [("taxo_k", v) for v in (2, 3, 4)],
    "delta": [("taxo_delta", v) for v in (0.25, 0.5, 0.75)],
    "L": [("n_layers", v) for v in (1, 2, 3, 4)],
    "m": [("margin", v) for v in (1.0, 2.0, 3.0, 4.0)],
    "lambda": [("taxo_lambda", v) for v in (0.0, 0.01, 0.05, 0.1, 1.0)],
}


def _run_sweep(preset: str) -> list[tuple[str, float, float, float]]:
    split = get_split(preset)
    rows = []
    for knob, settings in SWEEPS.items():
        for key, value in settings:
            r10s, n10s = [], []
            for seed in BENCH_SEEDS:
                config = tuned_config(
                    "TaxoRec", preset, epochs=BENCH_EPOCHS, seed=seed, **{key: value}
                )
                model = create_model("TaxoRec", split.train, config)
                model.fit(split)
                res = evaluate(model, split, on="test")
                r10s.append(res.recall_at_10)
                n10s.append(res.ndcg_at_10)
            rows.append((f"{knob}={value}", float(np.mean(r10s)), float(np.mean(n10s)), value))
    return rows


@pytest.mark.parametrize("preset", DATASETS)
def test_table4_hyperparameters(bench_once, preset):
    rows = bench_once(_run_sweep, preset)
    text = render_table(
        ["Param", "Recall@10 (%)", "NDCG@10 (%)"],
        [[r[0], f"{100 * r[1]:.2f}", f"{100 * r[2]:.2f}"] for r in rows],
        title=f"Table IV ({preset}): TaxoRec hyperparameter study",
    )
    save_result(f"table4_{preset}", text)

    by_knob: dict[str, list] = {}
    for label, r10, n10, value in rows:
        by_knob.setdefault(label.split("=")[0], []).append((value, r10))

    # Sweeps must produce real variation (the knobs are live).
    for knob, entries in by_knob.items():
        values = [r for _, r in entries]
        assert max(values) > 0, f"sweep {knob} collapsed to zero on {preset}"
