"""Benchmark harness configuration.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md §4).  Experiments print their tables to stdout *and* write
them to ``benchmarks/results/<name>.txt`` so artefacts survive pytest's
output capture.

Environment knobs (defaults keep the whole suite CPU-friendly):

* ``REPRO_BENCH_SCALE``  — dataset scale multiplier (default 0.5)
* ``REPRO_BENCH_EPOCHS`` — training epoch cap     (default 30)
* ``REPRO_BENCH_SEEDS``  — comma-separated seeds  (default "0")

For a full-fidelity regeneration:
    REPRO_BENCH_SCALE=1.0 REPRO_BENCH_EPOCHS=120 REPRO_BENCH_SEEDS=0,1,2 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.data import load_preset, temporal_split

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "30"))
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "0").split(",") if s != ""
)

_SPLIT_CACHE: dict[str, object] = {}


def get_split(preset: str):
    """Session-cached temporal split of a preset at the bench scale."""
    key = f"{preset}@{BENCH_SCALE}"
    if key not in _SPLIT_CACHE:
        _SPLIT_CACHE[key] = temporal_split(load_preset(preset, scale=BENCH_SCALE))
    return _SPLIT_CACHE[key]


def save_result(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture()
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
