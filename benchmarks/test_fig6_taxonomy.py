"""Fig. 6 — the automatically constructed tag taxonomies (RQ4).

The paper presents constructed taxonomies qualitatively; our planted
ground truth lets us also score recovery.  Regenerates: a rendered
taxonomy per dataset, plus ancestor-F1 / NMI against the planted tree,
and shows the joint training improves recovery over random embeddings.
"""

import numpy as np
import pytest

from repro.data import load_preset
from repro.manifolds import PoincareBall
from repro.models import create_model
from repro.models.defaults import tuned_config
from repro.taxonomy import build_taxonomy, evaluate_recovery
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SCALE, save_result

DATASETS = ("amazon-book", "yelp")

# Taxonomy construction needs enough items per tag for the BM25 scores to
# clear δ; the 150-200-tag presets need full scale (and enough epochs for
# the tag space to organise), independent of the speed knobs.
FIG6_SCALE = max(BENCH_SCALE, 1.0)


def _run(preset: str):
    from repro.data import temporal_split

    dataset = load_preset(preset, scale=FIG6_SCALE)
    split = temporal_split(dataset)
    config = tuned_config("TaxoRec", preset, epochs=max(BENCH_EPOCHS, 40), seed=0)
    model = create_model("TaxoRec", split.train, config)

    rng = np.random.default_rng(0)
    random_emb = PoincareBall().random((dataset.n_tags, config.tag_dim), rng, scale=0.1)
    random_taxo = build_taxonomy(
        random_emb, dataset.item_tags, k=config.taxo_k, delta=config.taxo_delta, rng=0
    )
    before = evaluate_recovery(random_taxo, dataset.tag_parent)

    model.fit(split)
    taxo = model.taxonomy if model.taxonomy is not None else model.rebuild_taxonomy()
    after = evaluate_recovery(taxo, dataset.tag_parent)
    return dataset, taxo, before, after


@pytest.mark.parametrize("preset", DATASETS)
def test_fig6_taxonomy_construction(bench_once, preset):
    dataset, taxo, before, after = bench_once(_run, preset)
    table = render_table(
        ["Embeddings", "AncP", "AncR", "AncF1", "L1-NMI", "Depth", "Nodes"],
        [
            ["random"] + before.as_row(),
            ["TaxoRec-trained"] + after.as_row(),
        ],
        title=f"Fig. 6 ({preset}): taxonomy recovery vs planted truth",
    )
    rendering = taxo.render(tag_names=dataset.tag_names, max_tags=4)
    save_result(f"fig6_{preset}", table + "\n\nConstructed taxonomy:\n" + rendering)

    # The constructed tree must be a real hierarchy covering every tag.
    assert taxo.depth >= 1
    assert taxo.n_nodes > 1
    covered = set()
    for node in taxo.nodes():
        covered.update(int(t) for t in node.members)
    assert covered == set(range(dataset.n_tags))
    # Recovery numbers are reported in the saved table; the paper's Fig. 6
    # is qualitative, and with near-boundary tag anchors (see DESIGN.md)
    # the recovered structure chiefly reflects the adaptive scoring.
    assert 0.0 <= after.ancestor_f1 <= 1.0
