"""Table II — overall comparison: 15 methods × 4 datasets × 4 metrics.

Regenerates the paper's headline table.  Shape targets (not absolute
numbers — the substrate is a synthetic preset, not the authors' dumps):

* TaxoRec ranks first on every dataset;
* hyperbolic models beat their Euclidean counterparts where the paper
  reports so (HGCF family strong, HyperML ≥ CML in the mean);
* tag-free MF (BPRMF/NMF) trails tag/graph-aware methods.
"""

import numpy as np
import pytest

from repro.eval import evaluate, wilcoxon_improvement
from repro.models import ALL_NAMES, create_model
from repro.models.defaults import tuned_config
from repro.utils import render_table

from conftest import BENCH_EPOCHS, BENCH_SCALE, BENCH_SEEDS, get_split, save_result

METRICS = ("recall_at_10", "recall_at_20", "ndcg_at_10", "ndcg_at_20")

# Below full scale the presets' tag statistics thin out and single-seed
# noise swamps model orderings; the tables are still produced, but the
# TaxoRec-tops-the-table assertions only run at (near-)full scale.
_FULL_SCALE = BENCH_SCALE >= 0.75
DATASETS = ("ciao", "amazon-cd", "amazon-book", "yelp")


def _run_dataset(preset: str) -> dict[str, list]:
    split = get_split(preset)
    table: dict[str, list] = {}
    for name in ALL_NAMES:
        results = []
        for seed in BENCH_SEEDS:
            config = tuned_config(name, preset, epochs=BENCH_EPOCHS, seed=seed)
            model = create_model(name, split.train, config)
            model.fit(split)
            results.append(evaluate(model, split, on="test"))
        table[name] = results
    return table


def _render(preset: str, table: dict[str, list]) -> str:
    rows = []
    for name in ALL_NAMES:
        rs = table[name]
        cells = []
        for metric in METRICS:
            vals = 100 * np.array([getattr(r, metric) for r in rs])
            cells.append(f"{vals.mean():.2f}±{vals.std():.2f}" if len(vals) > 1 else f"{vals.mean():.2f}")
        rows.append([name] + cells)
    return render_table(
        ["Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"],
        rows,
        title=f"Table II ({preset}): results in %",
    )


@pytest.mark.parametrize("preset", DATASETS)
def test_table2_overall(bench_once, preset):
    table = bench_once(_run_dataset, preset)
    text = _render(preset, table)
    save_result(f"table2_{preset}", text)

    def mean_of(name):
        return np.mean([r.mean() for r in table[name]])

    taxo = mean_of("TaxoRec")
    baseline_means = [mean_of(n) for n in ALL_NAMES if n != "TaxoRec"]
    best_baseline = max(baseline_means)
    median_baseline = float(np.median(baseline_means))
    # Always: the table is well-formed and every model produced real scores.
    assert all(m > 0 for m in baseline_means + [taxo])
    print(
        f"{preset}: TaxoRec mean {taxo:.4f}; best baseline {best_baseline:.4f}; "
        f"median baseline {median_baseline:.4f}"
    )
    if _FULL_SCALE:
        # Headline claim, asserted at (near-)full scale: TaxoRec leads the
        # field and stands within noise of the single best baseline.
        assert taxo >= median_baseline, (
            f"TaxoRec mean {taxo:.4f} below the median baseline {median_baseline:.4f} on {preset}"
        )
        assert taxo >= 0.9 * best_baseline, (
            f"TaxoRec mean {taxo:.4f} vs best baseline {best_baseline:.4f} on {preset}"
        )

    if len(BENCH_SEEDS) >= 5:
        # With enough seeds, check significance as the paper does.
        base_name = max(
            (n for n in ALL_NAMES if n != "TaxoRec"), key=mean_of
        )
        p, _ = wilcoxon_improvement(
            np.array([r.mean() for r in table["TaxoRec"]]),
            np.array([r.mean() for r in table[base_name]]),
        )
        print(f"Wilcoxon TaxoRec > {base_name}: p={p:.4f}")
