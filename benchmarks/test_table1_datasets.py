"""Table I — statistics of the four benchmark datasets.

Regenerates the dataset-statistics table.  Absolute counts are the scaled
synthetic presets; the *relative* shape (tag vocabulary growing, density
shrinking from Ciao to Yelp) mirrors the paper's Table I.
"""

from repro.data import PRESET_NAMES, compute_stats, load_preset
from repro.utils import render_table

from conftest import BENCH_SCALE, save_result


def _build_table() -> str:
    rows = [
        compute_stats(load_preset(name, scale=BENCH_SCALE)).as_row()
        for name in PRESET_NAMES
    ]
    return render_table(
        ["Dataset", "#User", "#Item", "#Interaction", "Density(%)", "#Tag", "Tags/Item", "Depth"],
        rows,
        title=f"Table I: dataset statistics (scale={BENCH_SCALE})",
    )


def test_table1_dataset_statistics(bench_once):
    table = bench_once(_build_table)
    save_result("table1_datasets", table)
    # Invariants of the paper's Table I shape.
    stats = {n: compute_stats(load_preset(n, scale=BENCH_SCALE)) for n in PRESET_NAMES}
    assert stats["ciao"].n_tags == 28
    assert stats["ciao"].n_tags < stats["amazon-cd"].n_tags < stats["yelp"].n_tags
    assert stats["ciao"].density_percent > stats["yelp"].density_percent
