"""Forward-value behaviour of the Tensor class."""

import numpy as np
import pytest

from repro.autodiff import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_from_int_array_casts_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.item() == 3.5
        assert t.size == 1

    def test_requires_grad_flag(self):
        assert not Tensor([1.0]).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar_and_radd(self):
        out = 1.0 + Tensor([1.0, 2.0])
        np.testing.assert_array_equal(out.data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        np.testing.assert_array_equal((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_array_equal((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div_and_rdiv(self):
        np.testing.assert_allclose((Tensor([4.0]) / 2.0).data, [2.0])
        np.testing.assert_allclose((8.0 / Tensor([4.0])).data, [2.0])

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_matmul_vec(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_array_equal((a @ b).data, [1.0, 2.0])

    def test_numpy_scalar_dispatch(self):
        # __array_priority__ makes np scalars defer to Tensor.
        out = np.float64(2.0) * Tensor([1.0, 2.0])
        assert isinstance(out, Tensor)


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3.0

    def test_mean_axis(self):
        out = Tensor(np.arange(6.0).reshape(2, 3)).mean(axis=0)
        np.testing.assert_allclose(out.data, [1.5, 2.5, 3.5])

    def test_max(self):
        assert Tensor([1.0, 5.0, 3.0]).max().item() == 5.0

    def test_max_axis(self):
        out = Tensor(np.array([[1.0, 9.0], [7.0, 2.0]])).max(axis=1)
        np.testing.assert_array_equal(out.data, [9.0, 7.0])


class TestShapeOps:
    def test_reshape(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.T.shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(9.0).reshape(3, 3))
        np.testing.assert_array_equal(t[1].data, [3.0, 4.0, 5.0])
        np.testing.assert_array_equal(t[..., :1].data, [[0.0], [3.0], [6.0]])

    def test_take_rows(self):
        t = Tensor(np.arange(6.0).reshape(3, 2))
        out = t.take_rows(np.array([2, 0, 2]))
        np.testing.assert_array_equal(out.data, [[4.0, 5.0], [0.0, 1.0], [4.0, 5.0]])


class TestElementwise:
    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_hyperbolics(self):
        x = np.array([0.1, 0.5, 1.0])
        np.testing.assert_allclose(Tensor(x).tanh().data, np.tanh(x))
        np.testing.assert_allclose(Tensor(x).sinh().data, np.sinh(x))
        np.testing.assert_allclose(Tensor(x).cosh().data, np.cosh(x))

    def test_arcosh_clips_below_one(self):
        out = Tensor([0.5, 1.0, 2.0]).arcosh()
        assert out.data[0] == 0.0  # clipped to arccosh(1)
        np.testing.assert_allclose(out.data[2], np.arccosh(2.0))

    def test_artanh_saturates(self):
        out = Tensor([0.0, 0.5, 1.0]).artanh()
        assert np.isfinite(out.data).all()

    def test_abs(self):
        np.testing.assert_array_equal(Tensor([-1.0, 2.0]).abs().data, [1.0, 2.0])

    def test_clamp(self):
        out = Tensor([-1.0, 0.5, 2.0]).clamp(0.0, 1.0)
        np.testing.assert_array_equal(out.data, [0.0, 0.5, 1.0])

    def test_relu(self):
        np.testing.assert_array_equal(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_extremes_stable(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0])

    def test_norm(self):
        out = Tensor([[3.0, 4.0]]).norm(axis=-1)
        np.testing.assert_allclose(out.data, [5.0])


class TestComparisons:
    def test_gt_returns_bool_array(self):
        out = Tensor([1.0, 3.0]) > 2.0
        assert out.dtype == bool
        np.testing.assert_array_equal(out, [False, True])

    def test_le(self):
        np.testing.assert_array_equal(Tensor([1.0, 3.0]) <= 1.0, [True, False])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach()
        assert not y.requires_grad
        assert y.data is x.data
