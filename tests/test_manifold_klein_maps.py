"""Klein-model midpoint and the inter-model diffeomorphisms (Eqs. 1–3, 9–11)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.manifolds import (
    Lorentz,
    PoincareBall,
    einstein_midpoint,
    einstein_midpoint_batch,
    einstein_midpoint_np,
    klein_to_poincare,
    klein_to_poincare_np,
    lorentz_factor,
    lorentz_to_poincare,
    lorentz_to_poincare_np,
    poincare_to_klein,
    poincare_to_klein_np,
    poincare_to_lorentz,
    poincare_to_lorentz_np,
)

ball = PoincareBall()
lor = Lorentz()


@pytest.fixture()
def ball_points(rng):
    return ball.proj(rng.normal(scale=0.3, size=(5, 3)))


class TestDiffeomorphisms:
    def test_poincare_lorentz_roundtrip(self, ball_points):
        l = poincare_to_lorentz_np(ball_points)
        np.testing.assert_allclose(lorentz_to_poincare_np(l), ball_points, atol=1e-12)

    def test_poincare_to_lorentz_on_hyperboloid(self, ball_points):
        l = poincare_to_lorentz_np(ball_points)
        np.testing.assert_allclose(lor.inner_np(l, l), -1.0, atol=1e-9)

    def test_poincare_klein_roundtrip(self, ball_points):
        k = poincare_to_klein_np(ball_points)
        np.testing.assert_allclose(klein_to_poincare_np(k), ball_points, atol=1e-12)

    def test_klein_points_in_unit_ball(self, ball_points):
        k = poincare_to_klein_np(ball_points)
        assert (np.linalg.norm(k, axis=1) < 1.0).all()

    def test_isometry_poincare_lorentz(self, ball_points):
        """The maps preserve distances — the paper's justification for mixing models."""
        d_p = ball.dist_np(ball_points[0], ball_points[1])
        l = poincare_to_lorentz_np(ball_points[:2])
        d_l = lor.dist_np(l[0], l[1])
        np.testing.assert_allclose(d_p, d_l, atol=1e-9)

    def test_origin_maps_to_origin(self):
        zero = np.zeros((1, 3))
        l = poincare_to_lorentz_np(zero)
        np.testing.assert_allclose(l, [[1.0, 0.0, 0.0, 0.0]])
        np.testing.assert_allclose(poincare_to_klein_np(zero), zero)

    def test_tensor_versions_match_numpy(self, ball_points):
        np.testing.assert_allclose(
            poincare_to_lorentz(Tensor(ball_points)).data,
            poincare_to_lorentz_np(ball_points),
        )
        np.testing.assert_allclose(
            poincare_to_klein(Tensor(ball_points)).data, poincare_to_klein_np(ball_points)
        )
        k = poincare_to_klein_np(ball_points)
        np.testing.assert_allclose(
            klein_to_poincare(Tensor(k)).data, klein_to_poincare_np(k)
        )
        l = poincare_to_lorentz_np(ball_points)
        np.testing.assert_allclose(
            lorentz_to_poincare(Tensor(l)).data, lorentz_to_poincare_np(l)
        )

    def test_maps_gradcheck(self, rng):
        p = ball.proj(rng.normal(scale=0.3, size=(3, 2)))
        check_gradients(lambda x: poincare_to_lorentz(x).sum(), [p], atol=1e-4)
        check_gradients(lambda x: poincare_to_klein(x).sum(), [p], atol=1e-4)
        k = poincare_to_klein_np(p)
        check_gradients(lambda x: klein_to_poincare(x).sum(), [k], atol=1e-4)


class TestEinsteinMidpoint:
    def test_lorentz_factor_at_origin(self):
        g = lorentz_factor(Tensor(np.zeros((1, 3))))
        np.testing.assert_allclose(g.data, [[1.0]])

    def test_midpoint_of_identical_points(self, ball_points):
        k = poincare_to_klein_np(ball_points[:1])
        pts = np.repeat(k, 4, axis=0)
        mid = einstein_midpoint(Tensor(pts), Tensor(np.ones(4)))
        np.testing.assert_allclose(mid.data, k[0], atol=1e-12)

    def test_midpoint_symmetric_pair_is_origin(self):
        pts = np.array([[0.4, 0.0], [-0.4, 0.0]])
        mid = einstein_midpoint(Tensor(pts), Tensor(np.ones(2)))
        np.testing.assert_allclose(mid.data, [0.0, 0.0], atol=1e-12)

    def test_zero_weight_points_ignored(self, ball_points):
        k = poincare_to_klein_np(ball_points)
        w = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        mid = einstein_midpoint(Tensor(k), Tensor(w))
        np.testing.assert_allclose(mid.data, k[0], atol=1e-12)

    def test_batch_matches_single(self, ball_points, rng):
        k = poincare_to_klein_np(ball_points)
        weights = np.abs(rng.normal(size=(3, 5))) + 0.1
        batched = einstein_midpoint_batch(Tensor(k), Tensor(weights)).data
        for i in range(3):
            single = einstein_midpoint(Tensor(k), Tensor(weights[i])).data
            np.testing.assert_allclose(batched[i], single, atol=1e-12)

    def test_numpy_matches_tensor(self, ball_points, rng):
        k = poincare_to_klein_np(ball_points)
        w = np.abs(rng.normal(size=5)) + 0.1
        np.testing.assert_allclose(
            einstein_midpoint_np(k, w), einstein_midpoint(Tensor(k), Tensor(w)).data
        )

    def test_midpoint_inside_ball(self, rng):
        pts = poincare_to_klein_np(ball.proj(rng.normal(scale=0.6, size=(20, 4))))
        w = np.abs(rng.normal(size=20))
        mid = einstein_midpoint_np(pts, w)
        assert np.linalg.norm(mid) < 1.0

    def test_batch_gradcheck(self, rng):
        pts = poincare_to_klein_np(ball.proj(rng.normal(scale=0.3, size=(4, 2))))
        w = np.abs(rng.normal(size=(2, 4))) + 0.1
        check_gradients(
            lambda p, q: (einstein_midpoint_batch(p, q) ** 2).sum(), [pts, w], atol=1e-4
        )

    def test_all_zero_weights_safe(self, ball_points):
        k = poincare_to_klein_np(ball_points)
        mid = einstein_midpoint(Tensor(k), Tensor(np.zeros(5)))
        assert np.isfinite(mid.data).all()
