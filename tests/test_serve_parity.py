"""Serving ↔ offline parity: the tentpole guarantee of ``repro.serve``.

For **every** model in the registry: train briefly, freeze with
``export_model``, reload the artifact, and assert that

* the frozen scorer reproduces the live model's ``score_users`` to
  ``1e-10`` (bit-identical in practice: the frozen score-fns replicate
  the live scorers op-for-op);
* :meth:`RecommenderService.recommend` returns *identical* ranked lists
  to the offline evaluator's :func:`repro.eval.topk_ranking` at
  ``k ∈ {1, 10, 50}`` — same ``(-score, item_id)`` tiebreak, same
  exclude-seen masking (the evaluator's ``on="valid"`` protocol masks
  exactly the training interactions the artifact's seen-CSR holds).

``Random`` draws fresh scores per live call by design, so its parity is
asserted against the evaluator run over its own frozen scorer — the
serving stack must still agree with the offline protocol on the frozen
arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import topk_ranking
from repro.models import MODEL_REGISTRY, TrainConfig
from repro.serve import RecommenderService, ShardedService, export_model, load_artifact

MODEL_NAMES = sorted(MODEL_REGISTRY)
PARITY_KS = (1, 10, 50)

_CACHE: dict[str, tuple] = {}


@pytest.fixture(scope="module")
def frozen(tiny_split, tmp_path_factory):
    """Factory: train + export + reload one registry model (memoised)."""

    def build(name: str):
        if name not in _CACHE:
            model = MODEL_REGISTRY[name](tiny_split.train, TrainConfig(epochs=1, seed=3))
            model.fit(tiny_split)
            safe = name.replace("+", "_")
            path = tmp_path_factory.mktemp("artifacts") / f"{safe}.npz"
            export_model(model, path)
            artifact = load_artifact(path)
            _CACHE[name] = (model, artifact, RecommenderService(artifact))
        return _CACHE[name]

    yield build
    _CACHE.clear()


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_export_roundtrip_scores_within_1e10(frozen, name):
    """Live ``score_users`` vs the reloaded frozen scorer, all users."""
    model, artifact, _ = frozen(name)
    if name == "Random":
        pytest.skip("Random draws fresh scores per live call by design")
    users = np.arange(artifact.n_users)
    live = np.asarray(model.score_users(users), dtype=np.float64)
    served = np.asarray(artifact.scorer().score_users(users), dtype=np.float64)
    np.testing.assert_allclose(served, live, rtol=0.0, atol=1e-10)


@pytest.mark.parametrize("k", PARITY_KS)
@pytest.mark.parametrize("name", MODEL_NAMES)
def test_service_topk_identical_to_evaluator(frozen, tiny_split, name, k):
    """Served top-K == the offline evaluator's ranked lists, exactly."""
    model, artifact, service = frozen(name)
    reference = artifact.scorer() if name == "Random" else model
    users, topk = topk_ranking(reference, tiny_split, on="valid", k=k)
    for i, user in enumerate(users):
        items, scores = service.recommend(int(user), k=k, exclude_seen=True)
        np.testing.assert_array_equal(items, topk[i], err_msg=f"{name} user {user} k={k}")
        # Served scores come back in ranking order: non-increasing.
        assert np.all(np.diff(scores) <= 0)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_sharded_deployment_bit_identical_to_flat_service(frozen, name):
    """A sharded + micro-batched deployment ≡ the flat service, bit for bit.

    This is the scale-out contract: sharding the user space and coalescing
    requests are pure routing/transport concerns — for every registry
    model and every user, the sharded facade must return the *identical*
    ``(items, scores)`` arrays the single service returns (same frozen
    scorers, batch-size-invariant by construction).
    """
    _, artifact, service = frozen(name)
    sharded = ShardedService(artifact, n_shards=3, micro_batch=4)
    try:
        for user in range(artifact.n_users):
            items, scores = service.recommend(user, k=10)
            sharded_items, sharded_scores = sharded.recommend(user, k=10)
            np.testing.assert_array_equal(sharded_items, items, err_msg=f"{name} user {user}")
            np.testing.assert_array_equal(sharded_scores, scores, err_msg=f"{name} user {user}")
    finally:
        sharded.close()


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_exclude_seen_masks_training_interactions(frozen, name):
    """With exclude_seen, seen items only appear once unseen items run out."""
    _, artifact, service = frozen(name)
    k = min(10, artifact.n_items)
    for user in range(0, artifact.n_users, 7):
        seen = set(int(i) for i in artifact.seen_items(user))
        items, scores = service.recommend(user, k=k, exclude_seen=True)
        finite = scores > -np.inf
        assert not (set(int(i) for i in items[finite]) & seen)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_score_endpoint_matches_frozen_scorer(frozen, name):
    """``score(user, items)`` returns the unmasked frozen scores."""
    _, artifact, service = frozen(name)
    scorer = artifact.scorer()
    items = np.arange(0, artifact.n_items, 11, dtype=np.int64)
    for user in (0, artifact.n_users - 1):
        full = np.asarray(scorer.score_users(np.asarray([user])), dtype=np.float64)[0]
        np.testing.assert_allclose(service.score(user, items), full[items], rtol=0.0, atol=0.0)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_artifact_metadata_is_consistent(frozen, tiny_split, name):
    model, artifact, _ = frozen(name)
    assert artifact.meta["schema"] == "repro.model/v1"
    # Ablation registry keys (e.g. "CML+Agg") construct TaxoRec variants;
    # the artifact records the constructed model's own name.
    assert artifact.model_name == model.name
    assert artifact.n_users == tiny_split.train.n_users
    assert artifact.n_items == tiny_split.train.n_items
    assert artifact.meta["dataset"]["name"] == tiny_split.train.name
    assert artifact.tag_names == list(tiny_split.train.tag_names)
