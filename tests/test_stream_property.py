"""Hypothesis properties of the streaming layer.

Two ingest contracts (``repro.stream.events``):

* the state after ``ingest(batch)`` is a pure function of the *set* of
  events — never of their order;
* re-ingesting any batch is a no-op (idempotence on duplicates).

And three attach invariants (``repro.stream.expand``): routing a new tag
into a live taxonomy never breaks subtree containment (every node's
members stay a subset of its parent's), never duplicates a tag within a
node, and never orphans the tag (it lands in the root and exactly one
node per level along its path).  Embedding placement runs under
``REPRO_CHECK_MANIFOLD=1`` so Einstein-midpoint convexity is enforced,
not assumed.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manifolds import PoincareBall
from repro.stream import StreamState, attach_tag, place_tag_embedding
from repro.taxonomy import Taxonomy, from_dict, to_dict

pytestmark = pytest.mark.slow

events_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 9)), min_size=0, max_size=40
)


def _canonical(state: StreamState):
    return (
        [(e.user, e.item) for e in state.events()],
        state.pending_users().tolist(),
        state.new_users().tolist(),
        state.new_items().tolist(),
    )


@given(batch=events_strategy, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_ingest_is_order_insensitive_within_a_batch(batch, seed):
    shuffled = list(batch)
    np.random.default_rng(seed).shuffle(shuffled)
    a, b = StreamState(4, 5), StreamState(4, 5)
    ra, rb = a.ingest(batch), b.ingest(shuffled)
    assert _canonical(a) == _canonical(b)
    assert (ra.accepted, ra.duplicates) == (rb.accepted, rb.duplicates)
    assert ra.new_users == rb.new_users and ra.new_items == rb.new_items


@given(batch=events_strategy)
@settings(max_examples=60, deadline=None)
def test_ingest_is_idempotent_on_duplicates(batch):
    state = StreamState(4, 5)
    first = state.ingest(batch)
    before = _canonical(state)
    generation = state.generation
    second = state.ingest(batch)
    assert second.accepted == 0
    assert second.duplicates == len(batch)
    assert second.new_users == [] and second.new_items == []
    assert _canonical(state) == before
    assert state.generation == generation
    assert first.accepted == state.n_events


# ----------------------------------------------------------------------
# Taxonomy attach invariants
# ----------------------------------------------------------------------
def _base_taxonomy() -> Taxonomy:
    """Two-level tree over tags 0..5: {0,1,2} / {3,4,5} then singleton leaves."""
    parent = np.array([-1, 0, 0, -1, 3, 3], dtype=np.int64)
    return Taxonomy.from_parent_array(parent)


def _check_tree(taxonomy: Taxonomy, tag: int) -> None:
    holders = 0
    for node in taxonomy.nodes():
        members = node.members.tolist()
        assert len(members) == len(set(members)), "duplicate tag within a node"
        for child in node.children:
            assert set(child.members.tolist()) <= set(members), "containment broken"
            assert child.level == node.level + 1
        holders += int(tag in members)
    assert tag in taxonomy.root.members.tolist(), "attached tag orphaned from the root"
    assert holders >= 1


@pytest.fixture(autouse=True, scope="module")
def _manifold_checks_on():
    previous = os.environ.get("REPRO_CHECK_MANIFOLD")
    os.environ["REPRO_CHECK_MANIFOLD"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_CHECK_MANIFOLD", None)
    else:
        os.environ["REPRO_CHECK_MANIFOLD"] = previous


@given(
    psi_seed=st.integers(0, 2**31 - 1),
    density=st.floats(0.1, 0.9),
    delta=st.sampled_from([0.0, 0.05, 1e9]),
)
@settings(max_examples=40, deadline=None)
def test_attach_preserves_tree_invariants(psi_seed, density, delta):
    rng = np.random.default_rng(psi_seed)
    taxonomy = _base_taxonomy()
    tag = 6
    item_tags = (rng.random((12, 7)) < density).astype(np.float64)
    decision = attach_tag(taxonomy, item_tags, tag, delta=delta)

    _check_tree(taxonomy, tag)
    assert taxonomy.n_tags == 7
    assert decision.tag == tag
    assert decision.level == len(decision.path) or decision.general
    if delta >= 1e9:
        # Nothing clears an absurd threshold: retained as general at the root.
        assert decision.general and decision.path == []
        assert tag in taxonomy.root.general_tags.tolist()
    # The expanded tree still serialises through to_dict/from_dict
    # (the ``repro.ckpt/v1`` extra_state transport).
    clone = from_dict(to_dict(taxonomy))
    assert _canonical_tree(clone) == _canonical_tree(taxonomy)

    # Embedding placement stays inside the ball under active checks.
    ball = PoincareBall()
    tag_emb = ball.proj(rng.normal(0.0, 0.3, size=(7, 4)))
    terminal = taxonomy.root
    for step in decision.path:
        terminal = terminal.children[step]
    members = np.array([t for t in terminal.members.tolist() if t != tag], dtype=np.int64)
    point = place_tag_embedding(tag_emb, members, ball=ball)
    assert np.linalg.norm(point) < 1.0


def _canonical_tree(taxonomy: Taxonomy):
    return [
        (node.level, sorted(node.members.tolist()), sorted(node.general_tags.tolist()))
        for node in taxonomy.nodes()
    ]


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_attach_is_deterministic_under_repeated_construction(seed):
    rng = np.random.default_rng(seed)
    item_tags = (rng.random((10, 7)) < 0.4).astype(np.float64)
    decisions = []
    trees = []
    for _ in range(2):
        taxonomy = _base_taxonomy()
        decisions.append(attach_tag(taxonomy, item_tags, 6).to_dict())
        trees.append(_canonical_tree(taxonomy))
    assert decisions[0] == decisions[1]
    assert trees[0] == trees[1]
