"""Taxonomy-recovery metrics vs a planted parent array."""

import numpy as np
import pytest

from repro.taxonomy import (
    Taxonomy,
    TaxonomyNode,
    ancestor_f1,
    ancestor_pairs_from_parent,
    evaluate_recovery,
    partition_nmi,
)


class TestAncestorPairs:
    def test_chain(self):
        parent = np.array([-1, 0, 1])  # 0 → 1 → 2
        pairs = ancestor_pairs_from_parent(parent)
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_forest(self):
        parent = np.array([-1, -1, 0, 1])
        pairs = ancestor_pairs_from_parent(parent)
        assert pairs == {(0, 2), (1, 3)}

    def test_empty(self):
        assert ancestor_pairs_from_parent(np.array([-1, -1])) == set()


class TestAncestorF1:
    def test_perfect(self):
        truth = {(0, 1), (0, 2)}
        p, r, f1 = ancestor_f1(truth, truth)
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_empty_prediction(self):
        p, r, f1 = ancestor_f1(set(), {(0, 1)})
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_both_empty(self):
        assert ancestor_f1(set(), set()) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        p, r, f1 = ancestor_f1({(0, 1), (0, 2)}, {(0, 1)})
        assert p == 0.5
        assert r == 1.0


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert partition_nmi(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 3, 3])
        assert partition_nmi(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, size=2000)
        b = rng.integers(0, 2, size=2000)
        assert partition_nmi(a, b) < 0.05

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            partition_nmi(np.array([0]), np.array([0, 1]))

    def test_single_cluster_each(self):
        assert partition_nmi(np.zeros(4, int), np.zeros(4, int)) == 1.0


class TestEvaluateRecovery:
    def test_perfect_taxonomy_scores_high(self):
        # Planted: tags 0,1 top-level; 2,3 under 0; 4,5 under 1.
        parent = np.array([-1, -1, 0, 0, 1, 1])
        child_a = TaxonomyNode(members=np.array([2, 3]), level=1)
        child_b = TaxonomyNode(members=np.array([4, 5]), level=1)
        root = TaxonomyNode(
            members=np.arange(6),
            general_tags=np.array([0, 1]),
            level=0,
            children=[child_a, child_b],
        )
        # Ideal construction would separate 0's subtree from 1's; here both
        # generals sit at the root so predicted pairs over-cover.
        taxo = Taxonomy(root, n_tags=6)
        report = evaluate_recovery(taxo, parent)
        assert report.ancestor_recall == 1.0  # all true pairs recovered
        assert 0 < report.ancestor_precision <= 1.0

    def test_report_row(self):
        parent = np.array([-1, 0])
        node = TaxonomyNode(members=np.array([0, 1]), general_tags=np.array([0, 1]))
        report = evaluate_recovery(Taxonomy(node, 2), parent)
        row = report.as_row()
        assert len(row) == 6
