"""Utility helpers: RNG plumbing, table rendering, timing."""

import numpy as np

from repro.utils import Timer, ensure_rng, format_percent, render_table, spawn


class TestRng:
    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_seed_determinism(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_independent(self):
        children = spawn(ensure_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [c.random() for c in spawn(ensure_rng(1), 2)]
        b = [c.random() for c in spawn(ensure_rng(1), 2)]
        assert a == b


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.0633) == "6.33"
        assert format_percent(0.1, 1) == "10.0"

    def test_render_alignment(self):
        out = render_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = out.split("\n")
        assert len(lines) == 4
        header, sep, *rows = lines
        assert len(header) == len(sep)

    def test_render_title(self):
        out = render_table(["c"], [["v"]], title="Table I")
        assert out.startswith("Table I")

    def test_cells_stringified(self):
        out = render_table(["n"], [[3.14159]])
        assert "3.14159" in out


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0
