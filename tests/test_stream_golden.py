"""Golden regression test for the streaming path.

Mirrors ``test_serve_golden.py`` for ``repro.stream``: a committed
``repro.model/v1`` artifact (``tests/fixtures/stream/golden_model.npz``)
holds a quantised ``dot_bias`` payload over the golden dataset — every
embedding entry is a multiple of 1/4, so reduced scores are *exactly*
representable and bit-stable across BLAS builds.  A committed
``repro.events/v1`` stream (``golden_events.json``) is folded into it,
and ``golden_stream.json`` pins:

* the ingest report (accepted/duplicate counts, new ids);
* the folded provenance block (``meta["stream"]``);
* every folded user's post-fold-in top-10 — items exactly, scores to
  twelve decimals;
* the attach decisions of three new tags routed into a pinned taxonomy
  (paths exactly, scores to twelve decimals).

Any drift in the fold-in solvers, ridge constant, seen-CSR union, attach
routing, or tiebreak shows up here as a hard failure.  Regenerate after
an *intentional* change with::

    PYTHONPATH=src python tests/test_stream_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate, temporal_split
from repro.serve import RecommenderService, export_payload, load_artifact
from repro.stream import StreamState, attach_tags, fold_into_artifact, read_events, write_events
from repro.taxonomy import Taxonomy

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "stream"
ARTIFACT = FIXTURE_DIR / "golden_model.npz"
EVENTS = FIXTURE_DIR / "golden_events.json"
PINNED = FIXTURE_DIR / "golden_stream.json"
K = 10


def _golden_train():
    cfg = SyntheticConfig(
        n_users=24,
        n_items=40,
        branching=(2, 3),
        mean_interactions=10.0,
        seed=17,
        name="stream-golden",
    )
    return temporal_split(generate(cfg)).train


def _golden_events():
    """Pinned stream: existing-user evidence, one new user, one new item."""
    return [
        (0, 7, 1.0),
        (0, 21, 2.0),
        (3, 5, 3.0),
        (3, 30, 4.0),
        (24, 2, 5.0),   # new user
        (24, 11, 6.0),
        (24, 40, 7.0),  # new user × new item
        (5, 40, 8.0),   # existing user touches the new item
    ]


def _golden_taxonomy() -> Taxonomy:
    """Tags 0..8 in a fixed two-level tree; tags 9..11 arrive via attach."""
    parent = np.array([-1, 0, 0, -1, 3, 3, -1, 6, 6], dtype=np.int64)
    return Taxonomy.from_parent_array(parent)


def _golden_psi() -> np.ndarray:
    rng = np.random.default_rng(23)
    psi = (rng.random((40, 12)) < 0.3).astype(np.float64)
    psi[:, 9] = psi[:, 1]   # tag 9 mirrors tag 1 exactly
    psi[:, 10] = psi[:, 4]
    return psi


def _fold():
    artifact = load_artifact(ARTIFACT)
    state = StreamState.from_artifact(artifact)
    report = state.ingest(read_events(EVENTS))
    return artifact, fold_into_artifact(artifact, state), report


@pytest.fixture(scope="module")
def pinned() -> dict:
    return json.loads(PINNED.read_text())


def test_fixture_artifact_is_quantised_and_valid():
    artifact = load_artifact(ARTIFACT)
    assert artifact.meta["schema"] == "repro.model/v1"
    assert artifact.score_fn == "dot_bias"
    for key in ("user", "item", "item_bias"):
        arr = artifact.arrays[key]
        np.testing.assert_array_equal(arr * 4.0, np.round(arr * 4.0))


def test_ingest_report_matches_pins(pinned):
    _, _, report = _fold()
    assert report.accepted == pinned["report"]["accepted"]
    assert report.duplicates == pinned["report"]["duplicates"]
    assert report.new_users == pinned["report"]["new_users"]
    assert report.new_items == pinned["report"]["new_items"]


def test_fold_provenance_matches_pins(pinned):
    _, folded, _ = _fold()
    assert folded.meta["stream"] == pinned["stream"]
    assert folded.n_users == pinned["n_users"]
    assert folded.n_items == pinned["n_items"]


def test_post_foldin_topk_pinned_to_twelve_decimals(pinned):
    _, folded, _ = _fold()
    service = RecommenderService(folded)
    for row, user in enumerate(pinned["users"]):
        items, scores = service.recommend(int(user), k=pinned["k"], exclude_seen=True)
        assert [int(i) for i in items] == pinned["topk"]["items"][row], f"user {user}"
        for served, expected in zip(scores, pinned["topk"]["scores"][row]):
            assert served == pytest.approx(expected, abs=1e-12), f"user {user}"


def test_attach_decisions_pinned(pinned):
    taxonomy = _golden_taxonomy()
    decisions = attach_tags(taxonomy, _golden_psi(), [9, 10, 11])
    assert len(decisions) == len(pinned["attach"])
    for decision, expected in zip(decisions, pinned["attach"]):
        doc = decision.to_dict()
        assert doc["tag"] == expected["tag"]
        assert doc["path"] == expected["path"]
        assert doc["level"] == expected["level"]
        assert doc["general"] == expected["general"]
        assert doc["score"] == pytest.approx(expected["score"], abs=1e-12)
    assert taxonomy.n_tags == 12


def _regenerate() -> None:
    train = _golden_train()
    rng = np.random.default_rng(2024)
    d = 8
    # Multiples of 1/4 in [-2, 2]: dot products are exact in float64.
    user = rng.integers(-8, 9, size=(train.n_users, d)) / 4.0
    item = rng.integers(-8, 9, size=(train.n_items, d)) / 4.0
    bias = rng.integers(-4, 5, size=train.n_items) / 4.0
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    export_payload(
        ARTIFACT,
        score_fn="dot_bias",
        arrays={"user": user, "item": item, "item_bias": bias},
        train=train,
        model_name="GoldenDotBias",
        source="tests/test_stream_golden.py --regenerate",
    )
    write_events(_golden_events(), EVENTS)

    artifact, folded, report = _fold()
    service = RecommenderService(folded)
    users = sorted(set(folded.meta["stream"]["folded_users"]))
    items_out, scores_out = [], []
    for user_id in users:
        items, values = service.recommend(int(user_id), k=K, exclude_seen=True)
        items_out.append([int(i) for i in items])
        scores_out.append([round(float(v), 12) for v in values])

    decisions = attach_tags(_golden_taxonomy(), _golden_psi(), [9, 10, 11])
    doc = {
        "k": K,
        "n_users": folded.n_users,
        "n_items": folded.n_items,
        "report": {
            "accepted": report.accepted,
            "duplicates": report.duplicates,
            "new_users": report.new_users,
            "new_items": report.new_items,
        },
        "stream": folded.meta["stream"],
        "users": users,
        "topk": {"items": items_out, "scores": scores_out},
        "attach": [
            {**d.to_dict(), "score": round(float(d.score), 12)} for d in decisions
        ],
    }
    PINNED.write_text(json.dumps(doc, indent=1) + "\n")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
        print(f"regenerated {ARTIFACT}, {EVENTS} and {PINNED}")  # repro-lint: disable=print-call
    else:
        print(__doc__)  # repro-lint: disable=print-call
