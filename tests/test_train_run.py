"""Run directories, the repro.run/v1 schema, and execute_run."""

import json

import numpy as np
import pytest

from repro.train import RunDir, execute_run, validate_run_result

RUN_ARGS = dict(model="CML", dataset="ciao", scale=0.08, epochs=2, seed=0)


@pytest.fixture(scope="module")
def run_outcome(tmp_path_factory):
    out = tmp_path_factory.mktemp("run") / "cml"
    return execute_run(out_dir=out, checkpoint_every=1, **RUN_ARGS)


class TestRunDirArtifacts:
    def test_all_artifacts_present(self, run_outcome):
        root = run_outcome.run_dir.path
        assert (root / "config.json").exists()
        assert (root / "history.jsonl").exists()
        assert (root / "result.json").exists()
        assert [p.name for p in run_outcome.run_dir.checkpoints()] == [
            "checkpoint_0000.npz",
            "checkpoint_0001.npz",
        ]

    def test_result_validates_and_matches_run(self, run_outcome):
        doc = run_outcome.run_dir.read_result()
        assert validate_run_result(doc) == []
        assert doc["model"] == "CML"
        assert doc["dataset"] == "ciao"
        assert doc["epochs_run"] == 2
        assert doc["checkpoints"] == ["checkpoint_0000.npz", "checkpoint_0001.npz"]
        assert doc["resumed_from"] is None
        assert doc["timing"]["triplets_per_sec"] > 0
        for value in doc["metrics"]["test"].values():
            assert 0.0 <= value <= 1.0

    def test_history_one_line_per_epoch(self, run_outcome):
        records = run_outcome.run_dir.read_history()
        assert [r["epoch"] for r in records] == [0, 1]
        assert records == run_outcome.model.history
        # History must stay deterministic: no wall-clock values in records.
        assert all(set(r) <= {"epoch", "loss", "valid"} for r in records)

    def test_config_json_rebuilds_train_config(self, run_outcome):
        from repro.models import TrainConfig

        doc = run_outcome.run_dir.read_config()
        config = TrainConfig(**doc["config"])
        assert config.epochs == 2
        assert doc["model"] == "CML"
        assert doc["checkpoint_every"] == 1

    def test_cli_resume_reproduces_run(self, run_outcome, tmp_path):
        resumed = execute_run(
            resume=run_outcome.run_dir.checkpoint_path(0), out_dir=tmp_path / "resumed"
        )
        a, b = run_outcome.model.state_dict(), resumed.model.state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)
        assert (
            (tmp_path / "resumed" / "history.jsonl").read_text()
            == run_outcome.run_dir.history_path.read_text()
        )
        doc = resumed.run_dir.read_result()
        assert validate_run_result(doc) == []
        assert doc["resumed_from"] == str(run_outcome.run_dir.checkpoint_path(0))

    def test_resume_requires_embedded_run_info(self, tiny_split, tmp_path):
        from repro.models import CML, TrainConfig
        from repro.train import Trainer, save_checkpoint

        model = CML(tiny_split.train, TrainConfig(dim=8, tag_dim=2, epochs=1, batch_size=256))
        trainer = Trainer(model, split=tiny_split)
        trainer.fit()
        bare = save_checkpoint(tmp_path / "bare.npz", trainer)  # no run_info
        with pytest.raises(ValueError, match="run info"):
            execute_run(resume=bare)


class TestValidator:
    def _valid_doc(self, run_outcome):
        return json.loads(json.dumps(run_outcome.result))

    def test_accepts_real_document(self, run_outcome):
        assert validate_run_result(self._valid_doc(run_outcome)) == []

    def test_rejects_non_object(self):
        assert validate_run_result([]) == ["result is not an object"]

    def test_rejects_wrong_schema(self, run_outcome):
        doc = self._valid_doc(run_outcome)
        doc["schema"] = "repro.bench/v1"
        assert any("schema" in p for p in validate_run_result(doc))

    def test_rejects_missing_keys(self, run_outcome):
        doc = self._valid_doc(run_outcome)
        del doc["metrics"], doc["timing"]
        problems = validate_run_result(doc)
        assert any("metrics" in p for p in problems)
        assert any("timing" in p for p in problems)

    def test_rejects_bad_metrics(self, run_outcome):
        doc = self._valid_doc(run_outcome)
        doc["metrics"]["test"]["ndcg_at_10"] = "high"
        assert any("ndcg_at_10" in p for p in validate_run_result(doc))

    def test_rejects_negative_timing(self, run_outcome):
        doc = self._valid_doc(run_outcome)
        doc["timing"]["train_seconds"] = -1.0
        assert any("train_seconds" in p for p in validate_run_result(doc))

    def test_write_result_refuses_invalid(self, tmp_path):
        run_dir = RunDir(tmp_path / "r")
        with pytest.raises(ValueError, match="invalid run result"):
            run_dir.write_result({"schema": "repro.run/v1"})


class TestRunDirHistoryIO:
    def test_rewrite_then_append_round_trip(self, tmp_path):
        run_dir = RunDir(tmp_path / "r")
        run_dir.rewrite_history([{"epoch": 0, "loss": 1.0}])
        run_dir.append_history({"epoch": 1, "loss": 0.5})
        assert run_dir.read_history() == [
            {"epoch": 0, "loss": 1.0},
            {"epoch": 1, "loss": 0.5},
        ]
