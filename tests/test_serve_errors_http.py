"""Typed serving errors → HTTP status codes, class by class.

Every :class:`ServeError` subclass carries an ``http_status`` and the
endpoint must render it as ``{"error": ..., "type": <class name>}`` with
that code — clients dispatch on the type, monitors on the status class
(4xx caller bug vs 5xx serving trouble).  Tested generically with a stub
service that raises each class on demand, plus the real integration
paths for the codes a production client will actually meet (400 bad
request, 421 misrouted shard).
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.serve import RecommenderService, create_server, export_payload
from repro.serve.errors import (
    ArtifactError,
    BadRequestError,
    SchemaMismatchError,
    ServeError,
    ShardRoutingError,
    UnknownScoreFnError,
)

ERROR_CLASSES = [
    (ServeError, 500),
    (ArtifactError, 503),
    (SchemaMismatchError, 503),
    (UnknownScoreFnError, 501),
    (BadRequestError, 400),
    (ShardRoutingError, 421),
]


class TestStatusAttributes:
    @pytest.mark.parametrize("exc_class,expected", ERROR_CLASSES)
    def test_every_class_carries_its_status(self, exc_class, expected):
        assert exc_class.http_status == expected
        assert exc_class("boom").http_status == expected

    def test_unlisted_subclass_inherits_500(self):
        class CustomServingProblem(ServeError):
            pass

        assert CustomServingProblem.http_status == 500

    def test_hierarchy_is_catchable_as_serve_error(self):
        for exc_class, _ in ERROR_CLASSES:
            assert issubclass(exc_class, ServeError)


class _RaisingService:
    """Stub with the service surface; every request raises a chosen error."""

    class _Artifact:
        model_name = "Stub"
        score_fn = "dense"

    artifact = _Artifact()
    n_users = 5
    n_items = 5

    def __init__(self, exc: Exception):
        self.exc = exc

    def recommend(self, user, k=10, exclude_seen=True):
        raise self.exc

    def score(self, user, items):
        raise self.exc

    def stats(self):
        raise self.exc


def _serve(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _get(base: tuple[str, int], path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(*base, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


class TestWireMapping:
    @pytest.mark.parametrize("exc_class,expected", ERROR_CLASSES)
    def test_each_error_class_maps_to_its_code(self, exc_class, expected):
        server, thread = _serve(_RaisingService(exc_class("deliberate failure")))
        try:
            base = server.server_address[:2]
            for path in ("/recommend?user=0&k=3", "/stats"):
                status, body = _get(base, path)
                assert status == expected, (path, body)
                assert body["type"] == exc_class.__name__
                assert "deliberate failure" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_server_survives_the_whole_error_menu(self):
        """One server, every error class in sequence, still healthy after."""
        service = _RaisingService(ServeError("x"))
        server, thread = _serve(service)
        try:
            base = server.server_address[:2]
            for exc_class, expected in ERROR_CLASSES:
                service.exc = exc_class("rotating failure")
                status, body = _get(base, "/recommend?user=0")
                assert (status, body["type"]) == (expected, exc_class.__name__)
            status, _ = _get(base, "/health")  # health reads only the artifact stub
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


@pytest.fixture(scope="module")
def real_base(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(41)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("errors") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    service = RecommenderService(path, shard=(0, 4))
    server, thread = _serve(service)
    yield server.server_address[:2], service
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestRealPaths:
    def test_bad_request_paths_are_400(self, real_base):
        base, _ = real_base
        for path in (
            "/recommend",  # missing user
            "/recommend?user=abc",
            "/recommend?user=0&k=zero",
            "/recommend?user=0&k=5&exclude_seen=maybe",
            "/recommend?user=999999",
        ):
            status, body = _get(base, path)
            assert status == 400, (path, body)
            assert body["type"] == "BadRequestError"

    def test_misrouted_user_is_421_on_the_wire(self, real_base):
        from repro.serve import shard_for_user

        base, service = real_base
        foreign = next(
            u for u in range(service.n_users) if shard_for_user(u, 4) != 0
        )
        status, body = _get(base, f"/recommend?user={foreign}&k=3")
        assert status == 421
        assert body["type"] == "ShardRoutingError"
        owned = next(
            u for u in range(service.n_users) if shard_for_user(u, 4) == 0
        )
        status, _ = _get(base, f"/recommend?user={owned}&k=3")
        assert status == 200

    def test_unknown_route_stays_404(self, real_base):
        base, _ = real_base
        status, body = _get(base, "/nonsense")
        assert status == 404
        assert "unknown path" in body["error"]
