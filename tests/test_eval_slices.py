"""Sliced evaluation: coldness buckets, multi-K metrics, coverage."""

import numpy as np
import pytest

from repro.data import temporal_split
from repro.eval import (
    catalog_coverage,
    evaluate_by_item_coldness,
    mean_popularity_rank,
    metrics_at,
)
from repro.models import Popularity, Random


@pytest.fixture(scope="module")
def split(tiny_dataset):
    return temporal_split(tiny_dataset)


class TestMetricsAt:
    def test_keys_match_requested_ks(self, split, tiny_dataset):
        out = metrics_at(Popularity(split.train), split, ks=(1, 5, 10))
        assert set(out) == {1, 5, 10}

    def test_recall_monotone_in_k(self, split):
        out = metrics_at(Popularity(split.train), split, ks=(1, 5, 20))
        assert out[1]["recall"] <= out[5]["recall"] <= out[20]["recall"]

    def test_values_in_range(self, split):
        out = metrics_at(Random(split.train), split, ks=(10,))
        assert 0.0 <= out[10]["recall"] <= 1.0
        assert 0.0 <= out[10]["ndcg"] <= 1.0


class TestColdnessBuckets:
    def test_buckets_partition_test_interactions(self, split):
        out = evaluate_by_item_coldness(Popularity(split.train), split, k=10)
        total = sum(b["n_interactions"] for b in out.values())
        assert total == split.test.n_interactions

    def test_three_default_buckets(self, split):
        out = evaluate_by_item_coldness(Popularity(split.train), split)
        assert len(out) == 3

    def test_popularity_fails_on_cold_items(self, split):
        """A popularity ranker cannot hit items unseen in training."""
        out = evaluate_by_item_coldness(Popularity(split.train), split, k=10)
        cold = out["[0,2)"]
        popular = out["[10,inf)"]
        if cold["n_interactions"] and popular["n_interactions"]:
            assert cold["recall"] <= popular["recall"]

    def test_custom_boundaries(self, split):
        out = evaluate_by_item_coldness(
            Popularity(split.train), split, boundaries=(5,)
        )
        assert len(out) == 2


class TestConcentrationMetrics:
    def test_popularity_covers_few_items(self, split):
        pop_cov = catalog_coverage(Popularity(split.train), split, k=10)
        rnd_cov = catalog_coverage(Random(split.train), split, k=10)
        assert pop_cov <= rnd_cov

    def test_coverage_in_unit_interval(self, split):
        assert 0.0 < catalog_coverage(Random(split.train), split, k=10) <= 1.0

    def test_popularity_rank_extremes(self, split):
        pop = mean_popularity_rank(Popularity(split.train), split, k=10)
        rnd = mean_popularity_rank(Random(split.train), split, k=10)
        assert pop > rnd  # popularity recommends the popular end
        assert 0.0 <= rnd <= 1.0
