"""Property-based tests for the vectorised negative sampler.

Hypothesis drives random interaction patterns through
:class:`repro.data.TripletSampler` and checks the invariants the training
loops rely on: sampled negatives never collide with training positives (nor
with held-out positives when ``exclude=`` is given), outputs keep the
``(n_users, n_each)`` int64 contract, and users whose rows are one item
short of complete still receive true negatives via the exact fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset, TripletSampler

pytestmark = pytest.mark.slow


def _dataset(n_users: int, n_items: int, pairs: set[tuple[int, int]]) -> InteractionDataset:
    pairs = sorted(pairs)
    users = np.array([u for u, _ in pairs], dtype=np.int64)
    items = np.array([v for _, v in pairs], dtype=np.int64)
    return InteractionDataset(
        n_users=n_users,
        n_items=n_items,
        n_tags=1,
        user_ids=users,
        item_ids=items,
        timestamps=np.arange(len(pairs), dtype=np.float64),
        item_tags=np.ones((n_items, 1)),
    )


@st.composite
def interaction_patterns(draw):
    n_users = draw(st.integers(min_value=1, max_value=8))
    n_items = draw(st.integers(min_value=2, max_value=30))
    pairs = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n_users - 1),
                st.integers(min_value=0, max_value=n_items - 1),
            ),
            min_size=1,
            max_size=min(60, n_users * (n_items - 1)),  # leave room for a negative
        )
    )
    return n_users, n_items, pairs


@settings(max_examples=60, deadline=None)
@given(pattern=interaction_patterns(), n_each=st.sampled_from([1, 5]), seed=st.integers(0, 2**16))
def test_negatives_are_never_training_positives(pattern, n_each, seed):
    n_users, n_items, pairs = pattern
    train = _dataset(n_users, n_items, pairs)
    sampler = TripletSampler(train, seed=seed)
    users = np.arange(n_users, dtype=np.int64)
    out = sampler.sample_negatives(users, n_each)

    assert out.shape == (n_users, n_each)
    assert out.dtype == np.int64
    assert out.min() >= 0 and out.max() < n_items
    positives = set(pairs)
    complete = {u for u in range(n_users) if sum(p[0] == u for p in pairs) == n_items}
    for u, row in zip(users, out):
        if int(u) in complete:
            continue  # no legal negative exists; entries degrade to uniform
        for v in row:
            assert (int(u), int(v)) not in positives


@settings(max_examples=40, deadline=None)
@given(pattern=interaction_patterns(), seed=st.integers(0, 2**16))
def test_exclude_rejects_held_out_positives_too(pattern, seed):
    n_users, n_items, pairs = pattern
    rng = np.random.default_rng(seed)
    pairs = sorted(pairs)
    cut = max(1, len(pairs) // 2)
    train_pairs, held_pairs = set(pairs[:cut]), set(pairs[cut:])
    if not held_pairs:
        held_pairs = {pairs[0]}
    train = _dataset(n_users, n_items, train_pairs)
    held = _dataset(n_users, n_items, held_pairs)
    sampler = TripletSampler(train, seed=rng, exclude=held)
    users = np.arange(n_users, dtype=np.int64)
    out = sampler.sample_negatives(users, 5)

    forbidden = train_pairs | held_pairs
    complete = {u for u in range(n_users) if sum(p[0] == u for p in forbidden) == n_items}
    for u, row in zip(users, out):
        if int(u) in complete:
            continue
        for v in row:
            assert (int(u), int(v)) not in forbidden


@settings(max_examples=30, deadline=None)
@given(
    n_items=st.integers(min_value=2, max_value=40),
    missing=st.integers(min_value=0, max_value=39),
    n_each=st.sampled_from([1, 5]),
    seed=st.integers(0, 2**16),
)
def test_near_complete_row_gets_the_single_legal_negative(n_items, missing, n_each, seed):
    missing %= n_items
    pairs = {(0, v) for v in range(n_items) if v != missing}
    train = _dataset(1, n_items, pairs)
    sampler = TripletSampler(train, seed=seed)
    out = sampler.sample_negatives(np.array([0, 0, 0], dtype=np.int64), n_each)
    assert (out == missing).all()


@settings(max_examples=30, deadline=None)
@given(pattern=interaction_patterns(), seed=st.integers(0, 2**16))
def test_reference_honours_the_same_contract(pattern, seed):
    n_users, n_items, pairs = pattern
    train = _dataset(n_users, n_items, pairs)
    sampler = TripletSampler(train, seed=seed)
    users = np.arange(n_users, dtype=np.int64)
    out = sampler.sample_negatives_reference(users, 3)
    assert out.shape == (n_users, 3)
    assert out.dtype == np.int64
    positives = set(pairs)
    complete = {u for u in range(n_users) if sum(p[0] == u for p in pairs) == n_items}
    for u, row in zip(users, out):
        if int(u) in complete:
            continue
        for v in row:
            assert (int(u), int(v)) not in positives


def test_epoch_batches_cover_all_positives():
    rng = np.random.default_rng(0)
    pairs = {(int(u), int(v)) for u, v in zip(rng.integers(0, 6, 40), rng.integers(0, 15, 40))}
    train = _dataset(6, 15, pairs)
    sampler = TripletSampler(train, n_negatives=2, seed=1)
    seen = []
    for users, pos, neg in sampler.epoch(batch_size=7):
        assert neg.shape == (len(users), 2)
        seen.extend(zip(users.tolist(), pos.tolist()))
    assert sorted(seen) == sorted(pairs)
