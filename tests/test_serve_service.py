"""``RecommenderService`` behaviour: cache, index, telemetry, bad requests.

The parity harness (``test_serve_parity.py``) pins the rankings; this
file pins the serving machinery *around* the rankings — the LRU cache's
bookkeeping, the precomputed index's prefix property, the stats
snapshot, and the typed rejection of malformed requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import rank_topk
from repro.serve import BadRequestError, RecommenderService, export_payload, load_artifact


@pytest.fixture(scope="module")
def artifact(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(42)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("svc") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return load_artifact(path)


@pytest.fixture()
def service(artifact):
    return RecommenderService(artifact)


class TestRecommend:
    def test_matches_manual_masked_ranking(self, service, artifact):
        scores = artifact.arrays["scores"].astype(np.float64).copy()
        for user in (0, 7, artifact.n_users - 1):
            row = scores[user].copy()
            row[artifact.seen_items(user)] = -np.inf
            expected = rank_topk(row[None, :], 10)[0]
            items, values = service.recommend(user, k=10)
            np.testing.assert_array_equal(items, expected)
            np.testing.assert_array_equal(values, row[expected])

    def test_k_is_clamped_to_catalogue(self, service, artifact):
        items, values = service.recommend(0, k=10**6)
        assert len(items) == artifact.n_items == len(values)

    def test_exclude_seen_false_ranks_everything(self, service, artifact):
        items, values = service.recommend(3, k=artifact.n_items, exclude_seen=False)
        assert np.all(values > -np.inf)
        np.testing.assert_array_equal(np.sort(items), np.arange(artifact.n_items))

    def test_results_are_copies(self, service):
        items, _ = service.recommend(1, k=5)
        items[:] = -1
        again, _ = service.recommend(1, k=5)
        assert np.all(again >= 0)

    def test_path_constructor(self, artifact, tiny_split, tmp_path):
        path = tmp_path / "roundtrip.npz"
        export_payload(
            path,
            score_fn="dense",
            arrays={"scores": artifact.arrays["scores"]},
            train=tiny_split.train,
            model_name="Dense",
        )
        from_path = RecommenderService(path)
        items_a, _ = from_path.recommend(2, k=7)
        items_b, _ = RecommenderService(artifact).recommend(2, k=7)
        np.testing.assert_array_equal(items_a, items_b)


class TestBadRequests:
    @pytest.mark.parametrize("user", [-1, 10**6, "x", None])
    def test_bad_user_rejected(self, service, user):
        with pytest.raises(BadRequestError):
            service.recommend(user, k=5)

    @pytest.mark.parametrize("k", [0, -3])
    def test_non_positive_k_rejected(self, service, k):
        with pytest.raises(BadRequestError, match="k must be positive"):
            service.recommend(0, k=k)

    def test_non_integer_k_rejected(self, service):
        with pytest.raises(BadRequestError, match="k must be an integer"):
            service.recommend(0, k="ten")

    def test_out_of_range_items_rejected(self, service, artifact):
        with pytest.raises(BadRequestError, match="out of range"):
            service.score(0, [0, artifact.n_items])
        with pytest.raises(BadRequestError, match="out of range"):
            service.score(0, [-1])

    def test_non_flat_items_rejected(self, service):
        with pytest.raises(BadRequestError, match="flat"):
            service.score(0, [[1, 2], [3, 4]])

    def test_non_integer_items_rejected(self, service):
        with pytest.raises(BadRequestError):
            service.score(0, ["a", "b"])

    def test_seen_items_validates_user(self, service):
        with pytest.raises(BadRequestError):
            service.seen_items(-2)


class TestScore:
    def test_returns_unmasked_scores(self, service, artifact):
        user = 4
        items = list(artifact.seen_items(user)[:3]) + [0, artifact.n_items - 1]
        values = service.score(user, items)
        np.testing.assert_allclose(
            values, artifact.arrays["scores"][user, np.asarray(items)], atol=0.0
        )
        assert np.all(values > -np.inf)

    def test_empty_items(self, service):
        assert service.score(0, []).shape == (0,)


class TestLRUCache:
    def test_capacity_is_never_exceeded_and_evicts_lru(self, artifact):
        service = RecommenderService(artifact, cache_size=2)
        service.recommend(0, k=5)
        service.recommend(1, k=5)
        service.recommend(2, k=5)  # evicts (0, 5, True)
        assert service.cache_size == 2
        stats = service.stats()["cache"]
        assert stats["evictions"] == 1
        assert stats["misses"] == 3
        assert stats["hits"] == 0

    def test_hits_on_repeat_and_distinct_keys_miss(self, artifact):
        service = RecommenderService(artifact, cache_size=8)
        service.recommend(0, k=5)
        service.recommend(0, k=5)
        service.recommend(0, k=5, exclude_seen=False)  # different key
        service.recommend(0, k=6)  # different key
        stats = service.stats()["cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert service.cache_size == 3

    def test_cached_and_fresh_results_identical(self, artifact):
        cached = RecommenderService(artifact, cache_size=16)
        uncached = RecommenderService(artifact, cache_size=0)
        first = cached.recommend(5, k=9)
        again = cached.recommend(5, k=9)
        fresh = uncached.recommend(5, k=9)
        for a, b in ((first, again), (first, fresh)):
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])

    def test_zero_capacity_disables_caching(self, artifact):
        service = RecommenderService(artifact, cache_size=0)
        service.recommend(0, k=5)
        service.recommend(0, k=5)
        stats = service.stats()["cache"]
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert service.cache_size == 0

    def test_invalidate_clears_and_recomputes_identically(self, artifact):
        service = RecommenderService(artifact, cache_size=16, index_k=12)
        before = service.recommend(3, k=8)
        service.invalidate()
        assert service.cache_size == 0
        assert service.stats()["index"] is None
        assert service.stats()["cache"]["invalidations"] == 1
        after = service.recommend(3, k=8)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestIndex:
    def test_index_prefix_equals_direct_computation(self, artifact):
        indexed = RecommenderService(artifact, cache_size=0, index_k=20)
        direct = RecommenderService(artifact, cache_size=0)
        for user in range(0, artifact.n_users, 5):
            for k in (1, 7, 20):
                a_items, a_scores = indexed.recommend(user, k=k)
                b_items, b_scores = direct.recommend(user, k=k)
                np.testing.assert_array_equal(a_items, b_items)
                np.testing.assert_array_equal(a_scores, b_scores)

    def test_requests_beyond_index_fall_back(self, artifact):
        indexed = RecommenderService(artifact, cache_size=0, index_k=5)
        direct = RecommenderService(artifact, cache_size=0)
        a_items, _ = indexed.recommend(0, k=30)
        b_items, _ = direct.recommend(0, k=30)
        np.testing.assert_array_equal(a_items, b_items)

    def test_index_only_serves_matching_exclude_seen(self, artifact):
        indexed = RecommenderService(artifact, cache_size=0, index_k=20)
        direct = RecommenderService(artifact, cache_size=0)
        a_items, _ = indexed.recommend(0, k=10, exclude_seen=False)
        b_items, _ = direct.recommend(0, k=10, exclude_seen=False)
        np.testing.assert_array_equal(a_items, b_items)

    def test_bad_index_k_rejected(self, artifact):
        with pytest.raises(BadRequestError):
            RecommenderService(artifact, index_k=-4)

    def test_stats_reports_index(self, artifact):
        service = RecommenderService(artifact, index_k=15)
        assert service.stats()["index"] == {"k": 15, "exclude_seen": True}


class TestStats:
    def test_counters_reconcile(self, service):
        for user in range(4):
            service.recommend(user, k=3)
        service.score(0, [1, 2])
        stats = service.stats()
        assert stats["requests"] == {"recommend": 4, "score": 1, "total": 5}
        cache = stats["cache"]
        assert cache["hits"] + cache["misses"] == 4
        lat = stats["latency"]
        assert lat["count"] == 5
        assert lat["total_seconds"] >= lat["max_seconds"] >= 0.0
        assert lat["mean_seconds"] == pytest.approx(lat["total_seconds"] / 5)
        assert stats["uptime_seconds"] >= 0.0
        assert stats["model"] == "Dense"
        assert stats["score_fn"] == "dense"

    def test_rejected_requests_do_not_count(self, service):
        with pytest.raises(BadRequestError):
            service.recommend(-1, k=5)
        assert service.stats()["requests"]["total"] == 0
