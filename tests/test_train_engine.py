"""Trainer engine: legacy-loop equivalence, early stopping, snapshots."""

import numpy as np
import pytest

from repro.autodiff import no_grad
from repro.data import TripletSampler
from repro.eval import evaluate
from repro.models import CML, NGCF, TrainConfig, create_model
from repro.train import (
    BestSnapshot,
    Callback,
    EarlyStopping,
    EpochLogger,
    ModelHooks,
    Trainer,
    default_callbacks,
    snapshot_state_dict,
)


def _config(**overrides):
    defaults = dict(dim=8, tag_dim=2, epochs=4, batch_size=256, seed=3)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def _legacy_fit(model, split):
    """Verbatim reimplementation of the pre-refactor ``Recommender.fit``."""
    config = model.config
    sampler = TripletSampler(model.train_data, n_negatives=config.n_negatives, seed=model.rng)
    optimizer = model.make_optimizer()
    best_score = -np.inf
    best_state = None
    bad_rounds = 0
    for epoch in range(config.epochs):
        model.begin_epoch(epoch)
        epoch_loss = 0.0
        n_batches = 0
        for users, pos, neg in sampler.epoch(config.batch_size):
            optimizer.zero_grad()
            loss = model.loss_batch(users, pos, neg)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        model.end_epoch(epoch)
        record = {"epoch": epoch, "loss": epoch_loss / max(n_batches, 1)}
        if config.eval_every and split is not None and (epoch + 1) % config.eval_every == 0:
            with no_grad():
                result = evaluate(model, split, on="valid")
            record["valid"] = result.mean()
            if result.mean() > best_score:
                best_score = result.mean()
                best_state = {k: v.copy() for k, v in model.state_dict().items()}
                bad_rounds = 0
            else:
                bad_rounds += 1
            if bad_rounds > config.patience:
                model.history.append(record)
                break
        model.history.append(record)
    if best_state is not None:
        model.load_state_dict(best_state)
    return model


class TestLegacyEquivalence:
    """The fit shim must be bit-compatible with the historical loop."""

    @pytest.mark.parametrize(
        "name,overrides",
        [
            ("CML", dict(eval_every=2, patience=1)),
            ("BPRMF", dict(eval_every=1, patience=0)),
            ("TaxoRec", dict(dim=16, tag_dim=4, eval_every=2, patience=5, taxo_rebuild_every=2)),
        ],
    )
    def test_fit_matches_legacy_loop(self, tiny_split, name, overrides):
        shim = create_model(name, tiny_split.train, _config(**overrides))
        shim.fit(tiny_split)
        legacy = create_model(name, tiny_split.train, _config(**overrides))
        _legacy_fit(legacy, tiny_split)
        a, b = shim.state_dict(), legacy.state_dict()
        assert sorted(a) == sorted(b)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)
        assert shim.history == legacy.history


class _ScriptedEval:
    """Deterministic stand-in validation scores, one per eval call."""

    def __init__(self, scores):
        self.scores = list(scores)
        self.calls = 0

    def __call__(self, model, split):
        score = self.scores[self.calls]
        self.calls += 1
        return score


class _StateSpy(Callback):
    """Captures deep-copied weights at chosen moments."""

    def __init__(self, at_epoch=None):
        self.at_epoch = at_epoch
        self.epoch_state = None
        self.final_state = None

    def on_epoch_end(self, trainer, epoch, record):
        if epoch == self.at_epoch:
            self.epoch_state = snapshot_state_dict(trainer.model)

    def on_train_end(self, trainer):
        self.final_state = snapshot_state_dict(trainer.model)


def _trainer(model, split, eval_fn, extra=(), patience=None):
    callbacks = [
        ModelHooks(),
        BestSnapshot(),
        EarlyStopping(patience=patience),
        EpochLogger(),
        *extra,
    ]
    return Trainer(model, split=split, callbacks=callbacks, eval_fn=eval_fn)


class TestEarlyStopping:
    def test_stops_after_patience_exceeded(self, tiny_split):
        model = CML(tiny_split.train, _config(epochs=10, eval_every=1, patience=1))
        trainer = _trainer(model, tiny_split, _ScriptedEval([1.0, 0.5, 0.4, 0.3, 0.2]))
        trainer.fit()
        # Best at epoch 0, then two bad rounds > patience=1 → stop at epoch 2.
        assert trainer.state.stop
        assert trainer.state.stop_reason == "early_stopping"
        assert [r["epoch"] for r in model.history] == [0, 1, 2]

    def test_patience_counter_resets_on_improvement(self, tiny_split):
        model = CML(tiny_split.train, _config(epochs=10, eval_every=1, patience=1))
        scores = [0.1, 0.2, 0.15, 0.3, 0.05, 0.04, 0.03]
        trainer = _trainer(model, tiny_split, _ScriptedEval(scores))
        trainer.fit()
        # Improvements at 0, 1, 3; bad rounds at 2 (reset by 3), then 4 and 5.
        assert trainer.state.best_epoch == 3
        assert [r["epoch"] for r in model.history] == [0, 1, 2, 3, 4, 5]

    def test_history_has_one_entry_per_executed_epoch_on_break(self, tiny_split):
        model = CML(tiny_split.train, _config(epochs=10, eval_every=1, patience=0))
        trainer = _trainer(model, tiny_split, _ScriptedEval([1.0, 0.5, 0.4]))
        trainer.fit()
        epochs = [r["epoch"] for r in model.history]
        assert epochs == sorted(set(epochs))  # no duplicates, no gaps
        assert len(model.history) == trainer.state.epoch
        assert all("valid" in r for r in model.history)

    def test_no_early_stop_without_validation(self, tiny_split):
        model = CML(tiny_split.train, _config(epochs=3, eval_every=0))
        trainer = _trainer(model, tiny_split, _ScriptedEval([]))
        trainer.fit()
        assert not trainer.state.stop
        assert len(model.history) == 3
        assert all("valid" not in r for r in model.history)

    def test_restores_best_on_stop(self, tiny_split):
        model = CML(tiny_split.train, _config(epochs=10, eval_every=1, patience=1))
        spy = _StateSpy(at_epoch=0)
        trainer = _trainer(model, tiny_split, _ScriptedEval([1.0, 0.5, 0.4]), extra=[spy])
        trainer.fit()
        restored = model.state_dict()
        for key, arr in spy.epoch_state.items():
            np.testing.assert_array_equal(restored[key], arr, err_msg=key)


class TestBestSnapshotRegression:
    """Training past the best epoch must restore the *best* weights.

    Regression for the latent snapshot bug: parameters held in list
    attributes (NGCF's per-layer ``W_self``/``W_inter``) were silently
    missing from ``state_dict`` snapshots, so "restore the best epoch"
    kept their final values.
    """

    def test_restored_weights_differ_from_final(self, tiny_split):
        config = _config(dim=16, tag_dim=4, epochs=4, eval_every=1, patience=10, lr=5e-2)
        model = NGCF(tiny_split.train, config)
        # Pre-restore finals must be captured before BestSnapshot's
        # on_train_end runs, so the spy goes first in the callback list.
        spy = _StateSpy()
        trainer = Trainer(
            model,
            split=tiny_split,
            callbacks=[spy, ModelHooks(), BestSnapshot(), EarlyStopping(), EpochLogger()],
            eval_fn=_ScriptedEval([1.0, 0.0, 0.0, 0.0]),
        )
        trainer.fit()
        assert any(key.startswith("W_self.") for key in model.state_dict())
        restored = model.state_dict()
        # Restored == the epoch-0 best snapshot, for every parameter.
        for key, arr in trainer.state.best_state.items():
            np.testing.assert_array_equal(restored[key], arr, err_msg=key)
        # ... and the layer weights genuinely moved after the best epoch.
        changed = [
            key
            for key in restored
            if not np.array_equal(restored[key], spy.final_state[key])
        ]
        assert any(key.startswith(("W_self.", "W_inter.")) for key in changed)

    def test_snapshot_is_deep_copied(self, tiny_split):
        model = CML(tiny_split.train, _config())
        snap = snapshot_state_dict(model)
        model.user_emb.data += 1.0
        assert not np.array_equal(snap["user_emb"], model.user_emb.data)


class TestDefaultCallbacks:
    def test_default_stack_composition(self):
        callbacks = default_callbacks(_config())
        kinds = [type(cb).__name__ for cb in callbacks]
        assert kinds == ["ModelHooks", "BestSnapshot", "EarlyStopping", "EpochLogger"]

    def test_model_hooks_preserve_epoch_ordering(self, tiny_split):
        calls = []

        class Probe(CML):
            def begin_epoch(self, epoch):
                calls.append(("begin", epoch))

            def end_epoch(self, epoch):
                calls.append(("end", epoch))
                super().end_epoch(epoch)

        model = Probe(tiny_split.train, _config(epochs=2))
        Trainer(model, split=tiny_split).fit()
        assert calls == [("begin", 0), ("end", 0), ("begin", 1), ("end", 1)]
