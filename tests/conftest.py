"""Shared fixtures: tiny deterministic datasets so model tests stay fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset, SyntheticConfig, generate, temporal_split


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A small taxonomy-planted dataset shared across model tests."""
    config = SyntheticConfig(
        n_users=60,
        n_items=90,
        branching=(3, 3),
        mean_interactions=18.0,
        seed=7,
        name="tiny",
    )
    return generate(config)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return temporal_split(tiny_dataset)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
