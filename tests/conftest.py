"""Shared fixtures: tiny deterministic datasets so model tests stay fast.

Also registers the Hypothesis settings profiles used by the test tiers:

* ``dev`` (default) — Hypothesis defaults: fresh random examples per run,
  the strongest configuration for finding new counterexamples locally.
* ``ci`` — fixed-seed/derandomized with no deadline, so CI runs are
  reproducible and immune to machine-speed flakiness.

Select with ``REPRO_HYPOTHESIS_PROFILE=ci pytest ...`` (CI sets this).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import InteractionDataset, SyntheticConfig, generate, temporal_split

try:
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile("ci", derandomize=True, deadline=None)
    _hypothesis_settings.register_profile("dev")
    _hypothesis_settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # hypothesis is an optional dev dependency
    pass


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A small taxonomy-planted dataset shared across model tests."""
    config = SyntheticConfig(
        n_users=60,
        n_items=90,
        branching=(3, 3),
        mean_interactions=18.0,
        seed=7,
        name="tiny",
    )
    return generate(config)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return temporal_split(tiny_dataset)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_run_dir(tmp_path_factory):
    """A completed ``repro.run/v1`` run directory with per-epoch checkpoints.

    Shared by the serve export/CLI tests: 2 epochs of CML on the smallest
    ciao scale, checkpointed every epoch, so both ``checkpoint_0000.npz``
    and ``checkpoint_0001.npz`` exist with embedded run info.
    """
    from repro.train import execute_run

    out_dir = tmp_path_factory.mktemp("run") / "cml"
    outcome = execute_run(
        model="CML",
        dataset="ciao",
        scale=0.08,
        epochs=2,
        seed=0,
        out_dir=out_dir,
        checkpoint_every=1,
    )
    return outcome.run_dir.path
