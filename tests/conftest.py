"""Shared fixtures: tiny deterministic datasets so model tests stay fast.

Also registers the Hypothesis settings profiles used by the test tiers:

* ``dev`` (default) — Hypothesis defaults: fresh random examples per run,
  the strongest configuration for finding new counterexamples locally.
* ``ci`` — fixed-seed/derandomized with no deadline, so CI runs are
  reproducible and immune to machine-speed flakiness.

Select with ``REPRO_HYPOTHESIS_PROFILE=ci pytest ...`` (CI sets this).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import InteractionDataset, SyntheticConfig, generate, temporal_split

try:
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile("ci", derandomize=True, deadline=None)
    _hypothesis_settings.register_profile("dev")
    _hypothesis_settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # hypothesis is an optional dev dependency
    pass


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A small taxonomy-planted dataset shared across model tests."""
    config = SyntheticConfig(
        n_users=60,
        n_items=90,
        branching=(3, 3),
        mean_interactions=18.0,
        seed=7,
        name="tiny",
    )
    return generate(config)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return temporal_split(tiny_dataset)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_run_dir(tmp_path_factory):
    """A completed ``repro.run/v1`` run directory with per-epoch checkpoints.

    Shared by the serve export/CLI tests: 2 epochs of CML on the smallest
    ciao scale, checkpointed every epoch, so both ``checkpoint_0000.npz``
    and ``checkpoint_0001.npz`` exist with embedded run info.
    """
    from repro.train import execute_run

    out_dir = tmp_path_factory.mktemp("run") / "cml"
    outcome = execute_run(
        model="CML",
        dataset="ciao",
        scale=0.08,
        epochs=2,
        seed=0,
        out_dir=out_dir,
        checkpoint_every=1,
    )
    return outcome.run_dir.path


def _lorentz_rows(rng, n: int, d: int, scale: float = 0.8) -> np.ndarray:
    spatial = rng.normal(0.0, scale, size=(n, d - 1))
    time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
    return np.ascontiguousarray(np.concatenate([time, spatial], axis=-1))


def make_frozen_payload(
    score_fn: str, n_users: int = 24, n_items: int = 200, d: int = 8, seed: int = 0
) -> dict:
    """Synthetic payload for one frozen score-fn id (shared by the
    retrieval suites); every array satisfies ``check_payload``."""
    r = np.random.default_rng(seed)
    if score_fn == "dot":
        return {"user": r.normal(size=(n_users, d)), "item": r.normal(size=(n_items, d))}
    if score_fn == "dot_bias":
        return {
            "user": r.normal(size=(n_users, d)),
            "item": r.normal(size=(n_items, d)),
            "item_bias": r.normal(size=n_items),
        }
    if score_fn == "dot_aspect":
        return {
            "user": r.normal(size=(n_users, d)),
            "item": r.normal(size=(n_items, d)),
            "user_aspect": r.normal(size=(n_users, d)),
            "item_aspect": r.normal(size=(n_items, d)),
            "aspect_weight": np.asarray(0.37),
        }
    if score_fn == "neg_sq_euclid":
        return {"user": r.normal(size=(n_users, d)), "item": r.normal(size=(n_items, d))}
    if score_fn == "neg_sq_lorentz":
        return {"user": _lorentz_rows(r, n_users, d), "item": _lorentz_rows(r, n_items, d)}
    if score_fn in ("two_channel_euclid", "two_channel_lorentz"):
        rows = _lorentz_rows if score_fn == "two_channel_lorentz" else (
            lambda rr, n, dd: rr.normal(size=(n, dd))
        )
        return {
            "user_ir": rows(r, n_users, d),
            "item_ir": rows(r, n_items, d),
            "user_tg": rows(r, n_users, d),
            "item_tg": rows(r, n_items, d),
            "alpha": r.uniform(0.1, 0.9, size=n_users),
        }
    if score_fn == "dense":
        return {"scores": r.normal(size=(n_users, n_items))}
    raise ValueError(f"no synthetic payload for score_fn {score_fn!r}")


def make_seen_csr(rng, n_users: int, n_items: int, per_user: int = 6):
    """A small seen-CSR (``indptr``, ``indices``) with sorted rows."""
    rows = [
        np.sort(rng.choice(n_items, size=min(per_user, n_items), replace=False))
        for _ in range(n_users)
    ]
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(row) for row in rows])
    indices = np.concatenate(rows).astype(np.int64)
    return indptr, indices


@pytest.fixture(scope="session")
def frozen_payload():
    """Factory fixture over :func:`make_frozen_payload`."""
    return make_frozen_payload
