"""Learning-signal tests: key models must beat random ranking after training."""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import TrainConfig, create_model


class RandomModel:
    def __init__(self, n_items, seed=0):
        self.n_items = n_items
        self.rng = np.random.default_rng(seed)

    def score_users(self, users):
        return self.rng.random((len(users), self.n_items))


@pytest.fixture(scope="module")
def random_score(tiny_split):
    model = RandomModel(tiny_split.train.n_items)
    return evaluate(model, tiny_split, on="test").mean()


def _train_and_eval(name, tiny_split, **overrides):
    defaults = dict(dim=16, tag_dim=4, epochs=30, batch_size=256, seed=0)
    defaults.update(overrides)
    config = TrainConfig(**defaults)
    model = create_model(name, tiny_split.train, config)
    model.fit(tiny_split)
    return evaluate(model, tiny_split, on="test").mean()


class TestBeatsRandom:
    """One test per model family; tiny data, so thresholds are lenient."""

    def test_bprmf(self, tiny_split, random_score):
        assert _train_and_eval("BPRMF", tiny_split, lr=5e-3) > random_score

    def test_nmf(self, tiny_split, random_score):
        assert _train_and_eval("NMF", tiny_split, epochs=50) > random_score

    def test_cml(self, tiny_split, random_score):
        assert _train_and_eval("CML", tiny_split, lr=5e-3, margin=0.5) > random_score

    def test_hyperml(self, tiny_split, random_score):
        assert _train_and_eval("HyperML", tiny_split, lr=1.0, margin=2.0) > random_score

    def test_lightgcn(self, tiny_split, random_score):
        assert _train_and_eval("LightGCN", tiny_split, lr=5e-3, n_layers=2) > random_score

    def test_hgcf(self, tiny_split, random_score):
        assert (
            _train_and_eval("HGCF", tiny_split, lr=1.0, margin=2.0, n_layers=1)
            > random_score
        )

    def test_taxorec(self, tiny_split, random_score):
        assert (
            _train_and_eval(
                "TaxoRec", tiny_split, lr=1.0, margin=2.0, n_layers=1, taxo_lambda=0.05
            )
            > random_score
        )


class TestTunedConfigs:
    def test_tuned_config_known_models(self):
        from repro.models.defaults import tuned_config

        for name in ("TaxoRec", "BPRMF", "HGCF"):
            config = tuned_config(name, "ciao")
            assert config.dim == 64
            assert config.batch_size == 1024

    def test_tuned_config_override(self):
        from repro.models.defaults import tuned_config

        config = tuned_config("TaxoRec", "yelp", epochs=7, margin=9.0)
        assert config.epochs == 7
        assert config.margin == 9.0

    def test_tuned_config_unknown_model_uses_base(self):
        from repro.models.defaults import tuned_config

        config = tuned_config("SomethingElse")
        assert config.batch_size == 1024
