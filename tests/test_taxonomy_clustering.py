"""Poincaré k-means and the adaptive clustering (Algorithm 1)."""

import numpy as np
import pytest

from repro.manifolds import PoincareBall
from repro.taxonomy import adaptive_cluster, poincare_kmeans

ball = PoincareBall()


def two_blobs(rng, n=20, sep=0.5):
    a = ball.proj(rng.normal(0.0, 0.05, size=(n, 2)) + np.array([sep, 0.0]))
    b = ball.proj(rng.normal(0.0, 0.05, size=(n, 2)) + np.array([-sep, 0.0]))
    return np.concatenate([a, b])


class TestPoincareKMeans:
    def test_separable_blobs_recovered(self, rng):
        pts = two_blobs(rng)
        labels, centroids = poincare_kmeans(pts, 2, rng=0)
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_centroids_inside_ball(self, rng):
        pts = two_blobs(rng)
        _, centroids = poincare_kmeans(pts, 2, rng=0)
        assert (np.linalg.norm(centroids, axis=1) < 1.0).all()

    def test_k_clamped_to_n(self, rng):
        pts = ball.proj(rng.normal(scale=0.2, size=(2, 3)))
        labels, centroids = poincare_kmeans(pts, 5, rng=0)
        assert centroids.shape[0] == 2

    def test_empty_input(self):
        labels, centroids = poincare_kmeans(np.zeros((0, 3)), 2)
        assert len(labels) == 0

    def test_deterministic_with_seed(self, rng):
        pts = two_blobs(rng)
        l1, _ = poincare_kmeans(pts, 2, rng=3)
        l2, _ = poincare_kmeans(pts, 2, rng=3)
        np.testing.assert_array_equal(l1, l2)

    def test_all_points_assigned(self, rng):
        pts = two_blobs(rng, n=15)
        labels, _ = poincare_kmeans(pts, 3, rng=0)
        assert len(labels) == 30
        assert labels.min() >= 0 and labels.max() < 3


class TestAdaptiveCluster:
    @pytest.fixture()
    def planted(self, rng):
        """Two tag groups + one general tag that co-occurs with everything."""
        n_items = 60
        item_tags = np.zeros((n_items, 5))
        item_tags[:, 0] = 1.0  # general tag on every item
        item_tags[:30, 1] = 1.0
        item_tags[:30, 2] = (rng.random(30) > 0.5).astype(float)
        item_tags[30:, 3] = 1.0
        item_tags[30:, 4] = (rng.random(30) > 0.5).astype(float)
        emb = np.zeros((5, 2))
        emb[0] = [0.0, 0.01]
        emb[1] = [0.5, 0.1]
        emb[2] = [0.55, 0.05]
        emb[3] = [-0.5, -0.1]
        emb[4] = [-0.55, -0.05]
        return ball.proj(emb), item_tags

    def test_general_tag_scores_below_specifics(self, planted):
        """The ubiquitous tag is the least representative of its group."""
        from repro.taxonomy import poincare_kmeans, score_tags

        emb, item_tags = planted
        labels, _ = poincare_kmeans(emb, 2, rng=0)
        groups = [np.arange(5)[labels == c] for c in range(2)]
        scores = score_tags(item_tags, groups)
        for group, group_scores in zip(groups, scores):
            if 0 in group:
                general_score = group_scores[list(group).index(0)]
                others = [s for t, s in zip(group, group_scores) if t != 0]
                assert general_score < min(others)

    def test_general_tag_pushed_up(self, planted):
        """With δ between the general and specific scores, tag 0 is pushed."""
        emb, item_tags = planted
        groups, scores, pushed = adaptive_cluster(
            np.arange(5), emb, item_tags, k=2, delta=0.63, rng=0
        )
        assert 0 in pushed.tolist()

    def test_specific_tags_stay_grouped(self, planted):
        emb, item_tags = planted
        groups, _, _ = adaptive_cluster(np.arange(5), emb, item_tags, k=2, delta=0.3, rng=0)
        flat = [set(g.tolist()) for g in groups]
        assert any({1, 2} <= g for g in flat)
        assert any({3, 4} <= g for g in flat)

    def test_scores_aligned_with_groups(self, planted):
        emb, item_tags = planted
        groups, scores, _ = adaptive_cluster(np.arange(5), emb, item_tags, k=2, delta=0.3, rng=0)
        assert [len(g) for g in groups] == [len(s) for s in scores]

    def test_small_subset_short_circuits(self, planted):
        emb, item_tags = planted
        groups, scores, pushed = adaptive_cluster(
            np.array([1]), emb, item_tags, k=3, delta=0.3, rng=0
        )
        assert len(pushed) == 0
        assert [g.tolist() for g in groups] == [[1]]

    def test_extreme_delta_pushes_everything(self, planted):
        emb, item_tags = planted
        groups, _, pushed = adaptive_cluster(
            np.arange(5), emb, item_tags, k=2, delta=1.1, rng=0
        )
        assert len(pushed) == 5
        assert all(len(g) == 0 for g in groups) or len(groups) == 0
