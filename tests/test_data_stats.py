"""Dataset statistics (Table I machinery)."""

import numpy as np

from repro.data import InteractionDataset, compute_stats


def make(tag_parent=None):
    return InteractionDataset(
        n_users=2,
        n_items=3,
        n_tags=3,
        user_ids=np.array([0, 1, 1]),
        item_ids=np.array([0, 1, 2]),
        timestamps=np.zeros(3),
        item_tags=np.array([[1, 1, 0], [0, 1, 0], [0, 0, 0]], dtype=float),
        tag_parent=tag_parent,
    )


class TestComputeStats:
    def test_counts(self):
        s = compute_stats(make())
        assert s.n_users == 2
        assert s.n_items == 3
        assert s.n_interactions == 3
        assert s.n_tags == 3

    def test_density_percent(self):
        s = compute_stats(make())
        assert s.density_percent == 100.0 * 3 / 6

    def test_mean_tags_per_item(self):
        s = compute_stats(make())
        assert s.mean_tags_per_item == 1.0

    def test_depth_none_without_parent(self):
        assert compute_stats(make()).taxonomy_depth is None

    def test_depth_with_parent(self):
        s = compute_stats(make(tag_parent=np.array([-1, 0, 1])))
        assert s.taxonomy_depth == 3

    def test_as_row(self):
        row = compute_stats(make()).as_row()
        assert len(row) == 8
        assert row[-1] == "-"
