"""Incremental taxonomy attach: routing, the tie fix, checkpoint travel.

The regression at the heart of this file: taxonomy argmaxes used to
resolve equal scores by *array position*, which silently depends on
construction order.  Both consumers now share
``repro.taxonomy.scoring.argmax_tiebreak`` — the ``(-score, id)`` order
of ``rank_topk`` — locked here on constructed score-tie fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, TrainConfig
from repro.stream import AttachDecision, argmax_tiebreak, attach_tag, attach_tags
from repro.taxonomy import Taxonomy, TaxonomyNode, from_dict, node_label, to_dict


def _two_group_taxonomy() -> Taxonomy:
    """Root split {0,1,2} / {3,4,5}, each child with singleton grandchildren."""
    return Taxonomy.from_parent_array(np.array([-1, 0, 0, -1, 3, 3], dtype=np.int64))


def _mirrored_item_tags() -> np.ndarray:
    """Ψ where groups {0,1,2} and {3,4,5} are exact mirrors and the new
    tag 6 touches both groups identically — every routing score ties."""
    psi = np.zeros((6, 7))
    for item, tag in ((0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)):
        psi[item, tag] = 1.0
    psi[0, 6] = 1.0  # tag 6 on one item of group 0 ...
    psi[3, 6] = 1.0  # ... and the mirror item of group 1
    return psi


class TestArgmaxTiebreak:
    def test_plain_max_without_ties(self):
        assert argmax_tiebreak(np.array([0.1, 0.9, 0.4])) == 1

    def test_tie_resolves_to_lowest_position(self):
        assert argmax_tiebreak(np.array([1.0, 2.0, 2.0, 0.5])) == 1

    def test_tie_resolves_to_lowest_id_when_ids_given(self):
        scores = np.array([0.7, 0.7, 0.7])
        assert argmax_tiebreak(scores, ids=np.array([9, 2, 5])) == 1

    def test_empty_is_an_error(self):
        with pytest.raises(ValueError):
            argmax_tiebreak(np.array([]))


class TestAttachRouting:
    def test_score_tie_routes_to_lowest_child_index(self):
        taxonomy = _two_group_taxonomy()
        decision = attach_tag(taxonomy, _mirrored_item_tags(), 6)
        assert decision.path[0] == 0, "tie must resolve to the lowest child index"
        assert not decision.general
        assert 6 in taxonomy.root.children[0].members
        assert 6 not in taxonomy.root.children[1].members

    def test_tag_lands_in_every_node_along_its_path(self):
        taxonomy = _two_group_taxonomy()
        rng = np.random.default_rng(5)
        psi = (rng.random((14, 7)) < 0.4).astype(np.float64)
        psi[:, 6] = psi[:, 1]  # correlate the new tag with tag 1
        decision = attach_tag(taxonomy, psi, 6)
        holders = sum(1 for node in taxonomy.nodes() if 6 in node.members)
        assert holders == len(decision.path) + 1
        assert taxonomy.n_tags == 7

    def test_absurd_delta_pushes_up_to_a_general_tag(self):
        taxonomy = _two_group_taxonomy()
        decision = attach_tag(taxonomy, _mirrored_item_tags(), 6, delta=1e9)
        assert decision.general
        assert decision.path == []
        assert 6 in taxonomy.root.general_tags
        assert 6 in taxonomy.root.members

    def test_rejects_out_of_range_and_duplicate_tags(self):
        taxonomy = _two_group_taxonomy()
        psi = _mirrored_item_tags()
        with pytest.raises(ValueError, match="outside"):
            attach_tag(taxonomy, psi, 7)
        with pytest.raises(ValueError, match="already"):
            attach_tag(taxonomy, psi, 3)

    def test_attach_tags_processes_in_ascending_id_order(self):
        taxonomy = Taxonomy.from_parent_array(np.array([-1, 0, 0, -1, 3, 3], dtype=np.int64))
        rng = np.random.default_rng(9)
        psi = (rng.random((10, 9)) < 0.5).astype(np.float64)
        decisions = attach_tags(taxonomy, psi, [8, 6, 7])
        assert [d.tag for d in decisions] == [6, 7, 8]
        for d in decisions:
            assert set(d.to_dict()) == {"tag", "path", "score", "level", "general"}

    def test_decision_to_dict_is_json_plain(self):
        decision = AttachDecision(tag=4, path=[1, 0], score=0.25, level=2, general=False)
        doc = decision.to_dict()
        assert doc == {"tag": 4, "path": [1, 0], "score": 0.25, "level": 2, "general": False}
        assert all(isinstance(v, (int, float, bool, list)) for v in doc.values())


class TestLabelingTieFix:
    def test_equal_scores_label_by_lowest_tag_id(self):
        node = TaxonomyNode(
            members=np.array([3, 7]),
            general_tags=np.array([7, 3]),
            scores=np.array([0.5, 0.5]),
        )
        assert node_label(node) == "tag_3"

    def test_label_is_invariant_to_candidate_order(self):
        for order in ([7, 3], [3, 7]):
            node = TaxonomyNode(
                members=np.array([3, 7]),
                general_tags=np.array(order),
                scores=np.array([0.5, 0.5]),
            )
            assert node_label(node) == "tag_3", order

    def test_member_tie_without_general_tags(self):
        node = TaxonomyNode(members=np.array([9, 2, 5]), scores=np.array([0.4, 0.4, 0.4]))
        assert node_label(node) == "tag_2"


class TestCheckpointTravel:
    def test_expanded_taxonomy_round_trips_through_extra_state(self, tiny_split):
        """Attach → ``extra_state`` → ``load_extra_state`` preserves the tree.

        ``extra_state`` is exactly what ``repro.ckpt/v1`` embeds, so this
        is the transport the expanded taxonomy rides between sessions.
        """
        model = MODEL_REGISTRY["TaxoRec"](tiny_split.train, TrainConfig(epochs=1, seed=3))
        model.fit(tiny_split)
        if model.taxonomy is None:
            model.rebuild_taxonomy()
        n_tags = model.taxonomy.n_tags
        psi = np.concatenate(
            [tiny_split.train.item_tags, tiny_split.train.item_tags[:, :1]], axis=1
        )
        decision = attach_tag(model.taxonomy, psi, n_tags)
        assert model.taxonomy.n_tags == n_tags + 1

        state = model.extra_state()
        clone = MODEL_REGISTRY["TaxoRec"](tiny_split.train, TrainConfig(epochs=1, seed=3))
        clone.load_extra_state(state)
        assert clone.taxonomy is not None

        def canonical(tax):
            return [
                (node.level, sorted(node.members.tolist()), sorted(node.general_tags.tolist()))
                for node in tax.nodes()
            ]

        assert canonical(clone.taxonomy) == canonical(model.taxonomy)
        assert clone.taxonomy.n_tags == n_tags + 1
        # And the plain dict transport agrees with the model's own.
        assert canonical(from_dict(to_dict(model.taxonomy))) == canonical(model.taxonomy)
        assert decision.tag == n_tags
