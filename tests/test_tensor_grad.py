"""Gradient correctness for every Tensor primitive (vs central differences)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients


@pytest.fixture()
def x34(rng):
    return rng.normal(size=(3, 4))


class TestArithmeticGrads:
    def test_add(self, rng, x34):
        check_gradients(lambda a, b: (a + b).sum(), [x34, rng.normal(size=(3, 4))])

    def test_add_broadcast(self, rng, x34):
        check_gradients(lambda a, b: (a + b).sum(), [x34, rng.normal(size=(4,))])

    def test_sub(self, rng, x34):
        check_gradients(lambda a, b: (a - b).sum(), [x34, rng.normal(size=(3, 4))])

    def test_mul(self, rng, x34):
        check_gradients(lambda a, b: (a * b).sum(), [x34, rng.normal(size=(3, 4))])

    def test_mul_broadcast_column(self, rng, x34):
        check_gradients(lambda a, b: (a * b).sum(), [x34, rng.normal(size=(3, 1))])

    def test_div(self, rng, x34):
        b = rng.normal(size=(3, 4)) + 5.0  # keep away from the pole
        check_gradients(lambda a, c: (a / c).sum(), [x34, b])

    def test_neg(self, x34):
        check_gradients(lambda a: (-a).sum(), [x34])

    def test_pow(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        check_gradients(lambda a: (a**3).sum(), [x])
        check_gradients(lambda a: (a**0.5).sum(), [x])

    def test_matmul(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradients(lambda p, q: (p @ q).sum(), [a, b])

    def test_matmul_vector_matrix(self, rng):
        a = rng.normal(size=(4,))
        b = rng.normal(size=(4, 2))
        check_gradients(lambda p, q: (p @ q).sum(), [a, b])

    def test_matmul_matrix_vector(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        check_gradients(lambda p, q: (p @ q).sum(), [a, b])

    def test_matmul_vector_vector(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        check_gradients(lambda p, q: p @ q, [a, b])


class TestReductionGrads:
    def test_sum_axis(self, x34):
        check_gradients(lambda a: (a.sum(axis=0) ** 2).sum(), [x34])

    def test_sum_keepdims(self, x34):
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), [x34])

    def test_mean(self, x34):
        check_gradients(lambda a: (a.mean(axis=1) ** 2).sum(), [x34])

    def test_max_no_ties(self, rng):
        x = rng.permutation(12).astype(np.float64).reshape(3, 4)
        check_gradients(lambda a: a.max(axis=1).sum(), [x])

    def test_max_global(self, rng):
        x = rng.permutation(12).astype(np.float64).reshape(3, 4)
        check_gradients(lambda a: a.max() * 2.0, [x])


class TestShapeGrads:
    def test_reshape(self, x34):
        check_gradients(lambda a: (a.reshape(4, 3) ** 2).sum(), [x34])

    def test_transpose(self, x34):
        check_gradients(lambda a: (a.T @ a).sum(), [x34])

    def test_getitem_slice(self, x34):
        check_gradients(lambda a: (a[1:, :2] ** 2).sum(), [x34])

    def test_take_rows_with_repeats(self, rng):
        x = rng.normal(size=(5, 3))
        idx = np.array([0, 0, 2, 4, 4, 4])
        check_gradients(lambda a: (a.take_rows(idx) ** 2).sum(), [x])


class TestElementwiseGrads:
    def test_exp(self, x34):
        check_gradients(lambda a: a.exp().sum(), [x34])

    def test_log(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradients(lambda a: a.log().sum(), [x])

    def test_sqrt(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradients(lambda a: a.sqrt().sum(), [x])

    def test_tanh(self, x34):
        check_gradients(lambda a: a.tanh().sum(), [x34])

    def test_sinh_cosh(self, x34):
        check_gradients(lambda a: a.sinh().sum(), [x34])
        check_gradients(lambda a: a.cosh().sum(), [x34])

    def test_arcosh(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 1.5
        check_gradients(lambda a: a.arcosh().sum(), [x])

    def test_artanh(self, rng):
        x = rng.uniform(-0.8, 0.8, size=(4,))
        check_gradients(lambda a: a.artanh().sum(), [x])

    def test_abs(self, rng):
        x = rng.normal(size=(4,)) + np.sign(rng.normal(size=4)) * 0.5  # avoid 0
        check_gradients(lambda a: a.abs().sum(), [x])

    def test_clamp_interior_gradient(self, rng):
        x = rng.uniform(0.2, 0.8, size=(4,))
        check_gradients(lambda a: a.clamp(0.0, 1.0).sum(), [x])

    def test_clamp_blocks_outside(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.clamp(0.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 0.0])

    def test_relu(self, rng):
        x = rng.normal(size=(6,))
        x = x[np.abs(x) > 1e-3]
        check_gradients(lambda a: a.relu().sum(), [x])

    def test_sigmoid(self, x34):
        check_gradients(lambda a: a.sigmoid().sum(), [x34])

    def test_norm(self, rng):
        x = rng.normal(size=(3, 4)) + 1.0
        check_gradients(lambda a: a.norm(axis=-1).sum(), [x])


class TestBackwardSemantics:
    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([2.0], requires_grad=True)
        for _ in range(2):
            (x * 3.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [6.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # y = x*x + x*x must double-count through both paths.
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_array_equal(x.grad, [2.0, 20.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
