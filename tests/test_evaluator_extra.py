"""Additional evaluator-protocol edge cases."""

import numpy as np
import pytest

from repro.data import InteractionDataset, Split, temporal_split
from repro.eval import evaluate


def make_split():
    """Hand-built split: 2 users, 6 items, controlled phases."""
    base = dict(n_users=2, n_items=6, n_tags=1, item_tags=np.zeros((6, 1)))
    train = InteractionDataset(
        user_ids=np.array([0, 0, 1, 1]),
        item_ids=np.array([0, 1, 2, 3]),
        timestamps=np.array([0.0, 1.0, 0.0, 1.0]),
        **base,
    )
    valid = InteractionDataset(
        user_ids=np.array([0]),
        item_ids=np.array([2]),
        timestamps=np.array([2.0]),
        **base,
    )
    test = InteractionDataset(
        user_ids=np.array([0, 1]),
        item_ids=np.array([4, 5]),
        timestamps=np.array([3.0, 2.0]),
        **base,
    )
    return Split(train=train, valid=valid, test=test)


class ScoreByIndex:
    """Deterministic scores: item id = score."""

    def score_users(self, users):
        return np.tile(np.arange(6, dtype=float), (len(users), 1))


class TestMasking:
    def test_valid_items_masked_for_test_eval(self):
        split = make_split()
        # Item 2 (user 0's valid item) outranks item 4 raw, but must be
        # masked during test evaluation along with train items 0, 1.
        result = evaluate(ScoreByIndex(), split, on="test")
        # After masking 0,1,2 for user 0, ranking is 5,4,3 → hit at rank 2.
        assert result.recall_at_10 == 1.0

    def test_valid_eval_masks_train_only(self):
        split = make_split()
        result = evaluate(ScoreByIndex(), split, on="valid")
        # User 0's valid item is 2; with 0,1 masked, ranking is 5,4,3,2.
        assert result.recall_at_10 == 1.0
        assert result.ndcg_at_10 < 1.0  # hit, but not at rank 1

    def test_users_without_held_out_items_skipped(self):
        split = make_split()
        # Only user 0 has a valid item; metrics must be over user 0 alone.
        result = evaluate(ScoreByIndex(), split, on="valid")
        assert 0.0 <= result.ndcg_at_20 <= 1.0


class TestTemporalConsistency:
    def test_real_split_masking_consistent(self, tiny_dataset):
        split = temporal_split(tiny_dataset)

        class LeakDetector:
            """Scores train items at +inf; if masking failed, recall would
            collapse because train items would crowd out true test items."""

            def __init__(self):
                self.train_sets = split.train.items_of_user()
                self.test_sets = split.test.items_of_user()

            def score_users(self, users):
                scores = np.zeros((len(users), tiny_dataset.n_items))
                for i, u in enumerate(users):
                    scores[i, self.train_sets[u]] = 1e9
                    scores[i, self.test_sets[u]] = 1.0
                return scores

        result = evaluate(LeakDetector(), split, on="test")
        assert result.recall_at_20 == pytest.approx(1.0)
